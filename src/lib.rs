//! # A4NN — Analytics for Neural Networks, in Rust
//!
//! Umbrella crate of the A4NN workspace: a from-scratch reproduction of
//! *"Composable Workflow for Accelerating Neural Architecture Search Using
//! In Situ Analytics for Protein Classification"* (Channing et al., ICPP
//! 2023). It re-exports each subsystem crate and the common prelude; the
//! runnable entry points live in `examples/` and `crates/bench/`.
//!
//! | module | crate | subsystem |
//! |---|---|---|
//! | [`core`] | `a4nn-core` | workflow orchestrator, trainers, Algorithm 1 |
//! | [`penguin`] | `a4nn-penguin` | parametric fitness-prediction engine |
//! | [`nsga`] | `a4nn-nsga` | NSGA-II evolutionary engine |
//! | [`genome`] | `a4nn-genome` | NSGA-Net macro search space |
//! | [`nn`] | `a4nn-nn` | CPU neural-network training substrate |
//! | [`xfel`] | `a4nn-xfel` | synthetic XFEL diffraction dataset |
//! | [`sched`] | `a4nn-sched` | FIFO GPU resource manager (DES + pool) |
//! | [`lineage`] | `a4nn-lineage` | record trails, data commons, analyzer |
//! | [`xpsi`] | `a4nn-xpsi` | XPSI baseline (autoencoder + kNN) |

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub use a4nn_core as core;
pub use a4nn_genome as genome;
pub use a4nn_lineage as lineage;
pub use a4nn_nn as nn;
pub use a4nn_nsga as nsga;
pub use a4nn_penguin as penguin;
pub use a4nn_sched as sched;
pub use a4nn_xfel as xfel;
pub use a4nn_xpsi as xpsi;

/// The cross-crate prelude (same as [`a4nn_core::prelude`]).
pub mod prelude {
    pub use a4nn_core::prelude::*;
}
