//! The socket transport's placement-invariance contract: a distributed
//! run is an *implementation detail*, never an observable one.
//!
//! - At the paper's Table 1/Table 2 configuration, direct, bus, and
//!   socket orchestration produce byte-identical `models.csv` and
//!   `epochs.csv` — for the paper's seed and for a second seed.
//! - A worker that drops its connection mid-generation (the injected
//!   `WorkerDrop` fault) gets its in-flight jobs requeued onto surviving
//!   workers, and the resulting commons is still byte-identical to a
//!   single-worker run and to a direct run.
//! - Worker-side faults never masquerade as trainer failures: only
//!   trainer-retry exhaustion exports `status == failed`.
//! - Losing *every* worker never hangs the coordinator: the heartbeat
//!   deadline detects the loss and the run exits with the `Net` error
//!   class (exit code 9).

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_faults::FaultEvent;
use a4nn_lineage::{epochs_csv, models_csv};
use a4nn_net::{SocketOptions, SocketTransport, WorkerHandle, WorkerServer};
use std::time::{Duration, Instant};

/// Spawn in-process workers, run a socket-orchestrated search against
/// them, and tear the fleet down.
fn socket_run(
    config: &WorkflowConfig,
    ft: &FaultTolerance,
    worker_gpus: &[usize],
    heartbeat_deadline: Duration,
) -> Result<RunOutput, A4nnError> {
    let workers: Vec<WorkerHandle> = worker_gpus
        .iter()
        .map(|&gpus| WorkerServer::spawn("127.0.0.1:0", gpus, 1).unwrap())
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let transport = SocketTransport::connect(
        &addrs,
        config,
        ft,
        SocketOptions {
            heartbeat_deadline,
            ..SocketOptions::default()
        },
    )?;
    let factory = SurrogateFactory::new(config, SurrogateParams::for_beam(config.beam));
    let result =
        A4nnWorkflow::new(config.clone()).try_run_transport(&factory, None, &transport, ft);
    drop(transport); // closes every session so the sessions=1 servers exit
    for w in workers {
        let _ = w.join();
    }
    result
}

fn direct_run(config: &WorkflowConfig, ft: &FaultTolerance) -> RunOutput {
    let factory = SurrogateFactory::new(config, SurrogateParams::for_beam(config.beam));
    A4nnWorkflow::new(config.clone()).run_resilient(&factory, None, Orchestration::Direct, ft)
}

fn csvs(out: &RunOutput) -> (String, String) {
    (models_csv(&out.commons), epochs_csv(&out.commons))
}

/// The small fault-suite configuration: quick enough to run several
/// orchestrations per test.
fn micro_config(seed: u64) -> WorkflowConfig {
    WorkflowConfig {
        nas: NasSettings {
            population: 4,
            offspring: 4,
            generations: 2,
            epochs: 8,
            ..NasSettings::paper_defaults()
        },
        engine: Some(EngineConfig {
            e_pred: 8,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    }
}

/// A hardware-aware 3-objective search is transport-invariant too:
/// `neg_fitness,flops,peak_ws_bytes` produces byte-identical commons
/// under direct, bus, and socket orchestration, and the export carries
/// the named objective columns. The peak-workspace objective is read
/// from the training substrate itself, so this is the test that proves
/// hardware measurement doesn't leak placement into the search.
#[test]
fn three_objective_search_is_transport_invariant() {
    let mut config = micro_config(2023);
    config.objectives = a4nn_core::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
    let ft = FaultTolerance::new(RetryPolicy::with_retries(0), FaultPlan::none());

    let direct = csvs(&direct_run(&config, &ft));
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let bus = csvs(&A4nnWorkflow::new(config.clone()).run_resilient(
        &factory,
        None,
        Orchestration::Bus,
        &ft,
    ));
    let socket = csvs(
        &socket_run(&config, &ft, &[2, 2], Duration::from_secs(2))
            .expect("healthy 3-objective socket run succeeds"),
    );

    assert_eq!(direct, bus, "3-objective bus drifted from direct");
    assert_eq!(direct, socket, "3-objective socket drifted from direct");
    let header = direct.0.lines().next().unwrap().to_string();
    assert!(
        header.ends_with("obj_neg_fitness,obj_flops,obj_peak_ws_bytes"),
        "export must carry the named objective columns: {header}"
    );
}

/// Direct == Bus == Socket, byte for byte, at the paper's full Table
/// 1/Table 2 configuration — for the paper's seed and a second seed.
#[test]
fn paper_configuration_is_transport_invariant() {
    for seed in [2023u64, 7] {
        let config = WorkflowConfig::a4nn(BeamIntensity::Medium, 4, seed);
        let ft = FaultTolerance::new(RetryPolicy::with_retries(0), FaultPlan::none());

        let direct = csvs(&direct_run(&config, &ft));
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        let bus = csvs(&A4nnWorkflow::new(config.clone()).run_resilient(
            &factory,
            None,
            Orchestration::Bus,
            &ft,
        ));
        let socket = csvs(
            &socket_run(&config, &ft, &[2, 2], Duration::from_secs(2))
                .expect("healthy socket run succeeds"),
        );

        assert_eq!(direct, bus, "seed {seed}: bus drifted from direct");
        assert_eq!(direct, socket, "seed {seed}: socket drifted from direct");
    }
}

/// A worker that severs its connection mid-generation loses nothing:
/// the coordinator requeues its in-flight jobs onto the survivor, and
/// the commons stays byte-identical to a single-worker run and to a
/// direct run — which also proves worker-side faults are invisible to
/// in-process transports.
#[test]
fn dropped_worker_requeues_without_perturbing_the_commons() {
    let config = micro_config(2023);
    // Drop the connection holding model 5 on its first dispatch; the
    // retry lands on the surviving worker.
    let drop_plan = FaultPlan::new(vec![FaultEvent::WorkerDrop {
        model: 5,
        epoch: 1,
        drops: 1,
    }]);
    let ft_drop = FaultTolerance::new(RetryPolicy::with_retries(0), drop_plan);
    let ft_clean = FaultTolerance::new(RetryPolicy::with_retries(0), FaultPlan::none());

    let faulted = socket_run(&config, &ft_drop, &[2, 2], Duration::from_secs(2))
        .expect("the surviving worker absorbs the requeued jobs");
    let single = socket_run(&config, &ft_clean, &[2], Duration::from_secs(2))
        .expect("single-worker run succeeds");
    let direct = direct_run(&config, &ft_drop);

    assert_eq!(
        csvs(&faulted),
        csvs(&single),
        "requeued jobs drifted from the single-worker commons"
    );
    assert_eq!(
        csvs(&faulted),
        csvs(&direct),
        "worker-side faults must be invisible to the direct transport"
    );
    assert!(
        faulted.transport_stats.retries > 0,
        "the dropped dispatch must be visible in the transport counters"
    );
    assert_eq!(faulted.transport_stats.transport, "socket");
}

/// Failure taxonomy over the wire: a trainer that exhausts its retry
/// budget on a worker comes back as data (`status == failed`), while a
/// dropped connection on another model requeues and completes — and the
/// whole run still matches direct byte for byte.
#[test]
fn trainer_exhaustion_is_data_and_worker_drops_are_not() {
    let config = micro_config(2023);
    let plan = FaultPlan::new(vec![
        FaultEvent::PanicAt {
            model: 2,
            epoch: 3,
            failures: 99,
        },
        FaultEvent::WorkerDrop {
            model: 6,
            epoch: 1,
            drops: 1,
        },
    ]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(1), plan);

    let socket = socket_run(&config, &ft, &[2, 2], Duration::from_secs(2))
        .expect("trainer panics and one dropped worker are both survivable");
    let direct = direct_run(&config, &ft);
    assert_eq!(csvs(&socket), csvs(&direct));

    let models = models_csv(&socket.commons);
    let status_of = |id: &str| {
        let row = models
            .lines()
            .find(|l| l.starts_with(&format!("{id},")))
            .unwrap_or_else(|| panic!("model {id} exported"));
        row.split(',').nth(12).unwrap().to_string()
    };
    assert_eq!(status_of("2"), "failed", "retry exhaustion is data");
    assert_ne!(
        status_of("6"),
        "failed",
        "a dropped connection must not export as a trainer failure"
    );
}

/// Losing every worker aborts instead of hanging: each dispatch is
/// dropped until the whole fleet is dead, the heartbeat deadline bounds
/// detection, and the run exits with the `Net` class (exit code 9).
#[test]
fn losing_every_worker_exits_with_the_net_error_class() {
    let config = micro_config(2023);
    let plan = FaultPlan::new(vec![FaultEvent::WorkerDrop {
        model: 0,
        epoch: 1,
        drops: 99,
    }]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(0), plan);

    let started = Instant::now();
    let err = match socket_run(&config, &ft, &[1, 1], Duration::from_millis(500)) {
        Err(e) => e,
        Ok(_) => panic!("a fleet that always drops model 0 cannot finish"),
    };
    assert_eq!(err.exit_code(), 9, "worker loss is Net-class: {err}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "coordinator must abort promptly, not hang ({:?})",
        started.elapsed()
    );
}

/// A worker stalling past the heartbeat deadline is declared dead within
/// it — silence, not just disconnection, is detected — and with no
/// survivor to requeue onto, the run aborts with the `Net` class.
#[test]
fn heartbeat_deadline_detects_a_stalled_worker() {
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 3,
            offspring: 3,
            generations: 1,
            epochs: 4,
            ..NasSettings::paper_defaults()
        },
        engine: None,
        gpus: 1,
        beam: BeamIntensity::Medium,
        seed: 2023,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    // Mute heartbeats for 4 s against a 250 ms deadline; the stall
    // re-fires wherever the job lands, so both workers eventually die.
    let plan = FaultPlan::new(vec![FaultEvent::WorkerStall {
        model: 1,
        epoch: 1,
        millis: 4_000,
    }]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(0), plan);

    // Inlined fleet setup: the elapsed time must cover only the
    // coordinator's abort, not the teardown join that waits out the
    // stalled worker's sleep.
    let workers: Vec<WorkerHandle> = (0..2)
        .map(|_| WorkerServer::spawn("127.0.0.1:0", 1, 1).unwrap())
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let started = Instant::now();
    let transport = SocketTransport::connect(
        &addrs,
        &config,
        &ft,
        SocketOptions {
            heartbeat_deadline: Duration::from_millis(250),
            ..SocketOptions::default()
        },
    )
    .unwrap();
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let err = match A4nnWorkflow::new(config.clone())
        .try_run_transport(&factory, None, &transport, &ft)
    {
        Err(e) => e,
        Ok(_) => panic!("a stall that follows the job everywhere exhausts the fleet"),
    };
    let elapsed = started.elapsed();
    assert_eq!(err.exit_code(), 9, "stalled workers are Net-class: {err}");
    // Two sequential detections at ~250 ms each plus slack: far below
    // the 4 s the stall itself would take if the deadline didn't fire.
    assert!(
        elapsed < Duration::from_secs(3),
        "detection must come from the heartbeat deadline, not the stall \
         ending ({elapsed:?})"
    );
}
