//! The crash-determinism contract: interrupting a search at *any*
//! generation boundary and resuming it from the committed snapshot
//! reproduces the uninterrupted run byte for byte.
//!
//! For seeds 2023 (the paper's) and 7, under all three orchestrations
//! (direct, bus, socket), the harness:
//!
//! 1. runs the search once, uninterrupted, to capture the golden
//!    `models.csv` / `epochs.csv` bytes and the deterministic metric
//!    counters;
//! 2. for every boundary `b` in `1..=generations`, runs again with a
//!    cancel hook that stops at `b` (the in-process analogue of SIGKILL
//!    — the snapshot is already committed when the hook fires), asserts
//!    the interruption surfaces as exit code 10, then resumes from the
//!    snapshot directory and diffs the merged output against gold.
//!
//! Boundary `generations` is deliberately included: resuming a search
//! whose last generation already committed must run zero loop
//! iterations and still rebuild identical outputs from restored state.
//!
//! The stale-snapshot path is pinned too: resuming under a different
//! configuration is a `Checkpoint` error (exit 5) naming both hashes.

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::{epochs_csv, models_csv};
use a4nn_metrics::names;
use a4nn_net::{SocketOptions, SocketTransport, WorkerHandle, WorkerServer};
use std::path::PathBuf;
use std::time::Duration;

/// Quick-but-nontrivial search: 3 generations so the harness exercises
/// an early, a middle, and the final boundary; the engine is on so
/// early-termination decisions cross boundaries too.
fn micro_config(seed: u64) -> WorkflowConfig {
    WorkflowConfig {
        nas: NasSettings {
            population: 4,
            offspring: 4,
            generations: 3,
            epochs: 8,
            ..NasSettings::paper_defaults()
        },
        engine: Some(EngineConfig {
            e_pred: 8,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("a4nn-resume-eq-{tag}-{}", std::process::id()))
}

fn csvs(out: &RunOutput) -> (String, String) {
    (models_csv(&out.commons), epochs_csv(&out.commons))
}

/// The metric counters that must be deterministic per seed (wall-time
/// histograms are excluded by design).
const DETERMINISTIC_COUNTERS: &[&str] = &[
    names::JOBS_DISPATCHED,
    names::EPOCHS_TRAINED,
    names::EARLY_TERMINATIONS,
    names::MODELS_FAILED,
    names::GENERATIONS,
];

#[derive(Clone, Copy)]
enum Mode {
    Direct,
    Bus,
    Socket,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Direct => "direct",
            Mode::Bus => "bus",
            Mode::Socket => "socket",
        }
    }
}

/// Run the search in `mode` under `control`, optionally resuming from
/// `snapshot`. Socket mode spawns a fresh two-worker fleet per call —
/// resume must not depend on transport-side state surviving the kill.
fn run_mode(
    config: &WorkflowConfig,
    mode: Mode,
    control: &RunControl<'_>,
    snapshot: Option<SearchSnapshot>,
) -> Result<RunOutput, A4nnError> {
    let factory = SurrogateFactory::new(config, SurrogateParams::for_beam(config.beam));
    let workflow = A4nnWorkflow::new(config.clone());
    let ft = FaultTolerance::default();
    match mode {
        Mode::Direct => workflow.try_run_resumable(
            &factory,
            None,
            Orchestration::Direct,
            &ft,
            control,
            snapshot,
        ),
        Mode::Bus => {
            workflow.try_run_resumable(&factory, None, Orchestration::Bus, &ft, control, snapshot)
        }
        Mode::Socket => {
            let workers: Vec<WorkerHandle> = (0..2)
                .map(|_| WorkerServer::spawn("127.0.0.1:0", 1, 1).unwrap())
                .collect();
            let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
            let transport = SocketTransport::connect(
                &addrs,
                config,
                &ft,
                SocketOptions {
                    heartbeat_deadline: Duration::from_secs(2),
                    ..SocketOptions::default()
                },
            )?;
            let result = workflow
                .try_run_transport_resumable(&factory, None, &transport, &ft, control, snapshot);
            drop(transport);
            for w in workers {
                let _ = w.join();
            }
            result
        }
    }
}

/// Interrupt at every boundary, resume, and diff against gold.
fn assert_resume_equivalent(mode: Mode, seed: u64) {
    let config = micro_config(seed);
    let golden = run_mode(&config, mode, &RunControl::default(), None)
        .unwrap_or_else(|e| panic!("{} seed {seed}: golden run failed: {e}", mode.label()));
    let golden_csvs = csvs(&golden);

    for boundary in 1..=config.nas.generations {
        let dir = tmp_dir(&format!("{}-{seed}-b{boundary}", mode.label()));
        std::fs::remove_dir_all(&dir).ok();

        // Phase 1: run with a cancel hook that "kills" the process at
        // this boundary. The snapshot commits *before* the hook fires.
        let cancel = move |done: usize| done == boundary;
        let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
        let err = match run_mode(&config, mode, &control, None) {
            Err(e) => e,
            Ok(_) => panic!(
                "{} seed {seed}: cancel at boundary {boundary} must interrupt the run",
                mode.label()
            ),
        };
        assert_eq!(
            err.exit_code(),
            10,
            "{} seed {seed} boundary {boundary}: interruption is exit 10: {err}",
            mode.label()
        );

        // Phase 2: a fresh "process" loads the committed snapshot and
        // resumes — still snapshotting, as the CLI would.
        let snap = SearchSnapshot::load(&dir, &config).unwrap_or_else(|e| {
            panic!(
                "{} seed {seed} boundary {boundary}: committed snapshot loads: {e}",
                mode.label()
            )
        });
        assert_eq!(snap.generations_done, boundary);
        let resumed = run_mode(&config, mode, &RunControl::snapshot_into(&dir), Some(snap))
            .unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed} boundary {boundary}: resume failed: {e}",
                    mode.label()
                )
            });

        assert_eq!(
            golden_csvs,
            csvs(&resumed),
            "{} seed {seed}: resume from boundary {boundary} drifted from the golden run",
            mode.label()
        );
        assert_eq!(
            golden.commons,
            resumed.commons,
            "{} seed {seed} boundary {boundary}: commons differ",
            mode.label()
        );
        for name in DETERMINISTIC_COUNTERS {
            assert_eq!(
                golden.metrics.counter(name),
                resumed.metrics.counter(name),
                "{} seed {seed} boundary {boundary}: counter {name} drifted",
                mode.label()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn direct_resume_is_bit_exact_across_all_boundaries() {
    for seed in [2023u64, 7] {
        assert_resume_equivalent(Mode::Direct, seed);
    }
}

#[test]
fn bus_resume_is_bit_exact_across_all_boundaries() {
    for seed in [2023u64, 7] {
        assert_resume_equivalent(Mode::Bus, seed);
    }
}

#[test]
fn socket_resume_is_bit_exact_across_all_boundaries() {
    for seed in [2023u64, 7] {
        assert_resume_equivalent(Mode::Socket, seed);
    }
}

/// Cross-transport resume: a snapshot committed under one transport
/// resumes under another and still matches gold — the snapshot is the
/// whole state, not a transport-private artifact.
#[test]
fn snapshot_committed_on_bus_resumes_on_direct() {
    let config = micro_config(2023);
    let golden = run_mode(&config, Mode::Direct, &RunControl::default(), None).unwrap();
    let dir = tmp_dir("cross-transport");
    std::fs::remove_dir_all(&dir).ok();

    let cancel = |done: usize| done == 2;
    let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
    let err = run_mode(&config, Mode::Bus, &control, None).unwrap_err();
    assert_eq!(err.exit_code(), 10);

    let snap = SearchSnapshot::load(&dir, &config).unwrap();
    let resumed = run_mode(&config, Mode::Direct, &RunControl::default(), Some(snap)).unwrap();
    assert_eq!(csvs(&golden), csvs(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming under a different configuration is refused as a stale
/// snapshot: `Checkpoint` class, exit 5, both fingerprints named.
#[test]
fn stale_snapshot_is_refused_with_exit_5() {
    let config = micro_config(2023);
    let dir = tmp_dir("stale");
    std::fs::remove_dir_all(&dir).ok();

    let cancel = |done: usize| done == 1;
    let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
    let err = run_mode(&config, Mode::Direct, &control, None).unwrap_err();
    assert_eq!(err.exit_code(), 10);

    let mut other = config.clone();
    other.seed = 7;
    let err = SearchSnapshot::load(&dir, &other).unwrap_err();
    assert_eq!(
        err.exit_code(),
        5,
        "stale snapshot is Checkpoint-class: {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("stale snapshot"),
        "error names the failure mode: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A 3-objective search survives the kill/resume cycle bit-exactly on
/// every transport: the snapshot carries the objective names and the
/// hardware-objective values, so a resumed search reproduces the same
/// Pareto pressure the killed one was applying.
#[test]
fn three_objective_resume_is_bit_exact_across_transports() {
    let mut config = micro_config(2023);
    config.objectives = a4nn_core::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
    for mode in [Mode::Direct, Mode::Bus, Mode::Socket] {
        let golden = run_mode(&config, mode, &RunControl::default(), None)
            .unwrap_or_else(|e| panic!("{}: 3-objective golden run failed: {e}", mode.label()));
        let dir = tmp_dir(&format!("3obj-{}", mode.label()));
        std::fs::remove_dir_all(&dir).ok();

        let cancel = |done: usize| done == 2;
        let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
        let err = run_mode(&config, mode, &control, None).unwrap_err();
        assert_eq!(err.exit_code(), 10);

        let snap = SearchSnapshot::load(&dir, &config).unwrap();
        let resumed = run_mode(&config, mode, &RunControl::default(), Some(snap)).unwrap();
        assert_eq!(
            csvs(&golden),
            csvs(&resumed),
            "{}: 3-objective resume drifted from the golden run",
            mode.label()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Changing `--objectives` between kill and resume is refused as a
/// stale snapshot (exit 5): the archive's objective vectors are only
/// meaningful under the set that produced them.
#[test]
fn changed_objectives_on_resume_are_refused_with_exit_5() {
    let config = micro_config(2023);
    let dir = tmp_dir("stale-objectives");
    std::fs::remove_dir_all(&dir).ok();

    let cancel = |done: usize| done == 1;
    let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
    let err = run_mode(&config, Mode::Direct, &control, None).unwrap_err();
    assert_eq!(err.exit_code(), 10);

    let mut widened = config.clone();
    widened.objectives = a4nn_core::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
    let err = SearchSnapshot::load(&dir, &widened).unwrap_err();
    assert_eq!(
        err.exit_code(),
        5,
        "changed objective set is Checkpoint-class: {err}"
    );
    assert!(
        err.to_string().contains("stale snapshot"),
        "error names the failure mode: {err}"
    );
    // The unchanged set still loads.
    assert!(SearchSnapshot::load(&dir, &config).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

/// The retry ledger survives the boundary: a model that consumed
/// retries before the interruption still reports them after resume.
#[test]
fn retry_ledger_carries_across_resume() {
    use a4nn_faults::FaultEvent;
    let config = micro_config(2023);
    let plan = FaultPlan::new(vec![FaultEvent::PanicAt {
        model: 1,
        epoch: 2,
        failures: 1,
    }]);
    let run = |control: &RunControl<'_>, snapshot| {
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        let ft = FaultTolerance::new(RetryPolicy::with_retries(2), plan.clone());
        A4nnWorkflow::new(config.clone()).try_run_resumable(
            &factory,
            None,
            Orchestration::Direct,
            &ft,
            control,
            snapshot,
        )
    };
    let golden = run(&RunControl::default(), None).unwrap();
    assert!(
        golden.retry_ledger.total_retries() > 0,
        "the injected panic must consume a retry"
    );

    let dir = tmp_dir("ledger");
    std::fs::remove_dir_all(&dir).ok();
    let cancel = |done: usize| done == 1;
    let control = RunControl::snapshot_into(&dir).with_cancel(&cancel);
    let err = run(&control, None).unwrap_err();
    assert_eq!(err.exit_code(), 10);

    let snap = SearchSnapshot::load(&dir, &config).unwrap();
    let resumed = run(&RunControl::default(), Some(snap)).unwrap();
    assert_eq!(
        golden.retry_ledger.to_csv(),
        resumed.retry_ledger.to_csv(),
        "the retry ledger must survive the interruption byte for byte"
    );
    assert_eq!(
        golden.metrics.counter(names::RETRIES),
        resumed.metrics.counter(names::RETRIES)
    );
    std::fs::remove_dir_all(&dir).ok();
}
