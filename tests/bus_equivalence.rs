//! Bus-vs-direct orchestration equivalence.
//!
//! The a4nn-bus event bus is a different task-coupling mechanism, not a
//! different search: per seed, a bus-orchestrated search must produce a
//! data commons — and hence `models.csv` / `epochs.csv` exports —
//! byte-identical to the in-process direct-call path. This pins the
//! paper's in-situ claim: moving data through communicators instead of
//! function calls changes performance characteristics, never results.

use a4nn_core::prelude::*;
use a4nn_lineage::{epochs_csv, models_csv};

/// A paper-shaped run: Table 2 NAS settings, Table 1 engine settings.
fn run(seed: u64, engine: bool, orchestration: Orchestration) -> RunOutput {
    let config = WorkflowConfig {
        nas: NasSettings::paper_defaults(),
        engine: engine.then(EngineConfig::paper_defaults),
        gpus: 4,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    A4nnWorkflow::new(config).run_with(&factory, orchestration)
}

#[test]
fn bus_and_direct_csv_exports_are_byte_identical_across_seeds() {
    for seed in [2023u64, 7u64] {
        let direct = run(seed, true, Orchestration::Direct);
        let bus = run(seed, true, Orchestration::Bus);
        assert_eq!(
            models_csv(&direct.commons),
            models_csv(&bus.commons),
            "models.csv diverged at seed {seed}"
        );
        assert_eq!(
            epochs_csv(&direct.commons),
            epochs_csv(&bus.commons),
            "epochs.csv diverged at seed {seed}"
        );
        assert_eq!(
            direct.commons, bus.commons,
            "commons diverged at seed {seed}"
        );
        assert_eq!(direct.engine_interactions, bus.engine_interactions);
        assert_eq!(
            direct.schedule.total_wall_time(),
            bus.schedule.total_wall_time(),
            "DES schedule diverged at seed {seed}"
        );
    }
}

#[test]
fn bus_standalone_matches_direct_standalone() {
    let direct = run(11, false, Orchestration::Direct);
    let bus = run(11, false, Orchestration::Bus);
    assert_eq!(models_csv(&direct.commons), models_csv(&bus.commons));
    assert_eq!(epochs_csv(&direct.commons), epochs_csv(&bus.commons));
}

#[test]
fn bus_run_reports_consistent_stream_stats() {
    let bus = run(2023, true, Orchestration::Bus);
    let stats = bus
        .bus_stats
        .clone()
        .expect("bus orchestration reports stats");
    assert_eq!(stats.epochs_observed, bus.total_epochs());
    assert_eq!(stats.engine_interactions, bus.engine_interactions);
    assert_eq!(stats.models_completed as usize, bus.commons.len());
    assert_eq!(
        stats.generations_scheduled as usize,
        bus.schedule.generations.len()
    );
    // Lossless audit stream: the aggregator saw every event.
    assert_eq!(stats.subscriber.dropped, 0);
    assert_eq!(
        stats.subscriber.delivered,
        stats.epochs_observed
            + stats.engine_interactions
            + stats.terminations_advised
            + stats.models_completed
            + stats.generations_scheduled
    );
    // Per-GPU utilization covers the configured cluster.
    assert_eq!(stats.gpu_busy_seconds.len(), 4);
    assert!(stats.gpu_busy_seconds.iter().all(|&s| s > 0.0));
}
