//! Integration tests of the real (non-surrogate) pipeline: XFEL dataset →
//! genome-decoded CNNs trained on the CPU substrate inside the workflow,
//! plus the XPSI baseline on the same data.

use a4nn::prelude::*;
use a4nn_core::{RealTrainerFactory, TrainingHyperparams};
use a4nn_lineage::Analyzer;
use a4nn_xfel::generate_split;
use a4nn_xpsi::{XpsiConfig, XpsiFramework};
use std::sync::Arc;

fn tiny_real_run(engine: bool) -> a4nn_core::RunOutput {
    let (train, test) = generate_split(&XfelConfig::default(), BeamIntensity::High, 100, 3);
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 3,
            offspring: 3,
            generations: 2,
            epochs: 6,
            ..NasSettings::paper_defaults()
        },
        engine: engine.then(|| EngineConfig {
            e_pred: 6,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam: BeamIntensity::High,
        seed: 21,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    let factory = RealTrainerFactory::new(
        config.search_space(),
        Arc::new(train),
        Arc::new(test),
        TrainingHyperparams::default(),
    );
    A4nnWorkflow::new(config).run(&factory)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
fn real_workflow_trains_networks_above_chance() {
    let out = tiny_real_run(false);
    assert_eq!(out.commons.len(), 6);
    let analyzer = Analyzer::new(&out.commons);
    let best = analyzer.best_by_fitness().unwrap();
    assert!(
        best.final_fitness > 62.0,
        "best real-trained model only reached {:.1}%",
        best.final_fitness
    );
    // Real trainers measure real durations.
    for r in &out.commons.records {
        assert!(r.wall_time_s > 0.0);
        for e in &r.epochs {
            assert!(e.duration_s > 0.0);
            assert!((0.0..=100.0).contains(&e.val_acc));
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
fn real_workflow_with_engine_completes_and_records_predictions() {
    let out = tiny_real_run(true);
    assert_eq!(out.commons.len(), 6);
    // With only 6 epochs the engine may or may not converge, but the
    // machinery must have run on every model.
    assert!(out.engine_interactions > 0);
    for r in &out.commons.records {
        assert!(r.engine.is_some());
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
fn xpsi_baseline_beats_chance_and_tracks_beam_quality() {
    let cfg = XfelConfig::default();
    let accuracy = |beam| {
        let (train, test) = generate_split(&cfg, beam, 120, 5);
        XpsiFramework::new(XpsiConfig {
            epochs: 8,
            ..Default::default()
        })
        .run(&train, &test)
        .accuracy
    };
    let low = accuracy(BeamIntensity::Low);
    let high = accuracy(BeamIntensity::High);
    assert!(low > 55.0, "low-beam XPSI at {low:.1}%");
    assert!(high > 70.0, "high-beam XPSI at {high:.1}%");
    assert!(
        high >= low - 5.0,
        "cleaner data should not hurt: low {low:.1} vs high {high:.1}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
fn checkpointed_workflow_records_every_epoch_state() {
    // §2.2.2: run a tiny real search with a checkpoint store attached and
    // re-evaluate a mid-training model from its stored state.
    use a4nn_core::CheckpointStore;
    let (train, test) = generate_split(&XfelConfig::default(), BeamIntensity::High, 30, 4);
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 2,
            offspring: 2,
            generations: 2,
            epochs: 3,
            ..NasSettings::paper_defaults()
        },
        engine: None,
        gpus: 1,
        beam: BeamIntensity::High,
        seed: 31,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    let factory = RealTrainerFactory::new(
        config.search_space(),
        Arc::new(train),
        Arc::new(test.clone()),
        TrainingHyperparams::default(),
    );
    let store = CheckpointStore::new();
    let out = A4nnWorkflow::new(config).run_checkpointed(&factory, Some(&store));
    // 4 models x 3 epochs, all checkpointed.
    assert_eq!(out.commons.len(), 4);
    assert_eq!(store.len(), 12);
    for r in &out.commons.records {
        assert_eq!(store.epochs_for(r.model_id), vec![1, 2, 3]);
    }
    // A restored epoch-2 model evaluates to a sane accuracy.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = store.get(0, 2).unwrap().restore(&mut rng);
    let (images, labels) = test.as_tensor();
    let acc = net.evaluate(&images, labels);
    assert!((0.0..=100.0).contains(&f64::from(acc)));
}

#[test]
fn decoded_networks_checkpoint_and_restore() {
    // §2.2.2: model state written each epoch must reload exactly.
    use a4nn_nn::{ModelState, Network, Tensor4};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let space = SearchSpace::paper_defaults();
    let genome = space.random_genome(&mut rng);
    let spec = a4nn_core::netspec_from_arch(&space.decode(&genome));
    let mut net = Network::new(&spec, &mut rng);
    let state = ModelState::capture(&mut net, 3);
    let bytes = state.to_bytes();
    let restored = ModelState::from_bytes(bytes).unwrap();
    let mut net2 = restored.restore(&mut rng);
    let x = Tensor4::zeros(2, 1, 16, 16);
    assert_eq!(
        net.forward(&x, false).data(),
        net2.forward(&x, false).data()
    );
}
