//! End-to-end resilience to NaN fitness and interrupted persistence.
//!
//! A training run that diverges (NaN loss) used to take the whole search
//! down twice over: `partial_cmp().expect()` panicked inside NSGA's
//! crowding/selection, and even when it didn't, `total_cmp` on the
//! *negated* fitness ranked the failed model best. These tests drive a
//! full `run_resilient` search — both orchestration modes — with a
//! trainer that produces NaN fitness for specific models and assert the
//! failed models survive to `models.csv` as `status=failed` without
//! poisoning selection. The persistence tests kill a commons save
//! mid-write and verify the prior snapshot still loads.

use a4nn_core::prelude::*;
use a4nn_core::{EpochResult, SurrogateFactory, SurrogateParams, Trainer, TrainerFactory};
use a4nn_lineage::models_csv;

/// Model ids whose training "diverges": every epoch reports NaN fitness.
const POISONED: &[u64] = &[2, 9];

/// Wraps the surrogate factory but hands poisoned models a diverging
/// trainer. Deterministic: the same ids diverge in every run and mode.
struct DivergingFactory {
    inner: SurrogateFactory,
}

struct DivergingTrainer {
    flops: f64,
}

impl Trainer for DivergingTrainer {
    fn train_epoch(&mut self, _epoch: u32) -> EpochResult {
        EpochResult {
            train_acc: f64::NAN,
            val_acc: f64::NAN,
            duration_s: 1.0,
        }
    }
    fn flops(&self) -> f64 {
        self.flops
    }
}

impl TrainerFactory for DivergingFactory {
    fn make(&self, genome: &a4nn_genome::Genome, model_id: u64, seed: u64) -> Box<dyn Trainer> {
        let inner = self.inner.make(genome, model_id, seed);
        if POISONED.contains(&model_id) {
            Box::new(DivergingTrainer {
                flops: inner.flops(),
            })
        } else {
            inner
        }
    }
}

fn config(seed: u64) -> WorkflowConfig {
    WorkflowConfig {
        nas: NasSettings {
            population: 6,
            offspring: 6,
            generations: 3,
            epochs: 10,
            ..NasSettings::paper_defaults()
        },
        // No engine: NaN observations would only exercise the curve
        // fitter; the selection layer is what is under test here.
        engine: None,
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    }
}

fn run(orchestration: Orchestration) -> RunOutput {
    let cfg = config(2023);
    let factory = DivergingFactory {
        inner: SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam)),
    };
    A4nnWorkflow::new(cfg).run_resilient(&factory, None, orchestration, &FaultTolerance::default())
}

#[test]
fn nan_fitness_models_survive_to_models_csv_as_failed() {
    for orchestration in [Orchestration::Direct, Orchestration::Bus] {
        let out = run(orchestration);
        assert_eq!(out.commons.len(), 6 + 6 * 2);

        for &id in POISONED {
            let r = out.commons.get(id).expect("poisoned model recorded");
            assert!(
                r.final_fitness.is_nan(),
                "model {id} kept its NaN fitness ({orchestration:?})"
            );
            assert_eq!(
                r.termination,
                Terminated::Failed,
                "NaN fitness classifies as failed ({orchestration:?})"
            );
            assert!(r.failed());
        }
        assert!(out.fault_stats.models_failed >= POISONED.len() as u64);

        // The failed models never outrank a healthy one: every healthy
        // model has finite fitness, and the selection layer orders NaN
        // strictly worst, so the analyzer's best model is clean.
        let best = a4nn_lineage::Analyzer::new(&out.commons)
            .best_by_fitness()
            .unwrap();
        assert!(
            best.final_fitness.is_finite(),
            "a NaN model won selection ({orchestration:?})"
        );

        // The CSV rows survive with an explicit failed status.
        let csv = models_csv(&out.commons);
        for &id in POISONED {
            let row = csv
                .lines()
                .find(|l| l.starts_with(&format!("{id},")))
                .expect("row exported");
            assert!(row.contains(",failed,"), "row lacks failed status: {row}");
            assert!(row.contains("NaN"), "row lacks the NaN fitness: {row}");
        }
    }
}

#[test]
fn direct_and_bus_agree_on_nan_handling() {
    let direct = run(Orchestration::Direct);
    let bus = run(Orchestration::Bus);
    // NaN != NaN, so compare the rendered CSVs (NaN prints stably).
    assert_eq!(
        models_csv(&direct.commons),
        models_csv(&bus.commons),
        "orchestration modes diverged on NaN-fitness models"
    );
    assert_eq!(
        direct.fault_stats.models_failed,
        bus.fault_stats.models_failed
    );
}

#[test]
fn interrupted_commons_save_leaves_prior_snapshot_loadable() {
    let out = run(Orchestration::Direct);
    let dir = std::env::temp_dir().join(format!("a4nn-nan-commons-{}", std::process::id()));
    out.commons.save_dir(&dir).unwrap();

    // Simulate a crash midway through a later save: atomic writes stage
    // into `.tmp` first, so the kill leaves torn tmp files next to the
    // intact snapshot — never a torn file under a real name.
    std::fs::write(dir.join("model_00000.json.tmp"), b"{\"model_id\": 0, ").unwrap();
    std::fs::write(dir.join("manifest.json.tmp"), b"{\"model_co").unwrap();

    let reloaded = DataCommons::load_dir(&dir).unwrap();
    assert_eq!(reloaded.len(), out.commons.len());
    // NaN breaks PartialEq on the records; the byte-stable CSV render is
    // the equality that matters downstream.
    assert_eq!(models_csv(&reloaded), models_csv(&out.commons));
    std::fs::remove_dir_all(&dir).ok();
}
