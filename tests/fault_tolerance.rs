//! The fault-injection harness: both orchestration modes must survive
//! identical deterministic fault plans with identical results.
//!
//! A [`FaultPlan`] is pure data keyed on `(model, epoch, attempt)`, so
//! `Direct` (rayon + inline engine) and `Bus` (thread pool + engine
//! service over the event bus) hit exactly the same injection sites.
//! The contract under test, per fault class:
//!
//! - an empty plan reproduces the fault-free run byte for byte;
//! - recoverable panics retry deterministically: the surviving commons
//!   differs from the fault-free run only in retry accounting (and GPU
//!   placement, since failed attempts are charged to the cluster);
//! - exhausted retries surface as `Terminated::Failed` records carrying
//!   the final attempt's partial trail, never poisoning the batch;
//! - an engine crash degrades the affected model to run-to-completion
//!   training (frozen engine stats, no deadlock);
//! - stalls (real wall time) and a lagging lossy subscriber (bus
//!   backpressure) change no recorded byte at all.

use a4nn_core::prelude::*;
use a4nn_faults::FaultEvent;
use a4nn_lineage::{epochs_csv, models_csv};

fn config(seed: u64, engine: bool) -> WorkflowConfig {
    WorkflowConfig {
        nas: NasSettings {
            population: 6,
            offspring: 6,
            generations: 3,
            epochs: 12,
            ..NasSettings::paper_defaults()
        },
        engine: engine.then(|| EngineConfig {
            e_pred: 12,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    }
}

fn run(seed: u64, engine: bool, orchestration: Orchestration, ft: &FaultTolerance) -> RunOutput {
    let cfg = config(seed, engine);
    let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
    A4nnWorkflow::new(cfg).run_resilient(&factory, None, orchestration, ft)
}

/// Assert the two outputs carry byte-identical commons and exports.
fn assert_equivalent(direct: &RunOutput, bus: &RunOutput, label: &str) {
    assert_eq!(
        models_csv(&direct.commons),
        models_csv(&bus.commons),
        "models.csv diverged: {label}"
    );
    assert_eq!(
        epochs_csv(&direct.commons),
        epochs_csv(&bus.commons),
        "epochs.csv diverged: {label}"
    );
    assert_eq!(direct.commons, bus.commons, "commons diverged: {label}");
    assert_eq!(
        direct.engine_interactions, bus.engine_interactions,
        "engine interactions diverged: {label}"
    );
    assert_eq!(
        direct.schedule.total_wall_time(),
        bus.schedule.total_wall_time(),
        "DES schedule diverged: {label}"
    );
    assert_eq!(
        direct.fault_stats.models_failed, bus.fault_stats.models_failed,
        "failed-model count diverged: {label}"
    );
    assert_eq!(
        direct.fault_stats.retries, bus.fault_stats.retries,
        "retry count diverged: {label}"
    );
}

#[test]
fn zero_fault_plan_reproduces_the_fault_free_run_byte_for_byte() {
    for orchestration in [Orchestration::Direct, Orchestration::Bus] {
        let plain = run(2023, true, orchestration, &FaultTolerance::default());
        let armed = run(
            2023,
            true,
            orchestration,
            &FaultTolerance::new(RetryPolicy::with_retries(5), FaultPlan::none()),
        );
        assert_eq!(plain.commons, armed.commons);
        assert_eq!(models_csv(&plain.commons), models_csv(&armed.commons));
        assert_eq!(epochs_csv(&plain.commons), epochs_csv(&armed.commons));
        assert_eq!(
            plain.schedule.total_wall_time(),
            armed.schedule.total_wall_time()
        );
        assert!(armed.fault_stats.is_quiet());
        for r in &armed.commons.records {
            assert_eq!(r.attempts, 1);
            assert_ne!(r.termination, Terminated::Failed);
        }
    }
}

#[test]
fn recoverable_panics_retry_to_the_same_results() {
    let plan = FaultPlan::new(vec![
        FaultEvent::PanicAt {
            model: 2,
            epoch: 3,
            failures: 2,
        },
        FaultEvent::PanicAt {
            model: 7,
            epoch: 1,
            failures: 1,
        },
    ]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(2), plan);
    let clean = run(
        2023,
        true,
        Orchestration::Direct,
        &FaultTolerance::default(),
    );
    let direct = run(2023, true, Orchestration::Direct, &ft);
    let bus = run(2023, true, Orchestration::Bus, &ft);
    assert_equivalent(&direct, &bus, "recoverable panics");

    // Recovered models replay deterministically, so the epoch trails —
    // and hence epochs.csv — match the fault-free run exactly.
    assert_eq!(epochs_csv(&clean.commons), epochs_csv(&direct.commons));
    assert_eq!(direct.fault_stats.models_failed, 0);
    assert_eq!(direct.fault_stats.models_recovered, 2);
    assert_eq!(direct.fault_stats.retries, 2 + 1);
    for (c, f) in clean.commons.records.iter().zip(&direct.commons.records) {
        // Identical modulo retry accounting and GPU placement (failed
        // attempts occupy cluster slots).
        let mut normalized = f.clone();
        normalized.attempts = c.attempts;
        normalized.gpu = c.gpu;
        assert_eq!(c, &normalized);
    }
    assert_eq!(direct.commons.records[2].attempts, 3);
    assert_eq!(direct.commons.records[7].attempts, 2);
    // Failed attempts are simulated time the cluster actually spends.
    assert!(direct.schedule.total_wall_time() > clean.schedule.total_wall_time());
}

#[test]
fn exhausted_retries_surface_failed_records_with_partial_trails() {
    let plan = FaultPlan::new(vec![FaultEvent::PanicAt {
        model: 4,
        epoch: 5,
        failures: 99,
    }]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(1), plan);
    let direct = run(2023, true, Orchestration::Direct, &ft);
    let bus = run(2023, true, Orchestration::Bus, &ft);
    assert_equivalent(&direct, &bus, "exhausted retries");

    let failed = &direct.commons.records[4];
    assert_eq!(failed.termination, Terminated::Failed);
    assert!(failed.failed());
    assert!(!failed.terminated_early());
    assert_eq!(failed.attempts, 2, "both allowed attempts were consumed");
    assert_eq!(failed.final_fitness, 0.0, "failed models are dominated");
    assert!(failed.predicted_fitness.is_none());
    assert_eq!(
        failed.epochs_trained(),
        4,
        "partial trail ends where the final attempt died"
    );
    assert_eq!(direct.fault_stats.models_failed, 1);
    // Every other model is untouched.
    for (k, r) in direct.commons.records.iter().enumerate() {
        if k != 4 {
            assert_ne!(r.termination, Terminated::Failed);
            assert_eq!(r.attempts, 1);
        }
    }
}

#[test]
fn engine_crash_degrades_to_run_to_completion_without_deadlock() {
    let plan = FaultPlan::new(vec![FaultEvent::EngineDrop { model: 3, epoch: 4 }]);
    let ft = FaultTolerance::new(RetryPolicy::default(), plan);
    let direct = run(2023, true, Orchestration::Direct, &ft);
    let bus = run(2023, true, Orchestration::Bus, &ft);
    assert_equivalent(&direct, &bus, "engine drop");

    let degraded = &direct.commons.records[3];
    assert_eq!(
        degraded.epochs_trained(),
        12,
        "no engine, no early termination: full budget"
    );
    assert!(!degraded.terminated_early());
    assert!(degraded.predicted_fitness.is_none());
    // Epochs from the crash on have no predictions; the trail before the
    // crash keeps whatever the engine produced.
    for e in &degraded.epochs {
        if e.epoch >= 4 {
            assert!(
                e.prediction.is_none(),
                "epoch {} kept a prediction",
                e.epoch
            );
        }
    }
    assert!(direct.fault_stats.is_quiet(), "degradation is not a retry");
}

#[test]
fn stalls_and_subscriber_lag_change_no_recorded_byte() {
    let plan = FaultPlan::new(vec![
        FaultEvent::StallFor {
            model: 1,
            epoch: 2,
            millis: 3,
        },
        FaultEvent::StallFor {
            model: 9,
            epoch: 1,
            millis: 2,
        },
        FaultEvent::SubscriberLag {
            capacity: 2,
            delay_millis: 1,
        },
    ]);
    let ft = FaultTolerance::new(RetryPolicy::default(), plan);
    let clean = run(
        2023,
        true,
        Orchestration::Direct,
        &FaultTolerance::default(),
    );
    let direct = run(2023, true, Orchestration::Direct, &ft);
    let bus = run(2023, true, Orchestration::Bus, &ft);
    assert_equivalent(&direct, &bus, "stalls + laggard");
    assert_eq!(clean.commons, direct.commons, "stalls are wall-clock only");
    assert_eq!(
        clean.schedule.total_wall_time(),
        direct.schedule.total_wall_time()
    );
    // The laggard really ran (bus mode only) and really lagged or
    // delivered, but stayed fully isolated from the results.
    let laggard = bus.fault_stats.laggard.expect("laggard attached on bus");
    assert!(laggard.enqueued > 0, "laggard saw the stream");
    assert!(direct.fault_stats.laggard.is_none(), "no bus, no laggard");
}

#[test]
fn seeded_chaos_plans_keep_both_modes_equivalent() {
    let total_models = 6 + 6 * 2;
    let mut stats_dump =
        String::from("seed,models_failed,models_recovered,retries,laggard_dropped\n");
    for seed in [2023u64, 7, 99] {
        let spec = ChaosSpec {
            models: total_models,
            max_epoch: 8,
            max_failures: 3,
            ..ChaosSpec::default()
        };
        let plan = FaultPlan::seeded(seed, &spec);
        assert!(!plan.is_empty(), "chaos plan at seed {seed} is empty");
        // Two retries: plans drawing `failures == 3` produce terminal
        // failures, smaller draws recover — both paths exercised.
        let ft = FaultTolerance::new(RetryPolicy::with_retries(2), plan.clone());
        let direct = run(seed, true, Orchestration::Direct, &ft);
        let bus = run(seed, true, Orchestration::Bus, &ft);
        assert_equivalent(&direct, &bus, &format!("chaos seed {seed}"));

        // Exact retry accounting: a record's extra attempts must be
        // covered by a PanicAt for that model, and terminally failed
        // records consumed the whole attempt budget.
        for r in &direct.commons.records {
            assert!(r.attempts >= 1 && r.attempts <= 3);
            if r.attempts > 1 {
                let planned = plan.events().iter().any(|e| {
                    matches!(e, FaultEvent::PanicAt { model, failures, .. }
                        if *model == r.model_id && *failures >= r.attempts - 1)
                });
                assert!(
                    planned,
                    "model {} reports {} attempts without a matching fault",
                    r.model_id, r.attempts
                );
            }
            if r.failed() {
                assert_eq!(r.attempts, 3, "failed models exhaust the budget");
                assert_eq!(r.final_fitness, 0.0);
            }
        }
        stats_dump.push_str(&format!(
            "{seed},{},{},{},{}\n",
            direct.fault_stats.models_failed,
            direct.fault_stats.models_recovered,
            direct.fault_stats.retries,
            bus.fault_stats.laggard.map_or(0, |l| l.dropped),
        ));
    }
    // Leave the accounting behind for CI to attach on failure elsewhere.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("fault-stats.csv");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out, stats_dump).expect("fault stats written");
}

#[test]
fn standalone_runs_survive_trainer_faults_identically() {
    // No engine at all: the fault layer must work without verdicts.
    let plan = FaultPlan::new(vec![
        FaultEvent::PanicAt {
            model: 0,
            epoch: 2,
            failures: 1,
        },
        FaultEvent::PanicAt {
            model: 5,
            epoch: 4,
            failures: 99,
        },
    ]);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(1), plan);
    let direct = run(31, false, Orchestration::Direct, &ft);
    let bus = run(31, false, Orchestration::Bus, &ft);
    assert_equivalent(&direct, &bus, "standalone faults");
    assert_eq!(direct.commons.records[0].attempts, 2);
    assert_ne!(direct.commons.records[0].termination, Terminated::Failed);
    assert!(direct.commons.records[5].failed());
}
