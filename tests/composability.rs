//! Composability integration tests: the same engine/trainer/scheduler
//! stack under alternative NAS drivers and the micro search space.

use a4nn::prelude::*;
use a4nn_core::micro::{micro_random_search, MicroTrainerFactory};
use a4nn_core::{AgingEvolutionWorkflow, RandomSearchWorkflow, SurrogateFactory, SurrogateParams};
use a4nn_genome::MicroSearchSpace;
use a4nn_lineage::{shape_census, Analyzer, CurveShape};
use a4nn_xfel::generate_split;
use std::sync::Arc;

fn config(seed: u64) -> WorkflowConfig {
    WorkflowConfig {
        nas: NasSettings {
            population: 8,
            offspring: 8,
            generations: 4,
            ..NasSettings::paper_defaults()
        },
        engine: Some(EngineConfig::paper_defaults()),
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    }
}

#[test]
fn all_three_drivers_share_the_engines_savings() {
    let cfg = config(21);
    let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
    let budget = (cfg.nas.epochs as u64) * cfg.nas.total_models() as u64;
    let nsga = A4nnWorkflow::new(cfg.clone()).run(&factory);
    let aging = AgingEvolutionWorkflow::new(cfg.clone(), 3).run(&factory);
    let random = RandomSearchWorkflow::new(cfg).run(&factory);
    for (name, out) in [("nsga", &nsga), ("aging", &aging), ("random", &random)] {
        assert!(
            out.total_epochs() < budget,
            "{name}: engine saved nothing ({} epochs)",
            out.total_epochs()
        );
        assert_eq!(out.commons.len(), 32, "{name}: wrong budget");
    }
}

#[test]
fn drivers_emit_interchangeable_commons() {
    // A commons from any driver round-trips and analyzes identically.
    let cfg = config(22);
    let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
    let out = AgingEvolutionWorkflow::new(cfg, 3).run(&factory);
    let dir = std::env::temp_dir().join(format!("a4nn-compos-{}", std::process::id()));
    out.commons.save_dir(&dir).unwrap();
    let loaded = a4nn_lineage::DataCommons::load_dir(&dir).unwrap();
    assert_eq!(loaded, out.commons);
    let analyzer = Analyzer::new(&loaded);
    assert!(analyzer.best_by_fitness().is_some());
    assert!(!analyzer.pareto_front().is_empty());
    // Shape census covers every record.
    let total: usize = shape_census(&loaded).iter().map(|(_, n, _)| n).sum();
    assert_eq!(total, loaded.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn surrogate_curves_cover_the_shape_taxonomy() {
    // The calibrated mixture should produce saturating, accelerating
    // (late bloomer), and flat (non-learner) curves within 100 models.
    let cfg = WorkflowConfig::a4nn(BeamIntensity::Low, 1, 23);
    let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
    let out = A4nnWorkflow::new(cfg).run(&factory);
    let shapes: Vec<CurveShape> = shape_census(&out.commons)
        .into_iter()
        .map(|(s, _, _)| s)
        .collect();
    for expected in [CurveShape::Saturating, CurveShape::Accelerating] {
        assert!(
            shapes.contains(&expected),
            "missing {expected:?} in {shapes:?}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
fn micro_space_end_to_end() {
    let (train, val) = generate_split(&XfelConfig::default(), BeamIntensity::High, 40, 8);
    let space = MicroSearchSpace::reduced_defaults();
    let factory = MicroTrainerFactory::new(space.clone(), Arc::new(train), Arc::new(val));
    let mut cfg = WorkflowConfig::a4nn(BeamIntensity::High, 2, 31);
    cfg.nas.epochs = 3;
    if let Some(e) = cfg.engine.as_mut() {
        e.e_pred = 3;
    }
    let (commons, schedule) = micro_random_search(&cfg, &space, &factory, 4);
    assert_eq!(commons.len(), 4);
    assert!(schedule.total_wall_time() > 0.0);
    for r in &commons.records {
        assert!(r.flops > 0.0);
        assert!(r.epochs_trained() >= 1);
        assert!(
            r.arch_summary.contains('|'),
            "micro summary: {}",
            r.arch_summary
        );
    }
}
