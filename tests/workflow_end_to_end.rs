//! End-to-end integration tests of the full A4NN workflow on the
//! surrogate cluster, spanning core + nsga + genome + penguin + sched +
//! lineage.

use a4nn::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::Analyzer;

fn run(beam: BeamIntensity, engine: bool, gpus: usize, seed: u64) -> a4nn_core::RunOutput {
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 8,
            offspring: 8,
            generations: 5,
            ..NasSettings::paper_defaults()
        },
        engine: engine.then(EngineConfig::paper_defaults),
        gpus,
        beam,
        seed,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    A4nnWorkflow::new(config).run(&factory)
}

#[test]
fn full_paper_scale_run_matches_expected_structure() {
    let config = WorkflowConfig::a4nn(BeamIntensity::Medium, 4, 99);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let out = A4nnWorkflow::new(config).run(&factory);
    assert_eq!(out.commons.len(), 100, "Table 2: 100 networks per test");
    assert_eq!(out.schedule.generations.len(), 10);
    // Every record is complete.
    for r in &out.commons.records {
        assert!(r.epochs_trained() >= 1 && r.epochs_trained() <= 25);
        assert!(r.flops > 0.0);
        assert!(r.gpu.unwrap() < 4);
        assert!((0.0..=100.0).contains(&r.final_fitness));
        let wall: f64 = r.epochs.iter().map(|e| e.duration_s).sum();
        assert!((wall - r.wall_time_s).abs() < 1e-9);
        if r.terminated_early() {
            assert!(r.predicted_fitness.is_some());
            assert!(r.epochs_trained() < 25);
        } else {
            assert_eq!(r.epochs_trained(), 25);
        }
    }
}

#[test]
fn engine_saves_epochs_on_every_beam() {
    for beam in BeamIntensity::ALL {
        let with = run(beam, true, 1, 5);
        let without = run(beam, false, 1, 5);
        assert!(
            with.total_epochs() < without.total_epochs(),
            "{beam}: {} !< {}",
            with.total_epochs(),
            without.total_epochs()
        );
        assert!(with.wall_time_s() < without.wall_time_s());
        // The engine does not diminish search quality (§4.2.1): the best
        // fitness stays within a few points of the standalone run.
        let best_with = Analyzer::new(&with.commons)
            .best_by_fitness()
            .unwrap()
            .final_fitness;
        let best_without = Analyzer::new(&without.commons)
            .best_by_fitness()
            .unwrap()
            .final_fitness;
        assert!(
            best_with > best_without - 5.0,
            "{beam}: best {best_with} vs standalone {best_without}"
        );
    }
}

#[test]
fn multi_gpu_speedup_is_near_linear_with_identical_search() {
    let one = run(BeamIntensity::High, true, 1, 6);
    let four = run(BeamIntensity::High, true, 4, 6);
    // GPU count must not change the search itself — only the GPU
    // placements differ between cluster sizes.
    let strip = |out: &a4nn_core::RunOutput| {
        out.commons
            .records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.gpu = None;
                r
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip(&one),
        strip(&four),
        "GPU count must not change the search"
    );
    assert_eq!(one.total_epochs(), four.total_epochs());
    let speedup = one.wall_time_s() / four.wall_time_s();
    assert!(
        (2.0..=4.0).contains(&speedup),
        "speedup {speedup:.2} out of range"
    );
}

#[test]
fn pareto_front_is_mutually_non_dominated() {
    let out = run(BeamIntensity::Medium, true, 2, 7);
    let analyzer = Analyzer::new(&out.commons);
    let front = analyzer.pareto_front();
    assert!(!front.is_empty());
    for a in &front {
        for b in &front {
            let dominates = b.final_fitness >= a.final_fitness
                && b.flops <= a.flops
                && (b.final_fitness > a.final_fitness || b.flops < a.flops);
            assert!(!dominates, "front member dominated");
        }
    }
}

#[test]
fn commons_roundtrips_through_disk() {
    let out = run(BeamIntensity::Low, true, 2, 8);
    let dir = std::env::temp_dir().join(format!("a4nn-e2e-{}", std::process::id()));
    out.commons.save_dir(&dir).unwrap();
    let loaded = a4nn_lineage::DataCommons::load_dir(&dir).unwrap();
    assert_eq!(loaded, out.commons);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeds_reproduce_entire_runs() {
    let a = run(BeamIntensity::Medium, true, 2, 11);
    let b = run(BeamIntensity::Medium, true, 2, 11);
    assert_eq!(a.commons, b.commons);
    assert_eq!(a.wall_time_s(), b.wall_time_s());
    assert_eq!(a.total_epochs(), b.total_epochs());
}

#[test]
fn generation_structure_is_consistent() {
    let out = run(BeamIntensity::Medium, true, 2, 12);
    // Generation 0 has `population` models; later generations `offspring`.
    let mut per_gen = vec![0usize; 5];
    for r in &out.commons.records {
        per_gen[r.generation] += 1;
    }
    assert_eq!(per_gen, vec![8, 8, 8, 8, 8]);
    // Model ids are assigned in generation order.
    for r in &out.commons.records {
        assert_eq!(r.generation, (r.model_id / 8) as usize);
    }
}
