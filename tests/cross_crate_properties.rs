//! Property-based tests over cross-crate invariants (proptest).

use a4nn_genome::{Genome, PhaseGenome, SearchSpace};
use a4nn_nsga::Objectives;
use a4nn_penguin::{ConvergenceRule, PredictionAnalyzer};
use a4nn_sched::{schedule_fifo, Task, TaskOrdering};
use proptest::prelude::*;

fn arb_genome() -> impl Strategy<Value = Genome> {
    proptest::collection::vec(any::<bool>(), 21)
        .prop_map(|bits| Genome::from_bits(&[4, 4, 4], &bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every 21-bit genome decodes, builds a network via the bridge, and
    /// runs a forward pass with consistent shapes.
    #[test]
    fn every_genome_decodes_and_builds(genome in arb_genome()) {
        use rand::SeedableRng;
        let space = SearchSpace::paper_defaults();
        let arch = space.decode(&genome);
        prop_assert_eq!(arch.phases.len(), 3);
        let flops = a4nn_genome::estimate_flops(&arch, (16, 16));
        prop_assert!(flops > 0.0);
        let spec = a4nn_core::netspec_from_arch(&arch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = a4nn_nn::Network::new(&spec, &mut rng);
        let x = a4nn_nn::Tensor4::zeros(1, 1, 8, 8);
        let logits = net.forward(&x, false);
        prop_assert_eq!((logits.rows, logits.cols), (1, 2));
    }

    /// Genome compact-string encoding round-trips.
    #[test]
    fn genome_string_roundtrip(genome in arb_genome()) {
        let s = genome.to_compact_string();
        let back = Genome::from_compact_string(&s).unwrap();
        prop_assert_eq!(genome, back);
    }

    /// Variation always produces a genome of the same shape.
    #[test]
    fn variation_preserves_shape(a in arb_genome(), b in arb_genome(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let space = SearchSpace::paper_defaults();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let child = space.vary(&a, &b, &mut rng);
        prop_assert_eq!(child.bit_len(), 21);
        prop_assert_eq!(child.phases.len(), 3);
        for p in &child.phases {
            prop_assert_eq!(p.bits.len(), PhaseGenome::bits_for(4));
        }
    }

    /// FIFO scheduling conserves work: Σ busy == Σ durations, no GPU
    /// exceeds the makespan, every task appears exactly once.
    #[test]
    fn schedule_conserves_work(
        durations in proptest::collection::vec(0.0f64..50.0, 1..40),
        gpus in 1usize..6,
    ) {
        let tasks: Vec<Task> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| Task { id: i as u64, duration: d })
            .collect();
        let result = schedule_fifo(gpus, &tasks, TaskOrdering::Fifo);
        let total: f64 = durations.iter().sum();
        let busy: f64 = result.gpu_busy.iter().sum();
        prop_assert!((busy - total).abs() < 1e-9);
        prop_assert!(result.makespan <= total + 1e-9);
        prop_assert!(result.makespan * gpus as f64 >= total - 1e-9);
        for b in &result.gpu_busy {
            prop_assert!(*b <= result.makespan + 1e-9);
        }
        let mut ids: Vec<u64> = result.assignments.iter().map(|a| a.task_id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..durations.len() as u64).collect::<Vec<_>>());
    }

    /// LPT is within Graham's (4/3 − 1/3m) factor of optimal; since FIFO
    /// is itself ≥ OPT, LPT ≤ 4/3 · FIFO always holds (per-instance LPT
    /// can be *worse* than FIFO — proptest found such instances — but
    /// never by more than this bound). Both stay above the trivial lower
    /// bounds.
    #[test]
    fn lpt_within_graham_bound_of_fifo(
        durations in proptest::collection::vec(0.1f64..50.0, 1..30),
        gpus in 1usize..5,
    ) {
        let tasks: Vec<Task> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| Task { id: i as u64, duration: d })
            .collect();
        let fifo = schedule_fifo(gpus, &tasks, TaskOrdering::Fifo);
        let lpt = schedule_fifo(gpus, &tasks, TaskOrdering::Lpt);
        let lower = (durations.iter().sum::<f64>() / gpus as f64)
            .max(durations.iter().cloned().fold(0.0, f64::max));
        prop_assert!(lpt.makespan + 1e-9 >= lower);
        prop_assert!(fifo.makespan + 1e-9 >= lower);
        prop_assert!(lpt.makespan <= 4.0 / 3.0 * fifo.makespan + 1e-9);
    }

    /// The prediction analyzer never converges on a window containing an
    /// out-of-bounds or missing prediction, and always converges on a
    /// constant in-bounds window.
    #[test]
    fn analyzer_bounds_and_constants(
        value in 0.0f64..100.0,
        garbage in 100.0001f64..1e6,
        rule_idx in 0usize..3,
    ) {
        let rule = [ConvergenceRule::Range, ConvergenceRule::Variance, ConvergenceRule::StdDev][rule_idx];
        let analyzer = PredictionAnalyzer { rule, ..PredictionAnalyzer::paper_defaults() };
        let stable = vec![Some(value); 3];
        prop_assert!(analyzer.converged(&stable));
        let poisoned = vec![Some(value), Some(garbage), Some(value)];
        prop_assert!(!analyzer.converged(&poisoned));
        let missing = vec![Some(value), None, Some(value)];
        prop_assert!(!analyzer.converged(&missing));
    }

    /// Pareto dominance is antisymmetric for distinct vectors.
    #[test]
    fn dominance_antisymmetric(
        a in proptest::collection::vec(-100.0f64..100.0, 2),
        b in proptest::collection::vec(-100.0f64..100.0, 2),
    ) {
        let oa = Objectives::new(a);
        let ob = Objectives::new(b);
        prop_assert!(!(oa.dominates(&ob) && ob.dominates(&oa)));
    }

    /// Curve fitting on any bounded noisy saturating curve yields a finite
    /// prediction inside a generous envelope.
    #[test]
    fn fitting_is_numerically_safe(
        a in 60.0f64..99.0,
        rho in 0.3f64..0.95,
        noise_seed in any::<u64>(),
    ) {
        use a4nn_penguin::{fit_curve, CurveFamily, FitConfig, ParametricCurve};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
        let xs: Vec<f64> = (1..=12).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| (a - (a - 50.0) * rho.powf(x) + rng.gen_range(-0.5..0.5)).clamp(0.0, 100.0))
            .collect();
        let fit = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default());
        if let Ok(fit) = fit {
            let pred = CurveFamily::ExpBase.eval(&fit.params, 25.0);
            prop_assert!(pred.is_finite());
            prop_assert!((-500.0..600.0).contains(&pred), "pred {}", pred);
        }
    }
}
