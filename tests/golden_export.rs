//! Golden-file regression tests for the data-commons CSV exports.
//!
//! The paper's analysis pipeline consumes `models.csv` and `epochs.csv`
//! downstream, so their headers and row format are a public contract.
//! This pins the byte-exact output of the Table 1/Table 2 configuration
//! at the paper's seed (2023) against committed golden files.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```bash
//! UPDATE_GOLDEN=1 cargo test --test golden_export
//! ```

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::{epochs_csv, models_csv};
use std::path::PathBuf;

const MODELS_HEADER: &str = "model_id,generation,gpu,beam,genome,flops_mflops,epochs_trained,\
     final_fitness,predicted_fitness,terminated_early,termination_epoch,wall_time_s,status,attempts,\
     obj_neg_fitness,obj_flops";
const EPOCHS_HEADER: &str = "model_id,epoch,train_acc,val_acc,duration_s,prediction";

fn paper_run() -> RunOutput {
    // Table 2: 100 networks (10 + 10×9), 25-epoch budget; Table 1 engine
    // defaults; medium beam; the paper's seed.
    let config = WorkflowConfig::a4nn(BeamIntensity::Medium, 4, 2023);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    A4nnWorkflow::new(config).run(&factory)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_export",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden copy; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn csv_headers_are_pinned() {
    let out = paper_run();
    let models = models_csv(&out.commons);
    let epochs = epochs_csv(&out.commons);
    assert_eq!(models.lines().next().unwrap(), MODELS_HEADER);
    assert_eq!(epochs.lines().next().unwrap(), EPOCHS_HEADER);
    // One data row per model; epochs.csv has one row per trained epoch.
    assert_eq!(models.lines().count(), 1 + out.commons.len());
    assert_eq!(epochs.lines().count(), 1 + out.total_epochs() as usize);
}

#[test]
fn paper_configuration_exports_match_golden_files() {
    let out = paper_run();
    check_golden("models_seed2023.csv", &models_csv(&out.commons));
    check_golden("epochs_seed2023.csv", &epochs_csv(&out.commons));
}

/// The unified [`EvalPipeline`] with a zero-fault plan must be invisible:
/// a resilient run that injects nothing and retries nothing is
/// byte-identical to the plain `run()` that produced the golden files.
fn zero_fault_run(orchestration: Orchestration) -> RunOutput {
    let config = WorkflowConfig::a4nn(BeamIntensity::Medium, 4, 2023);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let ft = FaultTolerance::new(RetryPolicy::with_retries(0), FaultPlan::none());
    A4nnWorkflow::new(config).run_resilient(&factory, None, orchestration, &ft)
}

#[test]
fn zero_fault_pipeline_matches_golden_files_direct() {
    let out = zero_fault_run(Orchestration::Direct);
    check_golden("models_seed2023.csv", &models_csv(&out.commons));
    check_golden("epochs_seed2023.csv", &epochs_csv(&out.commons));
}

#[test]
fn zero_fault_pipeline_matches_golden_files_bus() {
    let out = zero_fault_run(Orchestration::Bus);
    check_golden("models_seed2023.csv", &models_csv(&out.commons));
    check_golden("epochs_seed2023.csv", &epochs_csv(&out.commons));
}

#[test]
fn row_format_survives_a_failed_model() {
    // A terminally failed model must still export a well-formed row:
    // empty prediction, status `failed`, the consumed attempt count.
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 4,
            offspring: 4,
            generations: 2,
            epochs: 8,
            ..NasSettings::paper_defaults()
        },
        engine: Some(EngineConfig {
            e_pred: 8,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam: BeamIntensity::Medium,
        seed: 2023,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let ft = FaultTolerance::new(
        a4nn_sched::RetryPolicy::with_retries(1),
        FaultPlan::new(vec![a4nn_faults::FaultEvent::PanicAt {
            model: 2,
            epoch: 3,
            failures: 99,
        }]),
    );
    let out = A4nnWorkflow::new(config).run_resilient(&factory, None, Orchestration::Direct, &ft);
    let models = models_csv(&out.commons);
    let row = models
        .lines()
        .find(|l| l.starts_with("2,"))
        .expect("model 2 exported");
    let fields: Vec<&str> = row.split(',').collect();
    assert_eq!(fields.len(), MODELS_HEADER.split(',').count());
    assert_eq!(fields[12], "failed", "status column");
    assert_eq!(fields[13], "2", "attempts column");
    assert_eq!(fields[8], "", "failed models predict nothing");
}
