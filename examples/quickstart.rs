//! Quickstart: a complete (small) A4NN run with real CPU training.
//!
//! Generates a synthetic XFEL diffraction dataset, runs a miniature
//! NSGA-Net search with the prediction engine attached, trains every
//! candidate network for real on the CPU substrate, and prints the Pareto
//! front plus the epoch savings the engine delivered.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use a4nn_core::prelude::*;
use a4nn_core::{RealTrainerFactory, TrainingHyperparams};
use a4nn_lineage::Analyzer;
use a4nn_xfel::generate_split;
use std::sync::Arc;

fn main() {
    let beam = BeamIntensity::High;
    println!("== A4NN quickstart ==");
    println!("generating synthetic XFEL diffraction data ({beam} beam intensity)...");
    let xfel = XfelConfig::default();
    let (train, test) = generate_split(&xfel, beam, 80, 42);
    println!(
        "  {} training images, {} validation images, {}x{} px",
        train.len(),
        test.len(),
        xfel.detector,
        xfel.detector
    );

    // A miniature Table-2 configuration so the example finishes in about a
    // minute of CPU training.
    let config = WorkflowConfig {
        nas: NasSettings {
            population: 4,
            offspring: 4,
            generations: 3,
            epochs: 8,
            ..NasSettings::paper_defaults()
        },
        engine: Some(EngineConfig {
            e_pred: 8,
            ..EngineConfig::paper_defaults()
        }),
        gpus: 2,
        beam,
        seed: 42,
        objectives: a4nn_core::ObjectiveSet::default(),
    };
    println!(
        "searching {} architectures ({} generations, engine: F(x) = a - b^(c-x))...",
        config.nas.total_models(),
        config.nas.generations
    );
    let factory = RealTrainerFactory::new(
        config.search_space(),
        Arc::new(train),
        Arc::new(test),
        TrainingHyperparams::default(),
    );
    let output = A4nnWorkflow::new(config).run(&factory);

    let analyzer = Analyzer::new(&output.commons);
    println!("\nresults:");
    println!("  total epochs trained : {}", output.total_epochs());
    println!("  epochs saved         : {:.1}%", output.epochs_saved_pct());
    println!(
        "  early terminations   : {:.0}%",
        100.0 * analyzer.early_termination_rate()
    );
    println!("\nPareto front (validation accuracy vs MFLOPs):");
    let mut front = analyzer.pareto_front();
    front.sort_by(|a, b| a.flops.partial_cmp(&b.flops).unwrap());
    for model in front {
        println!(
            "  model {:>2} | {:>6.1} MFLOPs | {:>5.1}% | genome {}",
            model.model_id,
            model.flops,
            model.final_fitness,
            model.genome.to_compact_string()
        );
    }
    let best = analyzer.best_by_fitness().expect("models were trained");
    println!(
        "\nbest model: #{} at {:.1}% validation accuracy",
        best.model_id, best.final_fitness
    );
}
