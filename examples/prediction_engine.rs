//! Using the prediction engine standalone — the composability story.
//!
//! The engine consumes only `(epoch, fitness)` pairs, so it can augment
//! *any* training loop. This example attaches it to three hand-written
//! learning curves and shows when (and whether) it terminates each one,
//! then demonstrates swapping the parametric function — the knob the
//! paper's conclusions ask about.
//!
//! ```bash
//! cargo run --release --example prediction_engine
//! ```

use a4nn_penguin::{
    CurveFamily, EngineConfig, ParametricCurve, PredictionEngine, PredictionOutcome,
};

fn demo(name: &str, config: EngineConfig, curve: impl Fn(u32) -> f64) {
    let mut engine = PredictionEngine::new(config);
    let outcome = engine.run_training_loop(25, &curve);
    match outcome {
        PredictionOutcome::Converged { epoch, fitness } => {
            let truth = curve(25);
            println!(
                "  {name:<22} terminated at epoch {epoch:>2}: predicted {fitness:6.2}% \
                 (true fitness@25 = {truth:6.2}%, error {:4.2})",
                (fitness - truth).abs()
            );
        }
        PredictionOutcome::Exhausted { fitness } => {
            println!("  {name:<22} trained all 25 epochs (final fitness {fitness:6.2}%)");
        }
    }
}

fn main() {
    println!("== the decoupled prediction engine on three training curves ==\n");
    println!("engine: F(x) = a - b^(c-x), C_min=3, e_pred=25, N=3, r=0.5 (paper Table 1)\n");
    let paper = EngineConfig::paper_defaults();

    demo("fast learner", paper.clone(), |e| {
        96.0 - 55.0 * 0.55f64.powi(e as i32)
    });
    demo("slow learner", paper.clone(), |e| {
        92.0 - 45.0 * 0.88f64.powi(e as i32)
    });
    demo("non-learner", paper.clone(), |e| {
        50.0 + if e % 2 == 0 { 0.3 } else { -0.3 }
    });
    demo("late bloomer (convex)", paper.clone(), |e| {
        50.0 + 40.0 * (f64::from(e) / 25.0).powf(2.0)
    });

    println!("\n== swapping the parametric function (same fast-learner curve) ==\n");
    for family in CurveFamily::ALL {
        let config = EngineConfig {
            family,
            ..EngineConfig::paper_defaults()
        };
        demo(family.name(), config, |e| {
            96.0 - 55.0 * 0.55f64.powi(e as i32)
        });
    }

    println!("\nthe engine returns P[-1] as the fitness the NAS should use (Alg. 1);");
    println!("curves that never stabilize simply train their full budget.");
}
