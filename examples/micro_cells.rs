//! The micro (cell-based) search space: engine-augmented random search
//! over repeated cells, trained for real on the CPU substrate — NSGA-Net's
//! second search space running on the same composable workflow parts.
//!
//! ```bash
//! cargo run --release --example micro_cells
//! ```

use a4nn_core::micro::{micro_random_search, MicroTrainerFactory};
use a4nn_core::prelude::*;
use a4nn_genome::{MicroSearchSpace, MICRO_OP_NAMES};
use a4nn_lineage::Analyzer;
use a4nn_xfel::generate_split;
use std::sync::Arc;

fn main() {
    let beam = BeamIntensity::High;
    println!("== micro search space: engine-augmented random cell search ==\n");
    let (train, val) = generate_split(&XfelConfig::default(), beam, 80, 11);
    println!(
        "dataset: {} train / {} validation diffraction images ({beam} beam)",
        train.len(),
        val.len()
    );
    let space = MicroSearchSpace::reduced_defaults();
    println!(
        "space: {} nodes/cell, {} ops ({}), stages {:?} x{} cells\n",
        space.nodes_per_cell,
        MICRO_OP_NAMES.len(),
        MICRO_OP_NAMES.join(", "),
        space.stage_channels,
        space.cells_per_stage,
    );

    let factory = MicroTrainerFactory::new(space.clone(), Arc::new(train), Arc::new(val));
    let mut cfg = WorkflowConfig::a4nn(beam, 2, 11);
    cfg.nas.epochs = 6;
    if let Some(e) = cfg.engine.as_mut() {
        e.e_pred = 6;
    }
    let budget = 6;
    println!(
        "evaluating {budget} random cells, up to {} epochs each...",
        cfg.nas.epochs
    );
    let (commons, schedule) = micro_random_search(&cfg, &space, &factory, budget);

    let analyzer = Analyzer::new(&commons);
    for r in &commons.records {
        println!(
            "  model {} | {:>6.1} MFLOPs | best val {:>5.1}% | {:>2} epochs{} | {}",
            r.model_id,
            r.flops,
            r.final_fitness,
            r.epochs_trained(),
            if r.terminated_early() { " (early)" } else { "" },
            r.arch_summary,
        );
    }
    let best = analyzer.best_by_fitness().unwrap();
    println!(
        "\nbest cell: model {} at {:.1}% validation accuracy ({})",
        best.model_id, best.final_fitness, best.arch_summary
    );
    println!(
        "cluster wall time on {} virtual GPUs: {:.1}s (FIFO)",
        cfg.gpus,
        schedule.total_wall_time()
    );
}
