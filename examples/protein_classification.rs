//! The paper's full use case at surrogate scale: search 100 architectures
//! per beam intensity with and without the prediction engine, and compare
//! epochs, wall time, and Pareto quality — the experiment behind the
//! paper's headline "up to 38% fewer epochs, up to 37% less training time".
//!
//! ```bash
//! cargo run --release --example protein_classification
//! ```

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::Analyzer;

fn run(beam: BeamIntensity, engine: bool, gpus: usize) -> a4nn_core::RunOutput {
    let config = if engine {
        WorkflowConfig::a4nn(beam, gpus, 2023)
    } else {
        WorkflowConfig::standalone(beam, 2023)
    };
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    A4nnWorkflow::new(config).run(&factory)
}

fn main() {
    println!("== protein-conformation classification: A4NN vs standalone NSGA-Net ==");
    println!("(100 architectures per test; training on the calibrated surrogate cluster)\n");
    for beam in BeamIntensity::ALL {
        let a4nn = run(beam, true, 1);
        let standalone = run(beam, false, 1);
        let distributed = run(beam, true, 4);
        let a = Analyzer::new(&a4nn.commons);
        let s = Analyzer::new(&standalone.commons);
        println!("beam intensity {beam}:");
        println!(
            "  standalone : {:>5} epochs, {:>6.1} h, best acc {:>5.2}%",
            standalone.total_epochs(),
            standalone.wall_time_s() / 3600.0,
            s.best_by_fitness().unwrap().final_fitness,
        );
        println!(
            "  A4NN 1 GPU : {:>5} epochs, {:>6.1} h, best acc {:>5.2}%  ({:.1}% epochs saved)",
            a4nn.total_epochs(),
            a4nn.wall_time_s() / 3600.0,
            a.best_by_fitness().unwrap().final_fitness,
            a4nn.epochs_saved_pct(),
        );
        println!(
            "  A4NN 4 GPU : {:>5} epochs, {:>6.1} h  ({:.2}x wall-time speedup)",
            distributed.total_epochs(),
            distributed.wall_time_s() / 3600.0,
            a4nn.wall_time_s() / distributed.wall_time_s(),
        );
        println!(
            "  engine     : {:.0}% of models terminated early, mean e_t {}",
            100.0 * a.early_termination_rate(),
            a.mean_termination_epoch()
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
        println!();
    }
    println!("paper reference: up to 38% fewer epochs and 37% less training time,");
    println!("with no loss of Pareto quality relative to standalone NSGA-Net.");
}
