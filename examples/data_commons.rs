//! The lineage tracker and data commons: record a full search, persist it
//! to disk as the paper's Dataverse-style deposit (one JSON file per
//! model + manifest), reload it, and analyze it — the workflow behind the
//! paper's 54 GB open-access commons and its Jupyter analyzer.
//!
//! ```bash
//! cargo run --release --example data_commons
//! ```

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::{
    feature_fitness_correlations, models_csv, success_contrast, Analyzer, DataCommons,
};

fn main() {
    let beam = BeamIntensity::Medium;
    println!("== building a data commons from an A4NN run ==\n");
    let config = WorkflowConfig::a4nn(beam, 2, 7);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    let output = A4nnWorkflow::new(config).run(&factory);
    println!(
        "run complete: {} record trails collected",
        output.commons.len()
    );

    // Persist and reload, Dataverse-style.
    let dir = std::env::temp_dir().join("a4nn-data-commons-example");
    output.commons.save_dir(&dir).expect("commons writes");
    let loaded = DataCommons::load_dir(&dir).expect("commons loads");
    assert_eq!(loaded, output.commons);
    let bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "persisted to {} ({} files, {:.1} KiB) and reloaded losslessly\n",
        dir.display(),
        loaded.len() + 1,
        bytes as f64 / 1024.0
    );

    // Analyzer queries (the paper's notebook workflows).
    let analyzer = Analyzer::new(&loaded);
    println!("analyzer queries:");
    println!(
        "  mean fitness                : {:.2}%",
        analyzer.mean_fitness()
    );
    println!(
        "  models above 99% fitness    : {}",
        analyzer.find(|r| r.final_fitness > 99.0).len()
    );
    println!(
        "  early-terminated models     : {:.0}%",
        100.0 * analyzer.early_termination_rate()
    );
    println!(
        "  FLOPs-accuracy correlation  : {:+.3}",
        analyzer.flops_fitness_correlation().unwrap_or(f64::NAN)
    );
    println!(
        "  mean |prediction error|     : {:.2} accuracy points",
        analyzer.mean_prediction_error().unwrap_or(f64::NAN)
    );

    // Inspect one record trail end to end.
    let best = analyzer.best_by_fitness().unwrap();
    println!(
        "\nrecord trail of the best model (#{}, gen {}, gpu {:?}):",
        best.model_id, best.generation, best.gpu
    );
    println!("  genome      : {}", best.genome.to_compact_string());
    println!("  arch        : {}", best.arch_summary);
    println!("  flops       : {:.1} MFLOPs", best.flops);
    if let Some(engine) = &best.engine {
        println!(
            "  engine      : {} (C_min={}, e_pred={}, N={}, r={})",
            engine.function, engine.c_min, engine.e_pred, engine.n, engine.r
        );
    }
    println!("  learning curve (epoch, val acc, prediction):");
    for e in &best.epochs {
        println!(
            "    {:>2}  {:>6.2}%  {}",
            e.epoch,
            e.val_acc,
            e.prediction
                .map(|p| format!("{p:6.2}%"))
                .unwrap_or_else(|| "   -  ".into())
        );
    }
    // Structural analytics: the conclusions' "are there structural
    // similarities between successful architectures?" question.
    println!("\nstructural feature ↔ fitness correlations:");
    for (name, corr) in feature_fitness_correlations(&loaded) {
        println!("  {name:<14} {corr:+.3}");
    }
    if let Some((top, rest)) = success_contrast(&loaded, 0.2) {
        println!(
            "top-20% models average {:.2} active nodes vs {:.2} for the rest",
            top.means[0].1, rest.means[0].1
        );
    }

    // Tabular export for DataFrame-style analysis.
    let csv = models_csv(&loaded);
    println!(
        "\nmodels.csv preview ({} rows):\n{}",
        csv.lines().count() - 1,
        csv.lines().take(3).collect::<Vec<_>>().join("\n")
    );
    std::fs::remove_dir_all(&dir).ok();
}
