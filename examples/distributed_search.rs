//! Distributed training across virtual GPUs — §2.5's resource manager on
//! both of its implementations:
//!
//! 1. the **discrete-event simulator** scales the full paper configuration
//!    from 1 to 8 GPUs and reports the per-generation idle tails FIFO
//!    scheduling leaves behind, and
//! 2. the **real thread pool** trains a small generation of networks
//!    concurrently, showing measured (not simulated) speedup.
//!
//! ```bash
//! cargo run --release --example distributed_search
//! ```

use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_sched::GpuPool;
use a4nn_xfel::generate_split;
use std::time::Instant;

fn main() {
    let beam = BeamIntensity::Medium;

    println!("== part 1: simulated cluster scaling (paper configuration) ==\n");
    println!(
        "{:>5} | {:>12} | {:>10} | {:>12}",
        "GPUs", "wall time", "speedup", "idle tail"
    );
    let mut base = None;
    for gpus in [1usize, 2, 4, 8] {
        let config = WorkflowConfig::a4nn(beam, gpus, 2023);
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
        let out = A4nnWorkflow::new(config).run(&factory);
        let hours = out.wall_time_s() / 3600.0;
        let baseline = *base.get_or_insert(hours);
        println!(
            "{gpus:>5} | {hours:>11.2}h | {:>9.2}x | {:>11.2}h",
            baseline / hours,
            out.schedule.total_idle_tail() / 3600.0,
        );
    }
    println!("\n(the idle tail grows with GPU count because 10 models per generation");
    println!(" do not divide evenly — the §2.5 observation)\n");

    println!("== part 2: real thread-pool training of one generation ==\n");
    let (train, test) = generate_split(&XfelConfig::default(), BeamIntensity::High, 40, 9);
    let train = std::sync::Arc::new(train);
    let test = std::sync::Arc::new(test);
    let space = SearchSpace::paper_defaults();
    let factory = a4nn_core::RealTrainerFactory::new(
        space.clone(),
        train,
        test,
        a4nn_core::TrainingHyperparams::default(),
    );
    use a4nn_core::trainer::TrainerFactory;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let genomes: Vec<_> = (0..6).map(|_| space.random_genome(&mut rng)).collect();

    for workers in [1usize, 3] {
        let pool = GpuPool::new(workers);
        let t0 = Instant::now();
        let jobs: Vec<_> = genomes
            .iter()
            .enumerate()
            .map(|(i, genome)| {
                let factory = &factory;
                move |_gpu: usize| {
                    let mut trainer = factory.make(genome, i as u64, 5);
                    let mut acc = 0.0;
                    for e in 1..=2 {
                        acc = trainer.train_epoch(e).val_acc;
                    }
                    acc
                }
            })
            .collect();
        let (accs, reports) = pool.run_batch(jobs).expect("pool machinery is healthy");
        let elapsed = t0.elapsed().as_secs_f64();
        let workers_used: std::collections::HashSet<usize> =
            reports.iter().map(|r| r.worker).collect();
        println!(
            "  {workers} worker(s): trained {} models in {elapsed:.1}s on {} virtual GPU(s); \
             val accs {:?}",
            accs.len(),
            workers_used.len(),
            accs.iter()
                .flatten()
                .map(|a| format!("{a:.0}"))
                .collect::<Vec<_>>()
        );
    }
    println!("\nFIFO dynamic scheduling: each free worker takes the next untrained model,");
    println!("exactly Ray's policy in the paper's deployment.");
}
