//! Offline stand-in for `proptest`.
//!
//! Supports the generate-and-check core of the API: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, `pat in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! [`collection::vec`] strategies, [`any`], and the
//! `prop_map`/`prop_filter` combinators. Unlike upstream there is no
//! shrinking: a failing case reports its inputs via the assertion
//! message and the deterministic (test-name, case-index) RNG seed makes
//! every failure exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the test name and case
/// index so reruns regenerate identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from (test name, case index).
    pub fn from_name_and_case(name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ (u64::from(case) << 32 | 0x5bd1),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Reject values failing `pred`, regenerating until one passes
    /// (upstream rejects-and-retries at the runner level; the bound on
    /// retries stands in for its `max_global_rejects`).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.source.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive candidates",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`prop_oneof!`]: one of several strategies over the same
/// value type, chosen uniformly per case (upstream also supports
/// per-arm weights, which this stand-in does not need).
pub struct OneOf<T> {
    choices: Vec<Arm<T>>,
}

/// One boxed generator arm of a [`OneOf`] strategy.
pub type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

impl<T> OneOf<T> {
    /// Build from boxed generator closures; used by [`prop_oneof!`].
    pub fn new(choices: Vec<Arm<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        (self.choices[idx])(rng)
    }
}

/// Choose uniformly among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf::new(vec![
            $({
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` ([`any`]'s return type).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Rng, Strategy, TestRng};

    /// Inclusive-exclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::TestRng::from_name_and_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("case {} of {}: {}", __case, __config.cases, __msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failures report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pairs(n: usize) -> impl Strategy<Value = Vec<(u64, f64)>> {
        crate::collection::vec(any::<u64>(), n)
            .prop_map(|xs| xs.into_iter().map(|x| (x, x as f64)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..7, f in -2.0f64..2.0) {
            prop_assert!(x < 7);
            prop_assert!((-2.0..2.0).contains(&f), "f out of bounds: {}", f);
        }

        /// Doc comments and attributes above tests are preserved.
        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u32..9, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn map_and_filter_compose(
            v in crate::collection::vec(0.0f64..100.0, 1..4)
                .prop_filter("nonempty mean", |v| !v.is_empty())
                .prop_map(|v| v.iter().sum::<f64>() / v.len() as f64)
        ) {
            prop_assert!((0.0..100.0).contains(&v));
        }

        #[test]
        fn helper_strategies_work(pairs in arb_pairs(3)) {
            prop_assert_eq!(pairs.len(), 3);
            for (a, b) in pairs {
                prop_assert_eq!(a as f64, b);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use rand::Rng;
        let mut a = crate::TestRng::from_name_and_case("t", 3);
        let mut b = crate::TestRng::from_name_and_case("t", 3);
        let mut c = crate::TestRng::from_name_and_case("t", 4);
        let xs: Vec<u64> = (0..4).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
