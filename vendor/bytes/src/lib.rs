//! Offline stand-in for the `bytes` crate.
//!
//! Implements the `Bytes`/`BytesMut` pair with the little-endian
//! `Buf`/`BufMut` accessors the workspace's binary model-state codec
//! uses. `Bytes` is a cheaply cloneable shared buffer with a cursor;
//! `BytesMut` is a growable write buffer that freezes into `Bytes`.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side accessors over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `n` raw bytes.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }
}

/// Write-side accessors over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A cheaply cloneable, immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the readable window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` bytes, advancing self past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A new `Bytes` sharing the same storage, windowed to `range`
    /// (relative to the current readable window).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// View the readable window as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(7);
        w.put_f32_le(2.5);
        w.put_slice(b"abc");
        w.put_u8(9);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 3 + 1);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f32_le(), 2.5);
        assert_eq!(r.copy_bytes(3), b"abc");
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_advances_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn clone_is_shallow_and_independent() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        let _ = a.get_u32_le();
        assert_eq!(a.remaining(), 0);
        assert_eq!(b.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
