//! Sequence utilities: the [`SliceRandom`] extension trait.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates, iterating downward like
    /// upstream rand).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly choose one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
