//! Named generators. [`StdRng`] is xoshiro256** — small, fast, and
//! statistically strong; seeded deterministically via SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw xoshiro256** state words, for checkpoint/resume machinery
    /// that must continue a stream bit-for-bit across process restarts.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from [`state`](Self::state). The stream
    /// continues exactly where the captured generator left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        // An all-zero state is a fixed point of xoshiro; nudge it the
        // same way `from_seed` does so restore cannot degenerate.
        if s == [0, 0, 0, 0] {
            StdRng::from_seed([0u8; 32])
        } else {
            StdRng { s }
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            rng.next_u64();
        }
        let mut restored = StdRng::from_state(rng.state());
        let a: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_state_restore_is_not_degenerate() {
        let mut rng = StdRng::from_state([0, 0, 0, 0]);
        assert!((0..4).map(|_| rng.next_u64()).any(|x| x != 0));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
