//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the exact surface the workspace uses — [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`] — with a deterministic xoshiro256**
//! generator seeded through SplitMix64. Streams differ from upstream
//! rand's ChaCha12 `StdRng`, but every consumer in this workspace only
//! relies on seeded determinism, not on upstream's exact streams.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64,
    /// matching upstream's convenience constructor semantics
    /// (deterministic, well-mixed, distinct streams per seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (low as i128, high as i128);
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Widening-multiply rejection sampling (Lemire) over u64.
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
                loop {
                    let raw = rng.next_u64();
                    if raw <= zone {
                        return (lo + (raw as u128 % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let _ = inclusive; // measure-zero difference for floats
                assert!(low < high || (inclusive && low <= high), "empty float range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + (high as f64 - low as f64) * unit;
                // Guard against rounding up to the exclusive bound.
                if !inclusive && v as $t >= high {
                    low
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: u8 = rng.gen_range(0..=3u8);
            assert!(i <= 3);
            let neg: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((11_500..13_500).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(7);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
    }
}
