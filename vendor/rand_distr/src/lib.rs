//! Offline stand-in for `rand_distr`: the [`Distribution`] trait and a
//! [`Poisson`] sampler (Knuth multiplication for small rates, normal
//! approximation for large rates).

use rand::{Rng, RngCore};

/// Types that can generate samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoissonError;

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson rate must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution; `lambda` must be finite and > 0.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product = 1.0f64;
            let mut count = 0u64;
            loop {
                product *= rng.gen_range(0.0f64..1.0);
                if product <= limit {
                    return count as f64;
                }
                count += 1;
            }
        } else {
            // Normal approximation N(λ, λ) via Box–Muller, clamped at 0.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0f64..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.lambda + self.lambda.sqrt() * z).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(3.5).is_ok());
    }

    #[test]
    fn small_lambda_mean_is_close() {
        let dist = Poisson::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn large_lambda_mean_is_close() {
        let dist = Poisson::new(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!(samples.iter().all(|&s| s >= 0.0 && s.fract() == 0.0));
    }
}
