//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the `Value`-based
//! traits in the sibling `serde` stand-in, without syn or quote: the
//! input item is parsed directly from its `TokenTree` sequence into a
//! small shape model (named struct / tuple struct / enum, plus type
//! parameters and `#[serde(skip)]` / `#[serde(default)]` /
//! `#[serde(default = "path")]` markers), and the impl is emitted as
//! source text and re-parsed into a `TokenStream`.
//!
//! Encoding matches upstream serde's JSON conventions for the shapes
//! this workspace uses: structs as objects in field declaration order,
//! newtype structs as their inner value, enums externally tagged
//! (unit variants as strings).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    /// Type-parameter idents (lifetimes and bounds stripped).
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    /// Named-field struct.
    Struct(Vec<(String, FieldAttrs)>),
    /// Tuple struct with N fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

/// Per-field `#[serde(...)]` markers this stand-in understands.
#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` for `#[serde(default)]` (use `Default::default()`),
    /// `Some(Some(path))` for `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Variant {
    name: String,
    payload: Payload,
}

#[derive(Debug)]
enum Payload {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant field names.
    Struct(Vec<String>),
}

/// Advance past one attribute (`#` + bracket group), returning the
/// `#[serde(...)]` markers it carried (`skip`, `default`,
/// `default = "path"`).
fn eat_attr(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    *i += 1; // '#'
    let mut attrs = FieldAttrs::default();
    if let Some(TokenTree::Group(g)) = tokens.get(*i) {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
                    let mut j = 0;
                    while j < arg_tokens.len() {
                        match &arg_tokens[j] {
                            TokenTree::Ident(a) if a.to_string() == "skip" => attrs.skip = true,
                            TokenTree::Ident(a) if a.to_string() == "default" => {
                                let eq = matches!(
                                    arg_tokens.get(j + 1),
                                    Some(TokenTree::Punct(p)) if p.as_char() == '='
                                );
                                if let (true, Some(TokenTree::Literal(lit))) =
                                    (eq, arg_tokens.get(j + 2))
                                {
                                    let path = lit.to_string().trim_matches('"').to_string();
                                    attrs.default = Some(Some(path));
                                    j += 2;
                                } else {
                                    attrs.default = Some(None);
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
        }
        *i += 1;
    }
    attrs
}

/// Parse the `<...>` generic parameter list starting at the opening
/// angle bracket, returning type/const parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut expect_name = true;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                *i += 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expect_name = true;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: skip the quote and its ident.
                expect_name = false;
                *i += 2;
            }
            TokenTree::Ident(id) if depth == 1 && expect_name => {
                let s = id.to_string();
                if s != "const" {
                    params.push(s);
                    expect_name = false;
                }
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    params
}

/// Parse named fields from the tokens of a brace group:
/// `[attrs] [pub] name : Type ,` repeated.
fn parse_named_fields(body: &[TokenTree]) -> Vec<(String, FieldAttrs)> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let mut attrs = FieldAttrs::default();
        // Attributes (doc comments arrive as #[doc = "..."] too).
        while matches!(&body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let a = eat_attr(body, &mut i);
            attrs.skip |= a.skip;
            if a.default.is_some() {
                attrs.default = a.default;
            }
        }
        // Visibility.
        if matches!(&body.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&body.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate)
            }
        }
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push((name.to_string(), attrs));
        i += 1; // name
        i += 1; // ':'
                // Type tokens until a comma at angle depth 0. Groups are atomic
                // tokens, so only '<'/'>' need explicit depth tracking.
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count comma-separated entries at angle depth 0 in a paren group.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    // Trailing comma.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while matches!(&body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            eat_attr(body, &mut i);
        }
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let payload = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Payload::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Payload::Struct(
                    parse_named_fields(&inner)
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect(),
                )
            }
            _ => Payload::Unit,
        };
        variants.push(Variant { name, payload });
        // Skip to past the next comma (also skips discriminants).
        while i < body.len() {
            if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    // Skip attributes and visibility down to the item keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                eat_attr(&tokens, &mut i);
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    is_enum = s == "enum";
                    i += 1;
                    break;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    let generics = if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        parse_generics(&tokens, &mut i)
    } else {
        Vec::new()
    };
    // Find the body (skipping any where clause).
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break if is_enum {
                    Kind::Enum(parse_variants(&inner))
                } else {
                    Kind::Struct(parse_named_fields(&inner))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break Kind::Tuple(count_tuple_fields(&inner));
            }
            Some(_) => i += 1,
            None => panic!("no struct/enum body found for `{name}`"),
        }
    };
    Item {
        name,
        generics,
        kind,
    }
}

/// `impl<G: serde::Trait> ... for Name<G>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut code =
                String::from("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
            for (field, attrs) in fields {
                if attrs.skip {
                    continue;
                }
                code.push_str(&format!(
                    "__fields.push((String::from(\"{field}\"), serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            code.push_str("serde::Value::Object(__fields)");
            code
        }
        Kind::Tuple(1) => String::from("serde::Serialize::to_value(&self.0)"),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(String::from(\"{vname}\")),\n"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => serde::Value::Object(vec![(String::from(\"{vname}\"), serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Payload::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::Value::Object(vec![(String::from(\"{vname}\"), serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            values.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(String::from(\"{vname}\"), serde::Value::Object(vec![{}]))]),\n",
                            fields.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_mut, unused_variables)]\n\
         impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for (field, attrs) in fields {
                if attrs.skip {
                    inits.push_str(&format!("{field}: Default::default(),\n"));
                } else if let Some(default) = &attrs.default {
                    let fallback = match default {
                        Some(path) => format!("{path}()"),
                        None => String::from("Default::default()"),
                    };
                    inits.push_str(&format!(
                        "{field}: match serde::de_opt_field(__v, \"{field}\")? {{\n\
                             Some(__present) => __present,\n\
                             None => {fallback},\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!("{field}: serde::de_field(__v, \"{field}\")?,\n"));
                }
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Kind::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        Kind::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     serde::Value::Array(__items) if __items.len() == {n} => Ok({name}({})),\n\
                     _ => Err(serde::DeError::expected(\"{n}-element array\")),\n\
                 }}",
                gets.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    Payload::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Payload::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 serde::Value::Array(__items) if __items.len() == {n} => Ok({name}::{vname}({})),\n\
                                 _ => Err(serde::DeError::expected(\"{n}-element array\")),\n\
                             }},\n",
                            gets.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: serde::de_field(__inner, \"{f}\")?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(serde::DeError::unknown_variant(__other)),\n\
                     }},\n\
                     serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                         let (__tag, __inner) = &__tagged[0];\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\
                             __other => Err(serde::DeError::unknown_variant(__other)),\n\
                         }}\n\
                     }}\n\
                     _ => Err(serde::DeError::expected(\"externally tagged enum\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl{impl_generics} serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derive `serde::Serialize` (Value-based stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (Value-based stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
