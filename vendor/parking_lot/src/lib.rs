//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the `parking_lot` API the workspace uses on
//! top of `std::sync`, with `parking_lot`'s ergonomics: no lock
//! poisoning (a poisoned std lock is transparently recovered) and
//! guard-based `Condvar` waits.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive. API-compatible subset of
/// `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar::wait`]
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock. API-compatible subset of `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring
/// `parking_lot::Condvar`'s `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// [`wait`](Self::wait) with a timeout. Returns `true` if the wait
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }
}
