//! Offline stand-in for `rayon`'s data-parallel iterators.
//!
//! Items are materialized eagerly (slice chunks, references, or range
//! values), split into contiguous blocks, and processed by scoped OS
//! threads — one per block — with results re-joined in block order so
//! `collect()` preserves input order exactly like upstream rayon's
//! indexed iterators. No work-stealing; throughput is adequate for the
//! workspace's coarse-grained chunked workloads.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

fn num_threads(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
        .max(1)
}

/// Split `items` into at most `parts` contiguous blocks of near-equal
/// size, preserving order.
fn split_blocks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let mut blocks = Vec::with_capacity(parts);
    let base = len / parts;
    let extra = len % parts;
    // Drain from the back so each drain is O(block); reverse at the end.
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    for size in sizes {
        let at = items.len() - size;
        blocks.push(items.split_off(at));
    }
    blocks.reverse();
    blocks
}

fn run_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    if items.is_empty() {
        return Vec::new();
    }
    let parts = num_threads(items.len());
    let blocks = split_blocks(items, parts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An eager, indexed parallel iterator over already-materialized items.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> IterBridge<T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> IterBridge<(usize, T)> {
        IterBridge {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily map each item; the mapping runs on the worker threads.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> MapBridge<T, F> {
        MapBridge {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, &|item| f(item));
    }

    /// Collect items in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator; applies its closure on worker threads.
pub struct MapBridge<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapBridge<T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Run the map in parallel for its side effects.
    pub fn for_each<U>(self)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        run_map(self.items, &self.f);
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> IterBridge<&T>;

    /// Parallel iterator over non-overlapping chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks(&self, size: usize) -> IterBridge<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> IterBridge<&T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> IterBridge<&[T]> {
        IterBridge {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> IterBridge<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> IterBridge<&mut [T]> {
        IterBridge {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Materialize into a parallel iterator.
    fn into_par_iter(self) -> IterBridge<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;

    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate_map_collect() {
        let data = [10u32, 20, 30, 40, 50];
        let out: Vec<(usize, u32)> = data
            .par_iter()
            .enumerate()
            .map(|(i, &v)| (i, v + 1))
            .collect();
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31), (3, 41), (4, 51)]);
    }

    #[test]
    fn par_chunks_map_collect() {
        let data: Vec<u64> = (0..10).collect();
        let sums: Vec<u64> = data.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each_writes_all() {
        let mut data = [0u64; 17];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[16], 5);
    }

    #[test]
    fn for_each_visits_every_item() {
        let counter = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        Vec::<u8>::new().par_iter().for_each(|_| panic!("no items"));
    }
}
