//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this
//! stand-in routes everything through an owned [`Value`] tree (the JSON
//! data model): [`Serialize`] renders `self` into a `Value`,
//! [`Deserialize`] reconstructs `Self` from one. The derive macros in
//! `serde_derive` generate those two methods; `serde_json` is then just
//! a `Value` ⇄ text codec. Struct fields serialize in declaration
//! order, enums use external tagging — matching upstream's JSON output
//! for the subset of shapes this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null (also the encoding of `Option::None`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with insertion-ordered keys (struct fields keep declaration
    /// order, which keeps serialized output deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Deserialization failure with a breadcrumb of where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A failure with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X" type mismatch.
    pub fn expected(what: &str) -> Self {
        DeError::new(format!("expected {what}"))
    }

    /// A required field was absent.
    pub fn missing_field(name: &str) -> Self {
        DeError::new(format!("missing field `{name}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(name: &str) -> Self {
        DeError::new(format!("unknown variant `{name}`"))
    }

    /// Prefix the error with the field it occurred under.
    pub fn at(self, key: &str) -> Self {
        DeError::new(format!("{key}: {}", self.msg))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up `key` in an object value and deserialize it. A missing key
/// deserializes from `Null`, which succeeds exactly for `Option`
/// fields (mirroring upstream's treatment of absent optionals).
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == key) {
            Some((_, field)) => T::from_value(field).map_err(|e| e.at(key)),
            None => T::from_value(&Value::Null).map_err(|_| DeError::missing_field(key)),
        },
        _ => Err(DeError::expected("object")),
    }
}

/// Look up `key` in an object value: `Ok(Some(..))` when present and
/// deserializable, `Ok(None)` when absent. Backs `#[serde(default)]`
/// fields, whose fallback the derive supplies at the call site.
pub fn de_opt_field<T: Deserialize>(v: &Value, key: &str) -> Result<Option<T>, DeError> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == key) {
            Some((_, field)) => T::from_value(field).map(Some).map_err(|e| e.at(key)),
            None => Ok(None),
        },
        _ => Err(DeError::expected("object")),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Symmetric with the JSON writer's degradation of non-finite
        // floats to null: a null read into a bare float is NaN, so a
        // NaN fitness survives a save/load round trip instead of
        // failing the whole file.
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::expected("f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if matches!(v, Value::Null) {
            return Ok(f32::NAN);
        }
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::expected("fixed-length array"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+) => $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::expected(concat!($len, "-element tuple")));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0, B.1) => 2;
    (A.0, B.1, C.2) => 3;
    (A.0, B.1, C.2, D.3) => 4;
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.at(k))?)))
                .collect(),
            _ => Err(DeError::expected("object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)).unwrap(), Some(9));
    }

    #[test]
    fn null_reads_back_as_nan_for_bare_floats() {
        // The JSON writer degrades non-finite floats to null; the read
        // side must hand them back as NaN instead of failing the file.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
        // Option still wins its null first: Some(NaN) collapses to None.
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn de_field_missing_key_is_none_for_options() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        let missing: Option<f64> = de_field(&obj, "b").unwrap();
        assert_eq!(missing, None);
        assert!(de_field::<u64>(&obj, "b").is_err());
        assert_eq!(de_field::<u64>(&obj, "a").unwrap(), 1);
    }

    #[test]
    fn numeric_cross_decoding() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn arrays_and_tuples() {
        let arr = [1.0f64, 2.0, 3.0];
        let v = arr.to_value();
        assert_eq!(<[f64; 3]>::from_value(&v).unwrap(), arr);
        assert!(<[f64; 2]>::from_value(&v).is_err());

        let tup = (1usize, 2usize, 3usize, 4usize);
        assert_eq!(
            <(usize, usize, usize, usize)>::from_value(&tup.to_value()).unwrap(),
            tup
        );
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("ph".into(), Value::Str("X".into()))]);
        assert_eq!(v["ph"], "X");
        assert_eq!(v["missing"], Value::Null);
    }
}
