//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Implements the subset the workspace uses — [`channel`] (MPMC
//! unbounded/bounded channels) and [`thread`] (scoped spawns whose
//! closures receive the scope) — on top of `std::sync` and
//! `std::thread`.

pub mod channel;
pub mod thread;
