//! Multi-producer multi-consumer FIFO channels, mirroring
//! `crossbeam-channel`'s `unbounded`/`bounded` constructors and
//! `Sender`/`Receiver` handles (both cloneable).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Waiting receivers (queue empty) and senders (queue full) share one
    /// condvar; spurious wakeups are handled by re-checking predicates.
    cond: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Like upstream: Debug without requiring T: Debug, so
        // `.expect()` works on send results of any payload type.
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded FIFO channel holding at most `cap` messages;
/// `send` blocks while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send `value`, blocking while a bounded channel is full. Errors if
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        loop {
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = shared.cond.wait(queue).expect("channel lock");
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.cond.notify_all();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next message, blocking until one is available. Errors
    /// once the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.cond.notify_all();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = shared.cond.wait(queue).expect("channel lock");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        if let Some(value) = queue.pop_front() {
            drop(queue);
            shared.cond.notify_all();
            return Ok(value);
        }
        if shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("channel lock");
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.cond.notify_all();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _) = shared
                .cond
                .wait_timeout(queue, deadline - now)
                .expect("channel lock");
            queue = q;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the channel into an iterator that ends when the channel is
    /// empty and disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.cond.notify_all();
        }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
        });
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_every_message_delivered_once() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut collectors = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            collectors.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<i32> = collectors
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..4)
            .flat_map(|t| (0..25).map(move |i| t * 100 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
