//! Scoped threads mirroring `crossbeam::thread::scope`, whose spawn
//! closures receive the scope (so they can spawn further threads).
//!
//! Built on `std::thread::scope`. One semantic difference from the real
//! crate: a panicking child thread propagates at scope exit instead of
//! being collected into the returned `Result`, so `scope(...)` only
//! returns `Ok` — which the workspace's `.expect(...)` call sites treat
//! identically.

use std::thread::ScopedJoinHandle;

/// The result type `crossbeam::thread::scope` reports.
pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// A scope handle passed to spawned closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread within the scope. The closure receives the scope,
    /// matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Run `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(10, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 42).unwrap();
        assert_eq!(v, 42);
    }
}
