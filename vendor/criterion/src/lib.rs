//! Offline stand-in for `criterion`.
//!
//! Implements the group/bench API surface (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!`/`criterion_main!`) over a simple wall-clock
//! timer: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a small budget, reporting the mean per-iteration
//! time. Under `cargo test` (harness invoked with `--test`) every
//! benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.label(), 100, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count (influences the iteration budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(&label, self.sample_size, self.criterion.test_mode, &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(
            &label,
            self.sample_size,
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over repeated iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters_done = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // Warm-up: a few untimed iterations, also used to estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000)
        {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        // Size the timed run to a ~100 ms budget.
        let budget = Duration::from_millis(100);
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, _sample_size: usize, test_mode: bool, f: &mut F) {
    let mut bencher = Bencher {
        test_mode,
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (smoke test)");
    } else if bencher.iters_done > 0 {
        let per_iter = bencher.elapsed / bencher.iters_done as u32;
        println!(
            "{label}: {} /iter ({} iterations)",
            format_duration(per_iter),
            bencher.iters_done
        );
    } else {
        println!("{label}: no iterations recorded");
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &x| {
            b.iter(|| black_box(x) - 1)
        });
        group.finish();
    }

    #[test]
    fn group_api_runs_every_shape() {
        // Criterion::default() sees the test harness's `--test`-less
        // argv, so force smoke mode directly.
        let mut criterion = Criterion { test_mode: true };
        sample_bench(&mut criterion);
        criterion.bench_function("standalone", |b| b.iter(|| 1u32 + 1));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 32).label(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn timed_mode_records_iterations() {
        let mut bencher = Bencher {
            test_mode: false,
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        bencher.iter(|| black_box(1u64).wrapping_mul(3));
        assert!(bencher.iters_done >= 1);
        assert!(bencher.elapsed > Duration::ZERO);
    }
}
