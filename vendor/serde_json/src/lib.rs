//! Offline stand-in for `serde_json`: serializes the serde stand-in's
//! [`Value`] data model to JSON text and parses it back with a
//! recursive-descent parser. Output is deterministic — object keys
//! keep insertion order (struct declaration order) and floats print
//! via Rust's shortest-roundtrip `Display`.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; integral floats
                // keep a ".0" so the type survives a round trip.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Inf; upstream errors, we degrade to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // we parsed from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
        u32::from_str_radix(s, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\n\"x\"").unwrap(), "\"hi\\n\\\"x\\\"\"");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_roundtrip_preserves_key_order() {
        let v = Value::Object(vec![
            ("z".into(), Value::U64(1)),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"z\":1,\"a\":[null,false]}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": [\n    1\n  ]"));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str("\"\\u00e9\\u0041\"").unwrap();
        assert_eq!(v, "éA");
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "😀");
    }

    #[test]
    fn bytes_api_roundtrip() {
        let v = vec![1.25f64, -2.0];
        let bytes = to_vec_pretty(&v).unwrap();
        let back: Vec<f64> = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
