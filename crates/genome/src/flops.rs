//! Closed-form FLOPs estimation for decoded architectures.
//!
//! NSGA-Net's second objective is FLOPs usage — the paper uses it as a
//! proxy for energy consumption and reports values in the hundreds of
//! (mega-)FLOPs for its Pareto-optimal models. The estimate below counts
//! multiply–accumulates as two operations and matches the layer-exact
//! accounting of the `a4nn-nn` substrate (asserted by a cross-crate
//! integration test).

use crate::arch::{ArchSpec, NodeOp, PhaseSpec};

/// FLOPs of one conv→BN→ReLU block at spatial size `h × w`.
fn conv_block_flops(kernel: usize, c_in: usize, c_out: usize, h: usize, w: usize) -> f64 {
    let conv = 2.0 * (kernel * kernel * c_in * c_out * h * w) as f64;
    // BN: scale+shift (2 ops per element); ReLU: 1 op per element.
    let bn_relu = 3.0 * (c_out * h * w) as f64;
    conv + bn_relu
}

fn phase_flops(phase: &PhaseSpec, h: usize, w: usize) -> f64 {
    let NodeOp::ConvBnRelu { kernel } = phase.op;
    // Stem conv maps in_channels → out_channels.
    let mut total = conv_block_flops(kernel, phase.in_channels, phase.out_channels, h, w);
    let node_count = phase.active_nodes().max(1); // degenerate phase = one block
    total +=
        node_count as f64 * conv_block_flops(kernel, phase.out_channels, phase.out_channels, h, w);
    // Elementwise additions for multi-input joins and the output sum.
    let joins: usize = phase
        .inputs
        .iter()
        .map(|ins| ins.len().saturating_sub(1))
        .sum::<usize>()
        + phase.leaves.len().saturating_sub(1)
        + usize::from(phase.skip);
    total += (joins * phase.out_channels * h * w) as f64;
    total
}

/// Estimate the FLOPs of one forward pass of `arch` on an
/// `input_hw.0 × input_hw.1` image. Each phase is followed by 2×2 max
/// pooling; the classifier is global-average-pool + dense.
pub fn estimate_flops(arch: &ArchSpec, input_hw: (usize, usize)) -> f64 {
    let (mut h, mut w) = input_hw;
    let mut total = 0.0;
    for phase in &arch.phases {
        total += phase_flops(phase, h, w);
        // 2×2 max pooling: ~3 compares per output element.
        h = (h / 2).max(1);
        w = (w / 2).max(1);
        total += 3.0 * (phase.out_channels * h * w) as f64;
    }
    let c_last = arch
        .phases
        .last()
        .map(|p| p.out_channels)
        .unwrap_or(arch.input_channels);
    // Global average pool + dense classifier.
    total += (c_last * h * w) as f64;
    total += 2.0 * (c_last * arch.num_classes) as f64;
    total
}

/// [`estimate_flops`] in mega-FLOPs — the unit the harnesses report, which
/// puts the paper's search space in the same few-hundreds range as the
/// figures in §4.2.1.
pub fn estimate_mflops(arch: &ArchSpec, input_hw: (usize, usize)) -> f64 {
    estimate_flops(arch, input_hw) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Genome, PhaseGenome};
    use crate::space::SearchSpace;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::paper_defaults()
    }

    fn genome_with_density(density: f64, seed: u64) -> Genome {
        let s = SearchSpace {
            init_density: density,
            ..space()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        s.random_genome(&mut rng)
    }

    #[test]
    fn denser_genomes_cost_more_flops() {
        let sparse = space().decode(&genome_with_density(0.12, 3));
        let dense = space().decode(&genome_with_density(0.95, 3));
        let f_sparse = estimate_flops(&sparse, (32, 32));
        let f_dense = estimate_flops(&dense, (32, 32));
        assert!(
            f_dense > f_sparse,
            "dense {f_dense} must exceed sparse {f_sparse}"
        );
    }

    #[test]
    fn flops_are_positive_even_for_empty_genome() {
        let zeros = Genome {
            phases: vec![PhaseGenome::zeros(4); 3],
        };
        let arch = space().decode(&zeros);
        assert!(estimate_flops(&arch, (32, 32)) > 0.0);
    }

    #[test]
    fn flops_scale_roughly_quadratically_with_image_side() {
        let arch = space().decode(&genome_with_density(0.5, 9));
        let f32x = estimate_flops(&arch, (32, 32));
        let f64x = estimate_flops(&arch, (64, 64));
        let ratio = f64x / f32x;
        assert!(
            (3.0..5.0).contains(&ratio),
            "doubling the side should ~4× the FLOPs, got {ratio}"
        );
    }

    #[test]
    fn conv_block_flops_formula() {
        // 3×3, 1→8 channels on 4×4: conv = 2·9·1·8·16 = 2304, bn+relu = 3·8·16 = 384.
        assert_eq!(conv_block_flops(3, 1, 8, 4, 4), 2304.0 + 384.0);
    }

    #[test]
    fn mflops_is_scaled_flops() {
        let arch = space().decode(&genome_with_density(0.5, 10));
        let f = estimate_flops(&arch, (32, 32));
        assert!((estimate_mflops(&arch, (32, 32)) - f / 1e6).abs() < 1e-12);
    }
}
