//! Closed-form hardware-cost estimation for decoded architectures.
//!
//! Besides FLOPs ([`crate::flops`]), the hardware-aware objectives need
//! parameter footprint, multiply–accumulate count, and a workspace
//! high-water estimate — all deterministic functions of the genome, so
//! every transport (direct, bus, socket worker) computes identical
//! values by construction. All three walk the phase DAG exactly like
//! [`estimate_flops`](crate::flops::estimate_flops): each phase is a
//! stem block plus `active_nodes().max(1)` node blocks, phases are
//! separated by 2×2 pooling, and the network ends in global average
//! pooling plus a dense classifier.
//!
//! The integer arithmetic stays exact in `f64` (all counts are far below
//! 2⁵³), which is what lets the values ride through JSON and CSV in the
//! byte-identity harnesses.

use crate::arch::{ArchSpec, NodeOp, PhaseSpec};

/// Bytes per trainable parameter (the substrate trains in `f32`).
const BYTES_PER_PARAM: u64 = 4;

/// Trainable parameters of one conv→BN→ReLU block: conv weights
/// (`k²·c_in·c_out`) and bias (`c_out`), plus batch-norm gamma and beta
/// (`2·c_out`) — mirroring the `a4nn-nn` layer inventory.
fn conv_block_params(kernel: usize, c_in: usize, c_out: usize) -> u64 {
    (kernel * kernel * c_in * c_out + 3 * c_out) as u64
}

/// Blocks instantiated by one phase as `(kernel, c_in, c_out)` triples:
/// the stem plus `active_nodes().max(1)` width-preserving node blocks.
fn phase_blocks(phase: &PhaseSpec) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
    let NodeOp::ConvBnRelu { kernel } = phase.op;
    let nodes = phase.active_nodes().max(1);
    std::iter::once((kernel, phase.in_channels, phase.out_channels)).chain(std::iter::repeat_n(
        (kernel, phase.out_channels, phase.out_channels),
        nodes,
    ))
}

/// Trainable-parameter footprint of `arch` in bytes (`f32` storage).
/// Spatial size does not enter: parameters are resolution-independent.
pub fn estimate_params_bytes(arch: &ArchSpec) -> f64 {
    let mut params: u64 = 0;
    for phase in &arch.phases {
        for (kernel, c_in, c_out) in phase_blocks(phase) {
            params += conv_block_params(kernel, c_in, c_out);
        }
    }
    let c_last = arch
        .phases
        .last()
        .map(|p| p.out_channels)
        .unwrap_or(arch.input_channels);
    // Dense classifier: weights + bias.
    params += (c_last * arch.num_classes + arch.num_classes) as u64;
    (params * BYTES_PER_PARAM) as f64
}

/// Multiply–accumulate count of one forward pass of `arch` on an
/// `input_hw.0 × input_hw.1` image. Only conv and dense contribute MACs
/// (one per weight application); pooling, BN, ReLU, and elementwise
/// joins are additions or compares, not multiply–accumulates.
pub fn estimate_macs(arch: &ArchSpec, input_hw: (usize, usize)) -> f64 {
    let (mut h, mut w) = input_hw;
    let mut macs: u64 = 0;
    for phase in &arch.phases {
        for (kernel, c_in, c_out) in phase_blocks(phase) {
            macs += (kernel * kernel * c_in * c_out * h * w) as u64;
        }
        h = (h / 2).max(1);
        w = (w / 2).max(1);
    }
    let c_last = arch
        .phases
        .last()
        .map(|p| p.out_channels)
        .unwrap_or(arch.input_channels);
    macs += (c_last * arch.num_classes) as u64;
    macs as f64
}

/// Deterministic estimate of the peak workspace bytes one forward pass
/// needs: the largest single conv block's working set — input plane,
/// output plane, and the im2col patch buffer the GEMM path materializes
/// (`k²·c_in·h·w`), all `f32`. This is the genome-derived stand-in for
/// the measured `Workspace::peak_pooled_bytes` a real trainer reports;
/// the surrogate uses it so remote and local evaluation agree exactly.
pub fn estimate_peak_ws_bytes(arch: &ArchSpec, input_hw: (usize, usize)) -> f64 {
    let (mut h, mut w) = input_hw;
    let mut peak: u64 = 0;
    for phase in &arch.phases {
        for (kernel, c_in, c_out) in phase_blocks(phase) {
            let working_set = ((c_in + c_out + kernel * kernel * c_in) * h * w) as u64 * 4;
            peak = peak.max(working_set);
        }
        h = (h / 2).max(1);
        w = (w / 2).max(1);
    }
    peak as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Genome, PhaseGenome};
    use crate::space::SearchSpace;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::paper_defaults()
    }

    fn genome_with_density(density: f64, seed: u64) -> Genome {
        let s = SearchSpace {
            init_density: density,
            ..space()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        s.random_genome(&mut rng)
    }

    #[test]
    fn denser_genomes_cost_more_on_every_axis() {
        let sparse = space().decode(&genome_with_density(0.12, 3));
        let dense = space().decode(&genome_with_density(0.95, 3));
        assert!(estimate_params_bytes(&dense) > estimate_params_bytes(&sparse));
        assert!(estimate_macs(&dense, (32, 32)) > estimate_macs(&sparse, (32, 32)));
    }

    #[test]
    fn costs_are_positive_even_for_empty_genome() {
        let zeros = Genome {
            phases: vec![PhaseGenome::zeros(4); 3],
        };
        let arch = space().decode(&zeros);
        assert!(estimate_params_bytes(&arch) > 0.0);
        assert!(estimate_macs(&arch, (32, 32)) > 0.0);
        assert!(estimate_peak_ws_bytes(&arch, (32, 32)) > 0.0);
    }

    #[test]
    fn params_are_resolution_independent_macs_are_not() {
        let arch = space().decode(&genome_with_density(0.5, 9));
        assert_eq!(estimate_params_bytes(&arch), estimate_params_bytes(&arch));
        let m32 = estimate_macs(&arch, (32, 32));
        let m64 = estimate_macs(&arch, (64, 64));
        let ratio = m64 / m32;
        assert!(
            (3.0..5.0).contains(&ratio),
            "doubling the side should ~4× the MACs, got {ratio}"
        );
    }

    #[test]
    fn conv_block_params_formula() {
        // 3×3, 1→8 channels: weights 9·1·8 = 72, bias 8, BN 16.
        assert_eq!(conv_block_params(3, 1, 8), 72 + 8 + 16);
    }

    #[test]
    fn macs_are_half_the_conv_flops() {
        // The FLOPs estimate counts a MAC as two ops plus 3 ops/element
        // of BN+ReLU overhead, so conv MACs are bounded by flops/2.
        let arch = space().decode(&genome_with_density(0.5, 10));
        let flops = crate::flops::estimate_flops(&arch, (32, 32));
        let macs = estimate_macs(&arch, (32, 32));
        assert!(macs < flops / 2.0);
        assert!(macs > flops / 4.0, "macs {macs} vs flops {flops}");
    }

    #[test]
    fn peak_ws_tracks_the_widest_early_block() {
        // The first-phase node blocks run at full resolution with the
        // widest channel product, so shrinking the input shrinks the peak.
        let arch = space().decode(&genome_with_density(0.5, 11));
        let p32 = estimate_peak_ws_bytes(&arch, (32, 32));
        let p16 = estimate_peak_ws_bytes(&arch, (16, 16));
        assert!(p32 > p16);
    }
}
