//! Decoded architecture specifications: the concrete phase DAGs a training
//! substrate instantiates from a genome.
//!
//! Decoding follows the Genetic-CNN/NSGA-Net macro rules:
//!
//! - every phase starts with a *stem* convolution that maps the incoming
//!   channel count to the phase's width;
//! - node `i` computes `op(Σ inputs)` where its inputs are the active nodes
//!   `j < i` with edge bit `j → i` set; an active node with no in-edges
//!   reads the stem output;
//! - nodes with no incident edges at all are *inactive* and dropped;
//! - the phase output sums every active node that has no active consumer
//!   (the DAG's leaves); an all-inactive phase degenerates to a single
//!   conv block on the stem output;
//! - the skip bit adds a residual connection from the stem output to the
//!   phase output;
//! - phases are separated by 2×2 max-pooling, and the network ends with
//!   global average pooling and a dense classifier.

use crate::encoding::{Genome, PhaseGenome};
use serde::{Deserialize, Serialize};

/// Operation performed by an active node. The macro space uses uniform
/// conv→BN→ReLU blocks; the kernel size is a search-space constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeOp {
    /// `kernel × kernel` convolution, stride 1, same padding, followed by
    /// batch normalization and ReLU.
    ConvBnRelu {
        /// Square kernel size (3 in NSGA-Net's macro space).
        kernel: usize,
    },
}

/// One decoded phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Number of genome nodes `K` (active or not).
    pub nodes: usize,
    /// Per-node activity flag.
    pub active: Vec<bool>,
    /// Per-node list of active input node ids; empty for active nodes
    /// means "reads the stem output". Entries for inactive nodes are empty.
    pub inputs: Vec<Vec<usize>>,
    /// Active nodes with no active consumers; their sum is the phase
    /// output.
    pub leaves: Vec<usize>,
    /// Residual connection from stem output to phase output.
    pub skip: bool,
    /// Channels entering the phase (before the stem).
    pub in_channels: usize,
    /// Phase width: channels of the stem, every node, and the output.
    pub out_channels: usize,
    /// Node operation.
    pub op: NodeOp,
}

impl PhaseSpec {
    /// Number of active nodes.
    pub fn active_nodes(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of realized edges between active nodes.
    pub fn edge_count(&self) -> usize {
        self.inputs.iter().map(Vec::len).sum()
    }

    /// True when the phase decoded from an all-zero genome (single default
    /// conv block).
    pub fn is_degenerate(&self) -> bool {
        self.active_nodes() == 0
    }
}

/// A fully decoded architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// The phases, input side first.
    pub phases: Vec<PhaseSpec>,
    /// Channels of the input image (1 for diffraction patterns).
    pub input_channels: usize,
    /// Number of output classes (2 conformations in the use case).
    pub num_classes: usize,
}

impl ArchSpec {
    /// Total number of conv blocks that will be instantiated (stems +
    /// active nodes + degenerate default blocks).
    pub fn conv_blocks(&self) -> usize {
        self.phases
            .iter()
            .map(|p| 1 + p.active_nodes().max(1))
            .sum()
    }

    /// One-line summary, e.g.
    /// `"3 phases | nodes 3/4/2 | edges 4/5/1 | skip 101"`.
    pub fn summary(&self) -> String {
        let nodes: Vec<String> = self
            .phases
            .iter()
            .map(|p| p.active_nodes().to_string())
            .collect();
        let edges: Vec<String> = self
            .phases
            .iter()
            .map(|p| p.edge_count().to_string())
            .collect();
        let skips: String = self
            .phases
            .iter()
            .map(|p| if p.skip { '1' } else { '0' })
            .collect();
        format!(
            "{} phases | nodes {} | edges {} | skip {}",
            self.phases.len(),
            nodes.join("/"),
            edges.join("/"),
            skips
        )
    }
}

/// Decode one phase genome at the given channel widths.
pub(crate) fn decode_phase(
    genome: &PhaseGenome,
    in_channels: usize,
    out_channels: usize,
    op: NodeOp,
) -> PhaseSpec {
    let k = genome.nodes;
    // A node is active iff it touches at least one edge.
    let mut active = vec![false; k];
    for i in 0..k {
        for j in 0..i {
            if genome.edge(j, i) {
                active[i] = true;
                active[j] = true;
            }
        }
    }
    let mut inputs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut has_consumer = vec![false; k];
    for i in 0..k {
        if !active[i] {
            continue;
        }
        for j in 0..i {
            if genome.edge(j, i) && active[j] {
                inputs[i].push(j);
                has_consumer[j] = true;
            }
        }
    }
    let leaves: Vec<usize> = (0..k).filter(|&i| active[i] && !has_consumer[i]).collect();
    PhaseSpec {
        nodes: k,
        active,
        inputs,
        leaves,
        skip: genome.skip(),
        in_channels,
        out_channels,
        op,
    }
}

/// Decode a full genome. `channels[p]` is the width of phase `p`; its
/// length must match the number of phases.
pub(crate) fn decode_genome(
    genome: &Genome,
    input_channels: usize,
    channels: &[usize],
    num_classes: usize,
    op: NodeOp,
) -> ArchSpec {
    assert_eq!(
        genome.phases.len(),
        channels.len(),
        "one channel width per phase required"
    );
    let mut phases = Vec::with_capacity(genome.phases.len());
    let mut in_ch = input_channels;
    for (pg, &width) in genome.phases.iter().zip(channels) {
        phases.push(decode_phase(pg, in_ch, width, op));
        in_ch = width;
    }
    ArchSpec {
        phases,
        input_channels,
        num_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_with_edges(edges: &[(usize, usize)], skip: bool) -> PhaseGenome {
        let mut bits = vec![false; PhaseGenome::bits_for(4)];
        for &(j, i) in edges {
            bits[PhaseGenome::edge_bit_index(j, i)] = true;
        }
        let last = bits.len() - 1;
        bits[last] = skip;
        PhaseGenome::new(4, bits)
    }

    #[test]
    fn all_zero_phase_is_degenerate() {
        let spec = decode_phase(
            &PhaseGenome::zeros(4),
            1,
            8,
            NodeOp::ConvBnRelu { kernel: 3 },
        );
        assert!(spec.is_degenerate());
        assert_eq!(spec.active_nodes(), 0);
        assert!(spec.leaves.is_empty());
        assert!(!spec.skip);
    }

    #[test]
    fn chain_topology_decodes() {
        // 0→1→2→3: all active, node 0 reads stem, leaf is node 3.
        let g = phase_with_edges(&[(0, 1), (1, 2), (2, 3)], false);
        let spec = decode_phase(&g, 1, 8, NodeOp::ConvBnRelu { kernel: 3 });
        assert_eq!(spec.active_nodes(), 4);
        assert_eq!(spec.inputs[0], Vec::<usize>::new());
        assert_eq!(spec.inputs[1], vec![0]);
        assert_eq!(spec.inputs[3], vec![2]);
        assert_eq!(spec.leaves, vec![3]);
    }

    #[test]
    fn diamond_topology_has_single_leaf() {
        // 0→1, 0→2, 1→3, 2→3.
        let g = phase_with_edges(&[(0, 1), (0, 2), (1, 3), (2, 3)], true);
        let spec = decode_phase(&g, 8, 16, NodeOp::ConvBnRelu { kernel: 3 });
        assert_eq!(spec.active_nodes(), 4);
        assert_eq!(spec.leaves, vec![3]);
        assert_eq!(spec.inputs[3], vec![1, 2]);
        assert!(spec.skip);
    }

    #[test]
    fn isolated_node_is_inactive() {
        // Only 0→1: nodes 2 and 3 are isolated.
        let g = phase_with_edges(&[(0, 1)], false);
        let spec = decode_phase(&g, 1, 8, NodeOp::ConvBnRelu { kernel: 3 });
        assert_eq!(spec.active_nodes(), 2);
        assert!(!spec.active[2] && !spec.active[3]);
        assert_eq!(spec.leaves, vec![1]);
    }

    #[test]
    fn parallel_branches_all_become_leaves() {
        // 0→1, 0→2, 0→3: three parallel consumers of node 0.
        let g = phase_with_edges(&[(0, 1), (0, 2), (0, 3)], false);
        let spec = decode_phase(&g, 1, 8, NodeOp::ConvBnRelu { kernel: 3 });
        assert_eq!(spec.leaves, vec![1, 2, 3]);
        assert_eq!(spec.edge_count(), 3);
    }

    #[test]
    fn genome_decode_threads_channels() {
        let genome = Genome {
            phases: vec![
                phase_with_edges(&[(0, 1)], false),
                phase_with_edges(&[(0, 1), (1, 2)], true),
                PhaseGenome::zeros(4),
            ],
        };
        let arch = decode_genome(
            &genome,
            1,
            &[8, 16, 32],
            2,
            NodeOp::ConvBnRelu { kernel: 3 },
        );
        assert_eq!(arch.phases[0].in_channels, 1);
        assert_eq!(arch.phases[0].out_channels, 8);
        assert_eq!(arch.phases[1].in_channels, 8);
        assert_eq!(arch.phases[2].in_channels, 16);
        assert_eq!(arch.phases[2].out_channels, 32);
        assert_eq!(arch.num_classes, 2);
        // Degenerate third phase still counts one conv block + stem.
        assert_eq!(arch.conv_blocks(), (1 + 2) + (1 + 3) + (1 + 1));
    }

    #[test]
    fn summary_is_stable() {
        let genome = Genome {
            phases: vec![
                phase_with_edges(&[(0, 1)], true),
                phase_with_edges(&[(0, 1), (1, 2)], false),
            ],
        };
        let arch = decode_genome(&genome, 1, &[8, 16], 2, NodeOp::ConvBnRelu { kernel: 3 });
        assert_eq!(arch.summary(), "2 phases | nodes 2/3 | edges 1/2 | skip 10");
    }
}
