//! # a4nn-genome — NSGA-Net macro search space
//!
//! Bit-string genomes over the NSGA-Net *macro* search space (Lu et al.,
//! 2019; derived from Genetic CNN): a network is a sequence of `P` phases,
//! each phase a small directed acyclic graph over `K` computational nodes
//! (conv→BN→ReLU blocks), separated by spatial-reduction (pooling) layers
//! and capped by a classifier head.
//!
//! Each phase is encoded by `K·(K−1)/2 + 1` bits: one bit per possible
//! forward edge `j → i` (`j < i`) in the node DAG plus one *skip* bit that
//! adds a residual connection around the whole phase. The paper's Table 2
//! uses `K = 4` nodes per phase, so a phase costs 7 bits and a 3-phase
//! genome is 21 bits.
//!
//! The crate provides:
//!
//! - [`Genome`]/[`PhaseGenome`] — the encoding, with compact string form,
//! - [`SearchSpace`] — sampling, bit-flip mutation, uniform and one-point
//!   crossover (the variation operators NSGA-Net applies),
//! - [`decode`](SearchSpace::decode) — genome → [`ArchSpec`], the concrete
//!   layer DAG a training substrate can instantiate,
//! - [`flops`] — closed-form FLOPs estimates per architecture (NSGA-Net's
//!   second objective),
//! - [`cost`] — closed-form hardware costs (parameter bytes, MACs, peak
//!   workspace bytes) for the hardware-aware objective providers,
//! - [`viz`] — ASCII and Graphviz-DOT renderings of decoded architectures
//!   (the paper's Figures 3 and 10).

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod arch;
pub mod cost;
pub mod encoding;
pub mod flops;
pub mod micro;
pub mod space;
pub mod viz;

pub use arch::{ArchSpec, NodeOp, PhaseSpec};
pub use cost::{estimate_macs, estimate_params_bytes, estimate_peak_ws_bytes};
pub use encoding::{Genome, PhaseGenome};
pub use flops::{estimate_flops, estimate_mflops};
pub use micro::{MicroGene, MicroGenome, MicroSearchSpace, MICRO_OPS, MICRO_OP_NAMES};
pub use space::{SearchSpace, VariationConfig};
