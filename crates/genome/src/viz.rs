//! Architecture visualization — the Rust analogue of the paper's analyzer
//! renderings (Figures 3 and 10): ASCII phase diagrams for terminals and
//! Graphviz DOT output for publication-quality graphs.

use crate::arch::{ArchSpec, NodeOp};

/// Render an architecture as a multi-line ASCII diagram.
///
/// Example output for one phase:
///
/// ```text
/// phase 0 [8ch, skip]
///   stem -> n0
///   n0 -> n1, n2
///   out <- n1 + n2 (+ skip)
/// ```
pub fn render_ascii(arch: &ArchSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "input ({} channel{})\n",
        arch.input_channels,
        if arch.input_channels == 1 { "" } else { "s" }
    ));
    for (p, phase) in arch.phases.iter().enumerate() {
        let NodeOp::ConvBnRelu { kernel } = phase.op;
        out.push_str(&format!(
            "phase {p} [{}ch, {kernel}x{kernel} conv{}]\n",
            phase.out_channels,
            if phase.skip { ", skip" } else { "" }
        ));
        if phase.is_degenerate() {
            out.push_str("  stem -> default -> out\n");
        } else {
            // Stem feeds every active root.
            let roots: Vec<String> = (0..phase.nodes)
                .filter(|&i| phase.active[i] && phase.inputs[i].is_empty())
                .map(|i| format!("n{i}"))
                .collect();
            if !roots.is_empty() {
                out.push_str(&format!("  stem -> {}\n", roots.join(", ")));
            }
            for i in 0..phase.nodes {
                if !phase.active[i] || phase.inputs[i].is_empty() {
                    continue;
                }
                let srcs: Vec<String> = phase.inputs[i].iter().map(|j| format!("n{j}")).collect();
                out.push_str(&format!("  {} -> n{i}\n", srcs.join(" + ")));
            }
            let leaves: Vec<String> = phase.leaves.iter().map(|i| format!("n{i}")).collect();
            out.push_str(&format!(
                "  out <- {}{}\n",
                leaves.join(" + "),
                if phase.skip { " (+ skip)" } else { "" }
            ));
        }
        out.push_str("  maxpool 2x2\n");
    }
    out.push_str(&format!("global-avg-pool -> dense({})\n", arch.num_classes));
    out
}

/// Render an architecture as a Graphviz DOT digraph. Node names are
/// `p<phase>_n<node>`; stems, outputs, and the classifier are explicit
/// nodes so the rendering matches the structural views of Figure 10.
pub fn render_dot(arch: &ArchSpec, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{title}\" {{\n"));
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    out.push_str("  input [shape=ellipse];\n");
    let mut prev = "input".to_string();
    for (p, phase) in arch.phases.iter().enumerate() {
        let stem = format!("p{p}_stem");
        let phase_out = format!("p{p}_out");
        out.push_str(&format!(
            "  {stem} [label=\"phase {p} stem\\nconv {}->{}\"];\n",
            phase.in_channels, phase.out_channels
        ));
        out.push_str(&format!("  {prev} -> {stem};\n"));
        out.push_str(&format!(
            "  {phase_out} [label=\"phase {p} out\", shape=ellipse];\n"
        ));
        if phase.is_degenerate() {
            let n = format!("p{p}_default");
            out.push_str(&format!(
                "  {n} [label=\"conv {0}x{0}\"];\n",
                kernel_of(phase)
            ));
            out.push_str(&format!("  {stem} -> {n};\n  {n} -> {phase_out};\n"));
        } else {
            for i in 0..phase.nodes {
                if !phase.active[i] {
                    continue;
                }
                let n = format!("p{p}_n{i}");
                out.push_str(&format!(
                    "  {n} [label=\"n{i}\\nconv {0}x{0}\"];\n",
                    kernel_of(phase)
                ));
                if phase.inputs[i].is_empty() {
                    out.push_str(&format!("  {stem} -> {n};\n"));
                } else {
                    for &j in &phase.inputs[i] {
                        out.push_str(&format!("  p{p}_n{j} -> {n};\n"));
                    }
                }
            }
            for &leaf in &phase.leaves {
                out.push_str(&format!("  p{p}_n{leaf} -> {phase_out};\n"));
            }
        }
        if phase.skip {
            out.push_str(&format!("  {stem} -> {phase_out} [style=dashed];\n"));
        }
        prev = phase_out;
    }
    out.push_str(&format!(
        "  classifier [label=\"GAP + dense({})\", shape=ellipse];\n",
        arch.num_classes
    ));
    out.push_str(&format!("  {prev} -> classifier;\n"));
    out.push_str("}\n");
    out
}

fn kernel_of(phase: &crate::arch::PhaseSpec) -> usize {
    let NodeOp::ConvBnRelu { kernel } = phase.op;
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Genome, PhaseGenome};
    use crate::space::SearchSpace;

    fn sample_arch() -> ArchSpec {
        let mut bits = vec![false; 7];
        bits[PhaseGenome::edge_bit_index(0, 1)] = true;
        bits[PhaseGenome::edge_bit_index(1, 2)] = true;
        bits[6] = true;
        let genome = Genome {
            phases: vec![PhaseGenome::new(4, bits), PhaseGenome::zeros(4)],
        };
        let space = SearchSpace {
            channels: vec![8, 16],
            ..SearchSpace::paper_defaults()
        };
        space.decode(&genome)
    }

    #[test]
    fn ascii_contains_every_phase_and_classifier() {
        let text = render_ascii(&sample_arch());
        assert!(text.contains("phase 0"));
        assert!(text.contains("phase 1"));
        assert!(text.contains("skip"));
        assert!(text.contains("stem -> default -> out")); // degenerate phase
        assert!(text.contains("dense(2)"));
    }

    #[test]
    fn dot_is_structurally_valid() {
        let dot = render_dot(&sample_arch(), "model-51");
        assert!(dot.starts_with("digraph \"model-51\""));
        assert!(dot.trim_end().ends_with('}'));
        // Every arrow references declared endpoints (smoke check).
        assert!(dot.contains("input -> p0_stem"));
        assert!(dot.contains("p0_n0 -> p0_n1"));
        assert!(dot.contains("-> classifier"));
        // Skip connection rendered dashed.
        assert!(dot.contains("style=dashed"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn ascii_lists_multi_input_joins() {
        let mut bits = vec![false; 7];
        for (j, i) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            bits[PhaseGenome::edge_bit_index(j, i)] = true;
        }
        let genome = Genome {
            phases: vec![PhaseGenome::new(4, bits)],
        };
        let space = SearchSpace {
            channels: vec![8],
            ..SearchSpace::paper_defaults()
        };
        let text = render_ascii(&space.decode(&genome));
        assert!(text.contains("n1 + n2 -> n3"), "{text}");
    }
}
