//! The search space: sampling, mutation, crossover, and decoding.

use crate::arch::{decode_genome, ArchSpec, NodeOp};
use crate::encoding::{Genome, PhaseGenome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Variation operator settings (NSGA-Net uses bit-flip mutation and
/// crossover on the bit strings).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Per-bit flip probability applied to every offspring.
    pub mutation_rate: f64,
    /// Probability of applying crossover at all (otherwise clone parent A
    /// before mutation).
    pub crossover_rate: f64,
    /// Probability of uniform crossover; otherwise one-point.
    pub uniform_crossover: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            mutation_rate: 0.04,
            crossover_rate: 0.9,
            uniform_crossover: 0.5,
        }
    }
}

/// The NSGA-Net macro search space: `P` phases of `K` nodes with fixed
/// per-phase channel widths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Nodes per phase (`K`), Table 2: 4.
    pub nodes_per_phase: usize,
    /// Channel width of each phase; its length sets the phase count.
    pub channels: Vec<usize>,
    /// Input image channels (1 for diffraction patterns).
    pub input_channels: usize,
    /// Classifier classes (2 conformations).
    pub num_classes: usize,
    /// Node convolution kernel.
    pub kernel: usize,
    /// Probability that a random genome sets each bit (densities near 0.5
    /// reproduce NSGA-Net's random initial populations).
    pub init_density: f64,
    /// Variation operators.
    pub variation: VariationConfig,
}

impl SearchSpace {
    /// The space used in the paper's evaluation: 3 phases of 4 nodes,
    /// widths 8/16/32, grayscale input, 2 classes, 3×3 kernels.
    pub fn paper_defaults() -> Self {
        SearchSpace {
            nodes_per_phase: 4,
            channels: vec![8, 16, 32],
            input_channels: 1,
            num_classes: 2,
            kernel: 3,
            init_density: 0.5,
            variation: VariationConfig::default(),
        }
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.channels.len()
    }

    /// Total genome bits.
    pub fn genome_bits(&self) -> usize {
        self.phases() * PhaseGenome::bits_for(self.nodes_per_phase)
    }

    /// Sample a random genome.
    pub fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> Genome {
        let phases = (0..self.phases())
            .map(|_| {
                let bits = (0..PhaseGenome::bits_for(self.nodes_per_phase))
                    .map(|_| rng.gen_bool(self.init_density))
                    .collect();
                PhaseGenome::new(self.nodes_per_phase, bits)
            })
            .collect();
        Genome { phases }
    }

    /// Bit-flip mutation in place.
    pub fn mutate<R: Rng + ?Sized>(&self, genome: &mut Genome, rng: &mut R) {
        for phase in &mut genome.phases {
            for bit in &mut phase.bits {
                if rng.gen_bool(self.variation.mutation_rate) {
                    *bit = !*bit;
                }
            }
        }
    }

    /// Uniform crossover: each bit drawn from either parent with equal
    /// probability.
    pub fn crossover_uniform<R: Rng + ?Sized>(
        &self,
        a: &Genome,
        b: &Genome,
        rng: &mut R,
    ) -> Genome {
        let (ab, bb) = (a.to_bits(), b.to_bits());
        assert_eq!(ab.len(), bb.len(), "parents from different spaces");
        let bits: Vec<bool> = ab
            .iter()
            .zip(&bb)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect();
        self.genome_from_flat(&bits)
    }

    /// One-point crossover on the flattened bit string.
    pub fn crossover_one_point<R: Rng + ?Sized>(
        &self,
        a: &Genome,
        b: &Genome,
        rng: &mut R,
    ) -> Genome {
        let (ab, bb) = (a.to_bits(), b.to_bits());
        assert_eq!(ab.len(), bb.len(), "parents from different spaces");
        let point = rng.gen_range(1..ab.len());
        let bits: Vec<bool> = ab[..point].iter().chain(&bb[point..]).copied().collect();
        self.genome_from_flat(&bits)
    }

    /// NSGA-Net's full variation operator: (maybe) crossover, then bit-flip
    /// mutation.
    pub fn vary<R: Rng + ?Sized>(&self, a: &Genome, b: &Genome, rng: &mut R) -> Genome {
        let mut child = if rng.gen_bool(self.variation.crossover_rate) {
            if rng.gen_bool(self.variation.uniform_crossover) {
                self.crossover_uniform(a, b, rng)
            } else {
                self.crossover_one_point(a, b, rng)
            }
        } else {
            a.clone()
        };
        self.mutate(&mut child, rng);
        child
    }

    /// Decode a genome sampled from this space.
    pub fn decode(&self, genome: &Genome) -> ArchSpec {
        decode_genome(
            genome,
            self.input_channels,
            &self.channels,
            self.num_classes,
            NodeOp::ConvBnRelu {
                kernel: self.kernel,
            },
        )
    }

    fn genome_from_flat(&self, bits: &[bool]) -> Genome {
        let nodes: Vec<usize> = vec![self.nodes_per_phase; self.phases()];
        Genome::from_bits(&nodes, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn paper_space_shape() {
        let s = SearchSpace::paper_defaults();
        assert_eq!(s.phases(), 3);
        assert_eq!(s.genome_bits(), 21);
    }

    #[test]
    fn random_genomes_fit_the_space() {
        let s = SearchSpace::paper_defaults();
        let mut r = rng(1);
        for _ in 0..32 {
            let g = s.random_genome(&mut r);
            assert_eq!(g.phases.len(), 3);
            assert_eq!(g.bit_len(), 21);
            let arch = s.decode(&g);
            assert_eq!(arch.phases.len(), 3);
        }
    }

    #[test]
    fn mutation_respects_rate_statistically() {
        let s = SearchSpace {
            variation: VariationConfig {
                mutation_rate: 0.5,
                ..Default::default()
            },
            ..SearchSpace::paper_defaults()
        };
        let mut r = rng(2);
        let original = s.random_genome(&mut r);
        let mut flips = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut g = original.clone();
            s.mutate(&mut g, &mut r);
            flips += g
                .to_bits()
                .iter()
                .zip(original.to_bits())
                .filter(|(&a, b)| a != *b)
                .count();
        }
        let rate = flips as f64 / (trials * 21) as f64;
        assert!((rate - 0.5).abs() < 0.05, "empirical flip rate {rate}");
    }

    #[test]
    fn zero_mutation_rate_is_identity() {
        let s = SearchSpace {
            variation: VariationConfig {
                mutation_rate: 0.0,
                ..Default::default()
            },
            ..SearchSpace::paper_defaults()
        };
        let mut r = rng(3);
        let original = s.random_genome(&mut r);
        let mut g = original.clone();
        s.mutate(&mut g, &mut r);
        assert_eq!(g, original);
    }

    #[test]
    fn uniform_crossover_only_mixes_parent_bits() {
        let s = SearchSpace::paper_defaults();
        let mut r = rng(4);
        let a = s.random_genome(&mut r);
        let b = s.random_genome(&mut r);
        let child = s.crossover_uniform(&a, &b, &mut r);
        for ((ca, pa), pb) in child.to_bits().iter().zip(a.to_bits()).zip(b.to_bits()) {
            assert!(*ca == pa || *ca == pb);
        }
    }

    #[test]
    fn one_point_crossover_is_prefix_suffix() {
        let s = SearchSpace::paper_defaults();
        let mut r = rng(5);
        // Parents all-zero and all-one make the cut point visible.
        let zeros = Genome::from_bits(&[4, 4, 4], &[false; 21]);
        let ones = Genome::from_bits(&[4, 4, 4], &[true; 21]);
        let child = s.crossover_one_point(&zeros, &ones, &mut r);
        let bits = child.to_bits();
        let first_one = bits.iter().position(|&b| b).unwrap_or(bits.len());
        assert!(
            bits[first_one..].iter().all(|&b| b),
            "suffix after cut must be all ones: {bits:?}"
        );
        assert!(first_one >= 1, "cut point is at least 1");
    }

    #[test]
    fn vary_produces_space_sized_children() {
        let s = SearchSpace::paper_defaults();
        let mut r = rng(6);
        let a = s.random_genome(&mut r);
        let b = s.random_genome(&mut r);
        for _ in 0..16 {
            let child = s.vary(&a, &b, &mut r);
            assert_eq!(child.bit_len(), 21);
        }
    }

    #[test]
    fn decoding_random_genomes_never_panics_and_keeps_channel_chain() {
        let s = SearchSpace::paper_defaults();
        let mut r = rng(7);
        for _ in 0..64 {
            let arch = s.decode(&s.random_genome(&mut r));
            let mut in_ch = 1;
            for (p, phase) in arch.phases.iter().enumerate() {
                assert_eq!(phase.in_channels, in_ch, "phase {p}");
                in_ch = phase.out_channels;
            }
        }
    }
}
