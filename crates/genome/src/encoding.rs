//! The bit-string genome encoding.

use serde::{Deserialize, Serialize};

/// Genome of a single phase: `K·(K−1)/2` edge bits (ordered
/// `(0→1), (0→2), (1→2), (0→3), (1→3), (2→3), …` — i.e. grouped by target
/// node) followed by one skip bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseGenome {
    /// Number of computational nodes `K` in the phase DAG.
    pub nodes: usize,
    /// `K·(K−1)/2 + 1` bits: edges then skip.
    pub bits: Vec<bool>,
}

impl PhaseGenome {
    /// Number of bits a phase with `nodes` nodes requires.
    pub fn bits_for(nodes: usize) -> usize {
        nodes * (nodes - 1) / 2 + 1
    }

    /// Construct from raw bits, validating the length.
    pub fn new(nodes: usize, bits: Vec<bool>) -> Self {
        assert!(nodes >= 1, "a phase needs at least one node");
        assert_eq!(
            bits.len(),
            Self::bits_for(nodes),
            "phase with {nodes} nodes needs {} bits",
            Self::bits_for(nodes)
        );
        PhaseGenome { nodes, bits }
    }

    /// An all-zeros phase (decodes to a single pass-through conv block).
    pub fn zeros(nodes: usize) -> Self {
        PhaseGenome {
            nodes,
            bits: vec![false; Self::bits_for(nodes)],
        }
    }

    /// Bit index of edge `j → i` (requires `j < i`).
    #[inline]
    pub fn edge_bit_index(j: usize, i: usize) -> usize {
        debug_assert!(j < i);
        // Bits for target node i start after all bits for targets < i:
        // Σ_{t<i} (t) = i(i−1)/2.
        i * (i - 1) / 2 + j
    }

    /// Whether edge `j → i` is present.
    #[inline]
    pub fn edge(&self, j: usize, i: usize) -> bool {
        self.bits[Self::edge_bit_index(j, i)]
    }

    /// The residual/skip bit (last bit).
    #[inline]
    pub fn skip(&self) -> bool {
        let Some(&skip) = self.bits.last() else {
            unreachable!("phase has at least the skip bit")
        };
        skip
    }
}

/// A full genome: one [`PhaseGenome`] per phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Genome {
    /// The phases, input side first.
    pub phases: Vec<PhaseGenome>,
}

impl Genome {
    /// Total number of bits across phases.
    pub fn bit_len(&self) -> usize {
        self.phases.iter().map(|p| p.bits.len()).sum()
    }

    /// Flatten to a single bit vector (phase order preserved).
    pub fn to_bits(&self) -> Vec<bool> {
        self.phases
            .iter()
            .flat_map(|p| p.bits.iter().copied())
            .collect()
    }

    /// Rebuild from a flat bit vector with the given per-phase node counts.
    pub fn from_bits(nodes_per_phase: &[usize], bits: &[bool]) -> Self {
        let expected: usize = nodes_per_phase
            .iter()
            .map(|&k| PhaseGenome::bits_for(k))
            .sum();
        assert_eq!(bits.len(), expected, "bit length mismatch");
        let mut phases = Vec::with_capacity(nodes_per_phase.len());
        let mut cursor = 0;
        for &k in nodes_per_phase {
            let len = PhaseGenome::bits_for(k);
            phases.push(PhaseGenome::new(k, bits[cursor..cursor + len].to_vec()));
            cursor += len;
        }
        Genome { phases }
    }

    /// Compact human-readable form, e.g. `"1011010-0110101-0000001"`.
    pub fn to_compact_string(&self) -> String {
        self.phases
            .iter()
            .map(|p| {
                p.bits
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Parse the compact form produced by
    /// [`to_compact_string`](Self::to_compact_string). Node counts are
    /// inferred from segment lengths.
    pub fn from_compact_string(s: &str) -> Result<Self, String> {
        let mut phases = Vec::new();
        for seg in s.split('-') {
            let bits: Vec<bool> = seg
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("invalid genome character {other:?}")),
                })
                .collect::<Result<_, _>>()?;
            // Invert bits_for: find K with K(K−1)/2 + 1 == len.
            let len = bits.len();
            let mut nodes = None;
            for k in 1..=64 {
                if PhaseGenome::bits_for(k) == len {
                    nodes = Some(k);
                    break;
                }
            }
            let nodes = nodes.ok_or_else(|| format!("segment length {len} is not K(K-1)/2+1"))?;
            phases.push(PhaseGenome::new(nodes, bits));
        }
        if phases.is_empty() {
            return Err("empty genome string".to_string());
        }
        Ok(Genome { phases })
    }
}

impl std::fmt::Display for Genome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_formula() {
        assert_eq!(PhaseGenome::bits_for(1), 1);
        assert_eq!(PhaseGenome::bits_for(2), 2);
        assert_eq!(PhaseGenome::bits_for(4), 7);
        assert_eq!(PhaseGenome::bits_for(6), 16);
    }

    #[test]
    fn edge_bit_index_layout() {
        // K=4: (0→1)=0, (0→2)=1, (1→2)=2, (0→3)=3, (1→3)=4, (2→3)=5.
        assert_eq!(PhaseGenome::edge_bit_index(0, 1), 0);
        assert_eq!(PhaseGenome::edge_bit_index(0, 2), 1);
        assert_eq!(PhaseGenome::edge_bit_index(1, 2), 2);
        assert_eq!(PhaseGenome::edge_bit_index(0, 3), 3);
        assert_eq!(PhaseGenome::edge_bit_index(1, 3), 4);
        assert_eq!(PhaseGenome::edge_bit_index(2, 3), 5);
    }

    #[test]
    fn edge_and_skip_accessors() {
        let mut bits = vec![false; 7];
        bits[PhaseGenome::edge_bit_index(1, 3)] = true;
        bits[6] = true; // skip
        let p = PhaseGenome::new(4, bits);
        assert!(p.edge(1, 3));
        assert!(!p.edge(0, 1));
        assert!(p.skip());
    }

    #[test]
    fn compact_string_roundtrip() {
        let g = Genome::from_bits(&[4, 4, 4], &(0..21).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let s = g.to_compact_string();
        assert_eq!(s.split('-').count(), 3);
        let back = Genome::from_compact_string(&s).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn compact_string_rejects_garbage() {
        assert!(Genome::from_compact_string("10x1010").is_err());
        assert!(Genome::from_compact_string("101").is_err()); // len 3 invalid
        assert!(Genome::from_compact_string("").is_err());
    }

    #[test]
    fn flat_bits_roundtrip() {
        let g = Genome::from_bits(&[4, 4], &(0..14).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let bits = g.to_bits();
        assert_eq!(bits.len(), 14);
        assert_eq!(Genome::from_bits(&[4, 4], &bits), g);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn wrong_bit_count_panics() {
        let _ = PhaseGenome::new(4, vec![false; 6]);
    }
}
