//! The micro (cell-based) search space.
//!
//! NSGA-Net defines both a macro space (the paper's evaluation,
//! [`crate::space`]) and a micro space that searches a repeated *cell*:
//! each cell node selects two earlier states and an operation for each.
//! This module provides the micro genome — sampling, mutation, crossover,
//! a compact string form — and a FLOPs estimator, keeping the genome crate
//! independent of the training substrate (the workflow crate bridges the
//! decoded cell onto `a4nn-nn`'s `MicroNetwork`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of operations in the micro vocabulary (conv3, conv5, maxpool3,
/// avgpool3, identity) — must match the substrate's op list.
pub const MICRO_OPS: usize = 5;

/// Operation names by genome index, aligned with the substrate's op enum.
pub const MICRO_OP_NAMES: [&str; MICRO_OPS] =
    ["conv3x3", "conv5x5", "maxpool3x3", "avgpool3x3", "identity"];

/// One cell node's genes: two (input state, operation) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroGene {
    /// First input state (`≤` node position).
    pub in1: u8,
    /// Operation index for the first input.
    pub op1: u8,
    /// Second input state.
    pub in2: u8,
    /// Operation index for the second input.
    pub op2: u8,
}

/// A micro genome: the genes of every cell node in order. Node `i`
/// produces state `i + 1`; state 0 is the cell input.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroGenome {
    /// Per-node genes.
    pub nodes: Vec<MicroGene>,
}

impl MicroGenome {
    /// Validate state references and op indices.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("micro genome needs at least one node".into());
        }
        for (i, g) in self.nodes.iter().enumerate() {
            if usize::from(g.in1) > i || usize::from(g.in2) > i {
                return Err(format!("node {i} references a future state"));
            }
            if usize::from(g.op1) >= MICRO_OPS || usize::from(g.op2) >= MICRO_OPS {
                return Err(format!("node {i} uses an unknown operation"));
            }
        }
        Ok(())
    }

    /// Compact form, e.g. `"0.0-0.2|1.4-0.3"` (`in.op` pairs per node).
    pub fn to_compact_string(&self) -> String {
        self.nodes
            .iter()
            .map(|g| format!("{}.{}-{}.{}", g.in1, g.op1, g.in2, g.op2))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Parse the compact form.
    pub fn from_compact_string(s: &str) -> Result<Self, String> {
        let mut nodes = Vec::new();
        for seg in s.split('|') {
            let (a, b) = seg
                .split_once('-')
                .ok_or_else(|| format!("bad node segment {seg:?}"))?;
            let parse_pair = |p: &str| -> Result<(u8, u8), String> {
                let (i, o) = p
                    .split_once('.')
                    .ok_or_else(|| format!("bad gene pair {p:?}"))?;
                Ok((
                    i.parse().map_err(|_| format!("bad input {i:?}"))?,
                    o.parse().map_err(|_| format!("bad op {o:?}"))?,
                ))
            };
            let (in1, op1) = parse_pair(a)?;
            let (in2, op2) = parse_pair(b)?;
            nodes.push(MicroGene { in1, op1, in2, op2 });
        }
        let g = MicroGenome { nodes };
        g.validate()?;
        Ok(g)
    }

    /// States no node consumes (the cell's output set), or the last state.
    pub fn loose_ends(&self) -> Vec<usize> {
        let n_states = self.nodes.len() + 1;
        let mut consumed = vec![false; n_states];
        for g in &self.nodes {
            consumed[usize::from(g.in1)] = true;
            consumed[usize::from(g.in2)] = true;
        }
        let ends: Vec<usize> = (1..n_states).filter(|&s| !consumed[s]).collect();
        if ends.is_empty() {
            vec![n_states - 1]
        } else {
            ends
        }
    }
}

/// The micro search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroSearchSpace {
    /// Nodes per cell.
    pub nodes_per_cell: usize,
    /// Channel width of each stage.
    pub stage_channels: Vec<usize>,
    /// Cells repeated per stage.
    pub cells_per_stage: usize,
    /// Input image channels.
    pub input_channels: usize,
    /// Classifier classes.
    pub num_classes: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
}

impl MicroSearchSpace {
    /// A small micro space matched to the reduced diffraction images.
    pub fn reduced_defaults() -> Self {
        MicroSearchSpace {
            nodes_per_cell: 4,
            stage_channels: vec![8, 16],
            cells_per_stage: 1,
            input_channels: 1,
            num_classes: 2,
            mutation_rate: 0.15,
        }
    }

    /// Sample a random genome.
    pub fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> MicroGenome {
        let nodes = (0..self.nodes_per_cell)
            .map(|i| MicroGene {
                in1: rng.gen_range(0..=i as u8),
                op1: rng.gen_range(0..MICRO_OPS as u8),
                in2: rng.gen_range(0..=i as u8),
                op2: rng.gen_range(0..MICRO_OPS as u8),
            })
            .collect();
        MicroGenome { nodes }
    }

    /// Mutation: each gene field re-sampled with `mutation_rate`.
    pub fn mutate<R: Rng + ?Sized>(&self, genome: &mut MicroGenome, rng: &mut R) {
        for (i, g) in genome.nodes.iter_mut().enumerate() {
            if rng.gen_bool(self.mutation_rate) {
                g.in1 = rng.gen_range(0..=i as u8);
            }
            if rng.gen_bool(self.mutation_rate) {
                g.op1 = rng.gen_range(0..MICRO_OPS as u8);
            }
            if rng.gen_bool(self.mutation_rate) {
                g.in2 = rng.gen_range(0..=i as u8);
            }
            if rng.gen_bool(self.mutation_rate) {
                g.op2 = rng.gen_range(0..MICRO_OPS as u8);
            }
        }
    }

    /// Per-node uniform crossover followed by mutation.
    pub fn vary<R: Rng + ?Sized>(
        &self,
        a: &MicroGenome,
        b: &MicroGenome,
        rng: &mut R,
    ) -> MicroGenome {
        assert_eq!(
            a.nodes.len(),
            b.nodes.len(),
            "parents from different spaces"
        );
        let mut child = MicroGenome {
            nodes: a
                .nodes
                .iter()
                .zip(&b.nodes)
                .map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb })
                .collect(),
        };
        self.mutate(&mut child, rng);
        child
    }

    /// Closed-form FLOPs estimate of the stacked network on `input_hw`
    /// images (mirrors the substrate's layer-exact accounting).
    pub fn estimate_flops(&self, genome: &MicroGenome, input_hw: (usize, usize)) -> f64 {
        let op_flops = |op: u8, c: usize, h: usize, w: usize| -> f64 {
            match op {
                0 => 2.0 * (9 * c * c * h * w) as f64 + 3.0 * (c * h * w) as f64,
                1 => 2.0 * (25 * c * c * h * w) as f64 + 3.0 * (c * h * w) as f64,
                2 => (9 * c * h * w) as f64,
                3 => (10 * c * h * w) as f64,
                _ => 0.0,
            }
        };
        let (mut h, mut w) = input_hw;
        let mut total = 0.0;
        let mut c_in = self.input_channels;
        for &c in &self.stage_channels {
            // Transition conv.
            total += 2.0 * (9 * c_in * c * h * w) as f64 + 3.0 * (c * h * w) as f64;
            for _ in 0..self.cells_per_stage {
                for g in &genome.nodes {
                    total += op_flops(g.op1, c, h, w) + op_flops(g.op2, c, h, w);
                    total += (c * h * w) as f64; // the node join
                }
                total += (genome.loose_ends().len().saturating_sub(1) * c * h * w) as f64;
            }
            h = (h / 2).max(1);
            w = (w / 2).max(1);
            total += 3.0 * (c * h * w) as f64; // reduction pool
            c_in = c;
        }
        total += (c_in * h * w) as f64; // GAP
        total += 2.0 * (c_in * self.num_classes) as f64;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_genomes_are_valid() {
        let space = MicroSearchSpace::reduced_defaults();
        let mut r = rng(1);
        for _ in 0..64 {
            let g = space.random_genome(&mut r);
            assert_eq!(g.nodes.len(), 4);
            g.validate().unwrap();
        }
    }

    #[test]
    fn compact_string_roundtrip() {
        let space = MicroSearchSpace::reduced_defaults();
        let mut r = rng(2);
        for _ in 0..16 {
            let g = space.random_genome(&mut r);
            let back = MicroGenome::from_compact_string(&g.to_compact_string()).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn compact_string_rejects_garbage() {
        assert!(MicroGenome::from_compact_string("").is_err());
        assert!(MicroGenome::from_compact_string("0.0").is_err());
        assert!(MicroGenome::from_compact_string("0.0-0.9").is_err()); // op 9
        assert!(MicroGenome::from_compact_string("0.0-0.1|5.0-0.1").is_err()); // future state
    }

    #[test]
    fn mutation_stays_valid_and_moves() {
        let space = MicroSearchSpace {
            mutation_rate: 0.5,
            ..MicroSearchSpace::reduced_defaults()
        };
        let mut r = rng(3);
        let original = space.random_genome(&mut r);
        let mut changed = 0;
        for _ in 0..32 {
            let mut g = original.clone();
            space.mutate(&mut g, &mut r);
            g.validate().unwrap();
            if g != original {
                changed += 1;
            }
        }
        assert!(changed > 24, "mutation too weak: {changed}/32 changed");
    }

    #[test]
    fn variation_mixes_parents_and_stays_valid() {
        let space = MicroSearchSpace::reduced_defaults();
        let mut r = rng(4);
        let a = space.random_genome(&mut r);
        let b = space.random_genome(&mut r);
        for _ in 0..16 {
            let child = space.vary(&a, &b, &mut r);
            child.validate().unwrap();
            assert_eq!(child.nodes.len(), 4);
        }
    }

    #[test]
    fn loose_ends_match_substrate_semantics() {
        // Chain 0→1→2→3→4 leaves only the last state loose.
        let chain = MicroGenome {
            nodes: (0..4)
                .map(|i| MicroGene {
                    in1: i as u8,
                    op1: 0,
                    in2: i as u8,
                    op2: 4,
                })
                .collect(),
        };
        assert_eq!(chain.loose_ends(), vec![4]);
    }

    #[test]
    fn conv_heavy_cells_cost_more_flops() {
        let space = MicroSearchSpace::reduced_defaults();
        let convs = MicroGenome {
            nodes: (0..4)
                .map(|i| MicroGene {
                    in1: i as u8,
                    op1: 1,
                    in2: i as u8,
                    op2: 0,
                })
                .collect(),
        };
        let identities = MicroGenome {
            nodes: (0..4)
                .map(|i| MicroGene {
                    in1: i as u8,
                    op1: 4,
                    in2: i as u8,
                    op2: 4,
                })
                .collect(),
        };
        let f_conv = space.estimate_flops(&convs, (16, 16));
        let f_id = space.estimate_flops(&identities, (16, 16));
        assert!(f_conv > 3.0 * f_id, "conv {f_conv} vs identity {f_id}");
    }
}
