//! Property-based tests of the genome encoding and decoding.

use a4nn_genome::{estimate_flops, Genome, PhaseGenome, SearchSpace};
use proptest::prelude::*;

fn arb_genome(nodes: usize, phases: usize) -> impl Strategy<Value = Genome> {
    let bits = (PhaseGenome::bits_for(nodes)) * phases;
    proptest::collection::vec(any::<bool>(), bits)
        .prop_map(move |bits| Genome::from_bits(&vec![nodes; phases], &bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compact string form round-trips for every genome shape.
    #[test]
    fn compact_string_roundtrip(genome in arb_genome(4, 3)) {
        let back = Genome::from_compact_string(&genome.to_compact_string()).unwrap();
        prop_assert_eq!(genome, back);
    }

    /// Flat-bit round-trip.
    #[test]
    fn flat_bits_roundtrip(genome in arb_genome(5, 2)) {
        let bits = genome.to_bits();
        let back = Genome::from_bits(&[5, 5], &bits);
        prop_assert_eq!(genome, back);
    }

    /// Decoding invariants: channel chaining, leaf/activity consistency,
    /// topological input ordering.
    #[test]
    fn decode_invariants(genome in arb_genome(4, 3)) {
        let space = SearchSpace::paper_defaults();
        let arch = space.decode(&genome);
        let mut in_ch = space.input_channels;
        for phase in &arch.phases {
            prop_assert_eq!(phase.in_channels, in_ch);
            in_ch = phase.out_channels;
            // Leaves are active and have no active consumers.
            for &leaf in &phase.leaves {
                prop_assert!(phase.active[leaf]);
                for (i, ins) in phase.inputs.iter().enumerate() {
                    prop_assert!(
                        !(phase.active[i] && ins.contains(&leaf)),
                        "leaf consumed by active node"
                    );
                }
            }
            // Inputs reference earlier active nodes only.
            for (i, ins) in phase.inputs.iter().enumerate() {
                for &j in ins {
                    prop_assert!(j < i);
                    prop_assert!(phase.active[j]);
                }
            }
            // Non-degenerate phases have at least one leaf.
            if phase.active_nodes() > 0 {
                prop_assert!(!phase.leaves.is_empty());
            }
        }
    }

    /// FLOPs are positive, finite, and monotone in resolution.
    #[test]
    fn flops_positive_and_monotone(genome in arb_genome(4, 3)) {
        let space = SearchSpace::paper_defaults();
        let arch = space.decode(&genome);
        let small = estimate_flops(&arch, (16, 16));
        let large = estimate_flops(&arch, (32, 32));
        prop_assert!(small.is_finite() && small > 0.0);
        prop_assert!(large > small);
    }

    /// Setting a bit never decreases FLOPs by more than one elementwise
    /// join. (Adding an edge usually adds conv work, but it can also turn
    /// a leaf into an interior node, removing one output join — a genuine
    /// property of the decoding that proptest surfaced.)
    #[test]
    fn adding_edges_never_reduces_flops_beyond_one_join(
        genome in arb_genome(4, 3),
        bit in 0usize..21,
    ) {
        let space = SearchSpace::paper_defaults();
        let mut bits = genome.to_bits();
        if bits[bit] {
            return Ok(()); // only consider 0 → 1 flips
        }
        let before = estimate_flops(&space.decode(&genome), (16, 16));
        bits[bit] = true;
        let denser = Genome::from_bits(&[4, 4, 4], &bits);
        let after = estimate_flops(&space.decode(&denser), (16, 16));
        // One join at the widest phase resolution: 32 channels × 16×16.
        let max_join = (32 * 16 * 16) as f64;
        prop_assert!(
            after >= before - max_join,
            "flops dropped {before} -> {after} by more than one join"
        );
    }

    /// Variation and mutation keep genomes inside the space.
    #[test]
    fn variation_closed_over_space(
        a in arb_genome(4, 3),
        b in arb_genome(4, 3),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let space = SearchSpace::paper_defaults();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let child = space.vary(&a, &b, &mut rng);
            prop_assert_eq!(child.bit_len(), 21);
            let _ = space.decode(&child); // must not panic
        }
    }
}
