//! Property-based tests of dominance and crowding beyond two objectives.
//!
//! The objective registry lets a search minimize 3-to-5-dimensional
//! vectors (e.g. `neg_fitness, flops, peak_ws_bytes`), so the NSGA-II
//! primitives must hold their contracts at those dimensions and under
//! wildly mixed objective scales (accuracy percentages next to byte
//! counts in the hundreds of millions).
//!
//! Vectors are generated at the maximum dimension (5) and truncated to
//! the case's `dim` — the stand-in proptest has no flat-map, and the
//! truncation keeps every row in a case the same length by construction.

use a4nn_nsga::{crowding_distance, Dominance, Objectives};
use proptest::prelude::*;

const MAX_DIM: usize = 5;

fn row() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, MAX_DIM)
}

fn rows(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-1e3f64..1e3, MAX_DIM), 1..max)
}

fn truncate(v: Vec<f64>, dim: usize) -> Objectives {
    Objectives::new(v[..dim].to_vec())
}

fn truncate_all(rows: Vec<Vec<f64>>, dim: usize) -> Vec<Objectives> {
    rows.into_iter().map(|r| truncate(r, dim)).collect()
}

/// Apply per-objective positive affine maps — the rescalings that turn a
/// toy front into a (neg_fitness, flops, peak_ws_bytes) front.
fn rescaled(points: &[Objectives], scales: &[f64], offsets: &[f64]) -> Vec<Objectives> {
    points
        .iter()
        .map(|p| {
            Objectives::new(
                p.values()
                    .iter()
                    .zip(scales.iter().zip(offsets))
                    .map(|(&v, (&s, &o))| v * s + o)
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance stays antisymmetric at 3–5 objectives: a beats b and
    /// b beats a never both hold, and `compare` mirrors exactly.
    #[test]
    fn ndim_dominance_is_antisymmetric(dim in 3usize..=MAX_DIM, a in row(), b in row()) {
        let a = truncate(a, dim);
        let b = truncate(b, dim);
        prop_assert!(!(a.dominates(&b) && b.dominates(&a)));
        let mirrored = match a.compare(&b) {
            Dominance::Dominates => Dominance::DominatedBy,
            Dominance::DominatedBy => Dominance::Dominates,
            Dominance::Indifferent => Dominance::Indifferent,
        };
        prop_assert_eq!(b.compare(&a), mirrored);
    }

    /// Dominance stays transitive at 3–5 objectives.
    #[test]
    fn ndim_dominance_is_transitive(
        dim in 3usize..=MAX_DIM, a in row(), b in row(), c in row(),
    ) {
        let a = truncate(a, dim);
        let b = truncate(b, dim);
        let c = truncate(c, dim);
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    /// Poisoning any single coordinate with NaN ranks the vector worse:
    /// the original dominates the poisoned copy, never the reverse — a
    /// crashed model cannot win a tournament on any objective count.
    #[test]
    fn ndim_nan_ranks_strictly_worst(
        dim in 3usize..=MAX_DIM, v in row(), which in 0usize..MAX_DIM,
    ) {
        let mut v = v[..dim].to_vec();
        let clean = Objectives::new(v.clone());
        v[which % dim] = f64::NAN;
        let poisoned = Objectives::new(v);
        prop_assert_eq!(clean.compare(&poisoned), Dominance::Dominates);
        prop_assert_eq!(poisoned.compare(&clean), Dominance::DominatedBy);
        prop_assert!(!poisoned.dominates(&poisoned.clone()));
    }

    /// Crowding distances stay well-formed (no NaN, non-negative, ≥ 2
    /// infinite boundaries on fronts of size ≥ 3) at 3–5 objectives.
    #[test]
    fn ndim_crowding_is_sane(dim in 3usize..=MAX_DIM, raw in rows(30)) {
        let points = truncate_all(raw, dim);
        let front: Vec<usize> = (0..points.len()).collect();
        let d = crowding_distance(&points, &front);
        prop_assert_eq!(d.len(), front.len());
        for v in &d {
            prop_assert!(!v.is_nan());
            prop_assert!(*v >= 0.0);
        }
        if front.len() > 2 {
            prop_assert!(
                d.iter().filter(|v| v.is_infinite()).count() >= 2,
                "each objective's boundary pair must be preserved"
            );
        }
    }

    /// Crowding is invariant under per-objective positive affine maps:
    /// measuring FLOPs in MFLOPs or workspace in bytes vs MiB must not
    /// change which individuals count as crowded. (This is what lets one
    /// front mix percent-scale fitness with 1e8-scale byte counts.)
    #[test]
    fn crowding_survives_mixed_objective_scales(
        dim in 3usize..=MAX_DIM,
        raw in rows(25),
        scales in proptest::collection::vec(1e-3f64..1e9, MAX_DIM),
        offsets in proptest::collection::vec(-1e6f64..1e6, MAX_DIM),
    ) {
        let points = truncate_all(raw, dim);
        let front: Vec<usize> = (0..points.len()).collect();
        let base = crowding_distance(&points, &front);
        let scaled_pts = rescaled(&points, &scales[..dim], &offsets[..dim]);
        let scaled = crowding_distance(&scaled_pts, &front);
        prop_assert_eq!(base.len(), scaled.len());
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert_eq!(b.is_infinite(), s.is_infinite(),
                "boundary structure must be scale-invariant");
            if b.is_finite() {
                // Normalized gaps are ratios, so the affine map cancels
                // up to floating-point rounding.
                let tol = 1e-6 * (1.0 + b.abs());
                prop_assert!((b - s).abs() <= tol,
                    "distance drifted under rescale: {} vs {}", b, s);
            }
        }
    }
}
