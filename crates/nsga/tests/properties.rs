//! Property-based tests of the NSGA-II primitives.

use a4nn_nsga::{crowding_distance, fast_non_dominated_sort, Objectives, RankedIndividual};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Objectives>> {
    proptest::collection::vec(proptest::collection::vec(-1e3f64..1e3, 2..4), 1..max)
        .prop_filter("uniform dimension", |rows| {
            rows.iter().all(|r| r.len() == rows[0].len())
        })
        .prop_map(|rows| rows.into_iter().map(Objectives::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fronts partition the population exactly.
    #[test]
    fn fronts_partition_population(points in arb_points(40)) {
        let fronts = fast_non_dominated_sort(&points);
        let mut seen: Vec<usize> = fronts.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());
    }

    /// No member of a front dominates another member of the same front.
    #[test]
    fn fronts_are_internally_non_dominated(points in arb_points(30)) {
        let fronts = fast_non_dominated_sort(&points);
        for front in &fronts {
            for &a in front {
                for &b in front {
                    prop_assert!(!points[a].dominates(&points[b]));
                }
            }
        }
    }

    /// Every member of front k+1 is dominated by someone in front k.
    #[test]
    fn fronts_are_ordered_by_domination(points in arb_points(25)) {
        let fronts = fast_non_dominated_sort(&points);
        for w in fronts.windows(2) {
            for &q in &w[1] {
                prop_assert!(
                    w[0].iter().any(|&p| points[p].dominates(&points[q])),
                    "front ordering violated"
                );
            }
        }
    }

    /// Crowding distances are never NaN and never negative; fronts of
    /// size ≤ 2 are all infinite.
    #[test]
    fn crowding_is_sane(points in arb_points(30)) {
        let front: Vec<usize> = (0..points.len()).collect();
        let d = crowding_distance(&points, &front);
        prop_assert_eq!(d.len(), front.len());
        for v in &d {
            prop_assert!(!v.is_nan());
            prop_assert!(*v >= 0.0);
        }
        if front.len() <= 2 {
            prop_assert!(d.iter().all(|v| v.is_infinite()));
        }
    }

    /// The crowded-comparison operator is asymmetric: a beats b and
    /// b beats a never both hold.
    #[test]
    fn crowded_comparison_asymmetric(
        ra in 0usize..5, ca in 0.0f64..10.0,
        rb in 0usize..5, cb in 0.0f64..10.0,
    ) {
        let a = RankedIndividual { rank: ra, crowding: ca };
        let b = RankedIndividual { rank: rb, crowding: cb };
        prop_assert!(!(a.beats(&b) && b.beats(&a)));
    }
}
