//! Fast non-dominated sorting (Deb et al., 2002, §III-A).
//!
//! Partitions a population into Pareto fronts `F₁, F₂, …` where `F₁` is the
//! non-dominated set, `F₂` is non-dominated once `F₁` is removed, and so
//! on. O(M·N²) like the original algorithm — N here is a NAS population of
//! tens, so the quadratic term is irrelevant; a criterion bench in
//! `a4nn-bench` tracks it anyway.

use crate::objectives::{Dominance, Objectives};

/// Sort `points` into Pareto fronts; returns the fronts as index lists,
/// best front first. Every input index appears in exactly one front.
pub fn fast_non_dominated_sort(points: &[Objectives]) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[p] = set of indices p dominates; counts[p] = number of
    // points dominating p.
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut counts = vec![0usize; n];
    for p in 0..n {
        for q in (p + 1)..n {
            match points[p].compare(&points[q]) {
                Dominance::Dominates => {
                    dominates[p].push(q);
                    counts[q] += 1;
                }
                Dominance::DominatedBy => {
                    dominates[q].push(p);
                    counts[p] += 1;
                }
                Dominance::Indifferent => {}
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&p| counts[p] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominates[p] {
                counts[q] -= 1;
                if counts[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Ranks per index: `rank[i]` is the 0-based front number of point `i`.
pub fn ranks_from_fronts(fronts: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; n];
    for (r, front) in fronts.iter().enumerate() {
        for &i in front {
            ranks[i] = r;
        }
    }
    debug_assert!(ranks.iter().all(|&r| r != usize::MAX));
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs(rows: &[&[f64]]) -> Vec<Objectives> {
        rows.iter().map(|r| Objectives::new(r.to_vec())).collect()
    }

    #[test]
    fn single_front_when_all_incomparable() {
        let pts = objs(&[&[1.0, 4.0], &[2.0, 3.0], &[3.0, 2.0], &[4.0, 1.0]]);
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
    }

    #[test]
    fn chain_of_dominated_points_yields_layered_fronts() {
        let pts = objs(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn mixed_population() {
        // Points 0 and 1 form the first front; 2 is dominated by 0; 3 by all.
        let pts = objs(&[&[1.0, 3.0], &[3.0, 1.0], &[2.0, 4.0], &[4.0, 4.0]]);
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn empty_population() {
        assert!(fast_non_dominated_sort(&[]).is_empty());
    }

    #[test]
    fn duplicates_share_a_front() {
        let pts = objs(&[&[1.0, 1.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2]);
    }

    #[test]
    fn every_index_appears_exactly_once() {
        let pts = objs(&[
            &[5.0, 1.0],
            &[4.0, 2.0],
            &[3.0, 3.0],
            &[6.0, 6.0],
            &[1.0, 5.0],
            &[2.0, 2.0],
        ]);
        let fronts = fast_non_dominated_sort(&pts);
        let mut seen: Vec<usize> = fronts.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn front_members_do_not_dominate_each_other() {
        let pts = objs(&[
            &[5.0, 1.0],
            &[4.0, 2.0],
            &[3.0, 3.0],
            &[6.0, 6.0],
            &[1.0, 5.0],
            &[2.0, 2.0],
        ]);
        let fronts = fast_non_dominated_sort(&pts);
        for front in &fronts {
            for &a in front {
                for &b in front {
                    assert!(!pts[a].dominates(&pts[b]));
                }
            }
        }
    }

    #[test]
    fn later_fronts_are_dominated_by_earlier_ones() {
        let pts = objs(&[&[1.0, 1.0], &[2.0, 2.0], &[1.5, 3.0], &[3.0, 3.0]]);
        let fronts = fast_non_dominated_sort(&pts);
        for w in fronts.windows(2) {
            for &q in &w[1] {
                assert!(
                    w[0].iter().any(|&p| pts[p].dominates(&pts[q])),
                    "each member of front k+1 must be dominated by some member of front k"
                );
            }
        }
    }

    #[test]
    fn ranks_cover_population() {
        let pts = objs(&[&[1.0, 1.0], &[2.0, 2.0], &[1.5, 0.5]]);
        let fronts = fast_non_dominated_sort(&pts);
        let ranks = ranks_from_fronts(&fronts, pts.len());
        assert_eq!(ranks.len(), 3);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 0);
        assert_eq!(ranks[1], 1);
    }
}
