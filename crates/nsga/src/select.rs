//! Binary tournament selection on the crowded-comparison operator.
//!
//! An individual beats another if it has a lower Pareto rank, or the same
//! rank and a larger crowding distance — NSGA-II's `≺_n` operator, which
//! NSGA-Net uses to pick the parents of each generation's offspring.

use rand::Rng;

/// Rank/crowding pair used by tournament selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedIndividual {
    /// 0-based Pareto front number (lower is better).
    pub rank: usize,
    /// Crowding distance within the front (higher is better).
    pub crowding: f64,
}

impl RankedIndividual {
    /// Crowded-comparison: true when `self` is strictly preferred.
    #[inline]
    pub fn beats(&self, other: &RankedIndividual) -> bool {
        self.rank < other.rank || (self.rank == other.rank && self.crowding > other.crowding)
    }
}

/// Run one binary tournament over `ranked`, returning the winning index.
///
/// Draws two (not necessarily distinct) contestants uniformly; ties fall to
/// the first drawn, which keeps the operator unbiased under symmetry.
pub fn tournament_select<R: Rng + ?Sized>(ranked: &[RankedIndividual], rng: &mut R) -> usize {
    assert!(!ranked.is_empty(), "cannot select from an empty population");
    let a = rng.gen_range(0..ranked.len());
    let b = rng.gen_range(0..ranked.len());
    if ranked[b].beats(&ranked[a]) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lower_rank_beats_higher_rank() {
        let good = RankedIndividual {
            rank: 0,
            crowding: 0.1,
        };
        let bad = RankedIndividual {
            rank: 1,
            crowding: f64::INFINITY,
        };
        assert!(good.beats(&bad));
        assert!(!bad.beats(&good));
    }

    #[test]
    fn same_rank_larger_crowding_wins() {
        let sparse = RankedIndividual {
            rank: 0,
            crowding: 2.0,
        };
        let crowded = RankedIndividual {
            rank: 0,
            crowding: 0.5,
        };
        assert!(sparse.beats(&crowded));
        assert!(!crowded.beats(&sparse));
    }

    #[test]
    fn identical_individuals_do_not_beat_each_other() {
        let a = RankedIndividual {
            rank: 0,
            crowding: 1.0,
        };
        assert!(!a.beats(&a));
    }

    #[test]
    fn tournament_prefers_better_individuals_statistically() {
        let ranked = vec![
            RankedIndividual {
                rank: 0,
                crowding: f64::INFINITY,
            },
            RankedIndividual {
                rank: 3,
                crowding: 0.0,
            },
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut wins0 = 0;
        for _ in 0..1000 {
            if tournament_select(&ranked, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        // Index 0 wins unless both draws pick index 1 (prob 1/4).
        assert!(wins0 > 650, "wins0 = {wins0}");
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = tournament_select(&[], &mut rng);
    }
}
