//! Crowding-distance assignment (Deb et al., 2002, §III-B).
//!
//! Within one Pareto front, the crowding distance of an individual is the
//! sum over objectives of the normalized gap between its neighbors when the
//! front is sorted along that objective. Boundary individuals get `+∞` so
//! the extremes of the front are always preserved — that is what keeps the
//! accuracy-vs-FLOPs front of the NAS spread out instead of collapsing
//! onto one region.

use crate::objectives::{cmp_objective, Objectives};

/// Compute crowding distances for the members of one front.
///
/// `front` holds indices into `points`; the result is parallel to `front`.
/// Members with a NaN objective (failed evaluations) are excluded from
/// the spread computation and pinned at distance 0 — maximally crowded —
/// so they are discarded first and never hijack a boundary's `+∞`. Among
/// the remaining members, fronts of size ≤ 2 get all-infinite distances.
pub fn crowding_distance(points: &[Objectives], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    if m == 0 {
        return Vec::new();
    }
    let mut dist = vec![0.0f64; m];
    // Positions within `front` whose objectives are all real.
    let clean: Vec<usize> = (0..m).filter(|&i| !points[front[i]].has_nan()).collect();
    if clean.len() <= 2 {
        for &i in &clean {
            dist[i] = f64::INFINITY;
        }
        return dist;
    }
    let n_obj = points[front[0]].len();
    let mc = clean.len();
    let mut order = clean;
    for obj in 0..n_obj {
        order.sort_by(|&a, &b| {
            let va = points[front[a]].values()[obj];
            let vb = points[front[b]].values()[obj];
            cmp_objective(va, vb)
        });
        let lo = points[front[order[0]]].values()[obj];
        let hi = points[front[order[mc - 1]]].values()[obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[mc - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= f64::EPSILON {
            continue; // Degenerate objective: contributes nothing.
        }
        for w in 1..(mc - 1) {
            let prev = points[front[order[w - 1]]].values()[obj];
            let next = points[front[order[w + 1]]].values()[obj];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs(rows: &[&[f64]]) -> Vec<Objectives> {
        rows.iter().map(|r| Objectives::new(r.to_vec())).collect()
    }

    #[test]
    fn boundaries_are_infinite() {
        let pts = objs(&[&[1.0, 4.0], &[2.0, 3.0], &[3.0, 2.0], &[4.0, 1.0]]);
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn uniform_spacing_gives_equal_interior_distances() {
        let pts = objs(&[&[0.0, 3.0], &[1.0, 2.0], &[2.0, 1.0], &[3.0, 0.0]]);
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pts, &front);
        assert!((d[1] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn crowded_point_has_smaller_distance() {
        // Index 1 is squeezed between 0 and 2; index 3 sits in open space.
        let pts = objs(&[
            &[0.0, 10.0],
            &[0.5, 9.5],
            &[1.0, 9.0],
            &[5.0, 5.0],
            &[10.0, 0.0],
        ]);
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d[1] < d[3], "crowded {} vs sparse {}", d[1], d[3]);
    }

    #[test]
    fn tiny_fronts_are_all_infinite() {
        let pts = objs(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(crowding_distance(&pts, &[0, 1])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&pts, &[0])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&pts, &[]).is_empty());
    }

    #[test]
    fn nan_members_are_pinned_most_crowded() {
        // A failed model sitting in a front must neither panic the sort
        // nor capture a boundary's infinite distance.
        let pts = objs(&[
            &[0.0, 3.0],
            &[f64::NAN, f64::NAN],
            &[1.0, 2.0],
            &[2.0, 1.0],
            &[3.0, 0.0],
        ]);
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&pts, &front);
        assert_eq!(d[1], 0.0, "NaN member must be maximally crowded");
        assert!(d[0].is_infinite() && d[4].is_infinite());
        assert!(d[2].is_finite() && d[2] > 0.0);
        assert!(d.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn all_nan_front_is_all_zero() {
        let pts = objs(&[&[f64::NAN, 1.0], &[f64::NAN, f64::NAN], &[2.0, f64::NAN]]);
        let d = crowding_distance(&pts, &[0, 1, 2]);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn degenerate_objective_contributes_nothing() {
        // Second objective identical everywhere; distances come from the
        // first objective only and no NaNs appear.
        let pts = objs(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d.iter().all(|v| !v.is_nan()));
        assert!(d[1].is_finite());
    }
}
