//! Objective vectors and Pareto dominance.
//!
//! All objectives are *minimized*. Callers maximizing a quantity (e.g.
//! validation accuracy) negate it; A4NN's NAS problem is
//! `minimize (−accuracy, FLOPs)` exactly as NSGA-Net does.
//!
//! NaN objectives are legal — a model whose training crashed out of its
//! retry budget reports NaN/partial fitness — and rank *strictly worst*:
//! per coordinate, NaN (of either sign) compares greater than every real
//! value and equal to any other NaN. A failed model can therefore never
//! dominate, and is dominated by anything no-worse on the remaining
//! coordinates, but it still flows through sorting and selection without
//! panicking the search.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Total order on one objective coordinate under the minimization
/// convention, ranking NaN of either sign strictly worst (greatest).
/// Unlike `f64::total_cmp`, which puts negative NaN *below* −∞ — so a
/// negated NaN fitness would rank best — this treats all NaNs alike.
pub fn cmp_objective(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // Non-NaN values are totally ordered; total_cmp also ranks
        // -0.0 < +0.0, which keeps the sort deterministic.
        (false, false) => a.total_cmp(&b),
    }
}

/// Two objective vectors of different dimension were compared — data
/// from one search was mixed with data from another (a foreign snapshot
/// or commons). Load boundaries surface this as a typed error instead
/// of letting [`Objectives::compare`] panic mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Dimension of the left-hand vector.
    pub left: usize,
    /// Dimension of the right-hand vector.
    pub right: usize,
}

impl fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective vectors have mismatched dimensions ({} vs {})",
            self.left, self.right
        )
    }
}

impl std::error::Error for DimensionMismatch {}

/// Outcome of a pairwise dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// `self` dominates the other vector (no-worse in all, better in one).
    Dominates,
    /// The other vector dominates `self`.
    DominatedBy,
    /// Neither dominates (incomparable or equal).
    Indifferent,
}

/// A vector of objective values under the minimization convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objectives(Vec<f64>);

impl Objectives {
    /// Wrap raw objective values. NaN entries are legal and rank strictly
    /// worst (see [`cmp_objective`]).
    pub fn new(values: Vec<f64>) -> Self {
        Objectives(values)
    }

    /// True if any coordinate is NaN (a failed evaluation).
    pub fn has_nan(&self) -> bool {
        self.0.iter().any(|v| v.is_nan())
    }

    /// The raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Number of objectives.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no objectives are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Pairwise Pareto comparison. Panics if dimensionalities differ —
    /// inside one search every vector shares the configured dimension by
    /// construction, so a mismatch here is a bug. Data crossing a trust
    /// boundary (snapshot or commons loads) goes through
    /// [`try_compare`](Self::try_compare) instead.
    pub fn compare(&self, other: &Objectives) -> Dominance {
        match self.try_compare(other) {
            Ok(d) => d,
            Err(_) => panic!("objective vectors must have equal dimension"),
        }
    }

    /// Pairwise Pareto comparison returning a typed error on dimension
    /// mismatch, for comparisons over loaded (untrusted) vectors.
    pub fn try_compare(&self, other: &Objectives) -> Result<Dominance, DimensionMismatch> {
        if self.0.len() != other.0.len() {
            return Err(DimensionMismatch {
                left: self.0.len(),
                right: other.0.len(),
            });
        }
        let mut better = false;
        let mut worse = false;
        for (&a, &b) in self.0.iter().zip(&other.0) {
            match cmp_objective(a, b) {
                Ordering::Less => better = true,
                Ordering::Greater => worse = true,
                Ordering::Equal => {}
            }
        }
        Ok(match (better, worse) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            _ => Dominance::Indifferent,
        })
    }

    /// `self` strictly dominates `other`.
    #[inline]
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.compare(other) == Dominance::Dominates
    }
}

impl From<Vec<f64>> for Objectives {
    fn from(v: Vec<f64>) -> Self {
        Objectives::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        let a = Objectives::new(vec![1.0, 2.0]);
        let b = Objectives::new(vec![2.0, 3.0]);
        assert_eq!(a.compare(&b), Dominance::Dominates);
        assert_eq!(b.compare(&a), Dominance::DominatedBy);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn weak_dominance_counts() {
        // Equal in one objective, better in the other ⇒ dominates.
        let a = Objectives::new(vec![1.0, 2.0]);
        let b = Objectives::new(vec![1.0, 3.0]);
        assert_eq!(a.compare(&b), Dominance::Dominates);
    }

    #[test]
    fn incomparable_vectors() {
        let a = Objectives::new(vec![1.0, 3.0]);
        let b = Objectives::new(vec![2.0, 2.0]);
        assert_eq!(a.compare(&b), Dominance::Indifferent);
        assert_eq!(b.compare(&a), Dominance::Indifferent);
    }

    #[test]
    fn equal_vectors_are_indifferent() {
        let a = Objectives::new(vec![1.0, 2.0]);
        assert_eq!(a.compare(&a.clone()), Dominance::Indifferent);
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dimension_mismatch_panics() {
        let a = Objectives::new(vec![1.0]);
        let b = Objectives::new(vec![1.0, 2.0]);
        let _ = a.compare(&b);
    }

    #[test]
    fn try_compare_surfaces_dimension_mismatch_as_value() {
        let a = Objectives::new(vec![1.0]);
        let b = Objectives::new(vec![1.0, 2.0]);
        let err = a.try_compare(&b).unwrap_err();
        assert_eq!(err, DimensionMismatch { left: 1, right: 2 });
        assert!(err.to_string().contains("1 vs 2"));
        assert_eq!(a.try_compare(&a.clone()), Ok(Dominance::Indifferent));
    }

    #[test]
    fn nan_ranks_strictly_worst_per_coordinate() {
        assert_eq!(cmp_objective(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(cmp_objective(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(cmp_objective(1.0, f64::NAN), Ordering::Less);
        assert_eq!(cmp_objective(f64::NAN, f64::NAN), Ordering::Equal);
        // A negated NaN fitness (-NaN) must not rank best, which plain
        // total_cmp would allow.
        assert_eq!(
            cmp_objective(-f64::NAN, f64::NEG_INFINITY),
            Ordering::Greater
        );
        assert_eq!(cmp_objective(-f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn nan_vector_is_dominated_never_dominating() {
        let failed = Objectives::new(vec![f64::NAN, f64::NAN]);
        let ok = Objectives::new(vec![-90.0, 1e9]);
        assert_eq!(failed.compare(&ok), Dominance::DominatedBy);
        assert_eq!(ok.compare(&failed), Dominance::Dominates);
        assert!(failed.has_nan() && !ok.has_nan());
    }

    #[test]
    fn partial_nan_vector_compares_coordinatewise() {
        // NaN fitness but smaller FLOPs: incomparable, like any trade-off.
        let failed = Objectives::new(vec![f64::NAN, 1.0]);
        let ok = Objectives::new(vec![-90.0, 2.0]);
        assert_eq!(failed.compare(&ok), Dominance::Indifferent);
        // NaN fitness and larger FLOPs: strictly dominated.
        let worse = Objectives::new(vec![f64::NAN, 3.0]);
        assert_eq!(worse.compare(&ok), Dominance::DominatedBy);
    }

    #[test]
    fn dominance_is_antisymmetric_and_transitive() {
        let a = Objectives::new(vec![0.0, 0.0]);
        let b = Objectives::new(vec![1.0, 1.0]);
        let c = Objectives::new(vec![2.0, 2.0]);
        assert!(a.dominates(&b) && b.dominates(&c) && a.dominates(&c));
        assert!(!b.dominates(&a));
    }
}
