//! Objective vectors and Pareto dominance.
//!
//! All objectives are *minimized*. Callers maximizing a quantity (e.g.
//! validation accuracy) negate it; A4NN's NAS problem is
//! `minimize (−accuracy, FLOPs)` exactly as NSGA-Net does.

use serde::{Deserialize, Serialize};

/// Outcome of a pairwise dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// `self` dominates the other vector (no-worse in all, better in one).
    Dominates,
    /// The other vector dominates `self`.
    DominatedBy,
    /// Neither dominates (incomparable or equal).
    Indifferent,
}

/// A vector of objective values under the minimization convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objectives(Vec<f64>);

impl Objectives {
    /// Wrap raw objective values. Panics in debug builds on NaN: dominance
    /// is undefined for NaN and silently propagating it corrupts the sort.
    pub fn new(values: Vec<f64>) -> Self {
        debug_assert!(
            values.iter().all(|v| !v.is_nan()),
            "objective values must not be NaN"
        );
        Objectives(values)
    }

    /// The raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Number of objectives.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no objectives are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Pairwise Pareto comparison. Panics if dimensionalities differ.
    pub fn compare(&self, other: &Objectives) -> Dominance {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "objective vectors must have equal dimension"
        );
        let mut better = false;
        let mut worse = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a < b {
                better = true;
            } else if a > b {
                worse = true;
            }
        }
        match (better, worse) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            _ => Dominance::Indifferent,
        }
    }

    /// `self` strictly dominates `other`.
    #[inline]
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.compare(other) == Dominance::Dominates
    }
}

impl From<Vec<f64>> for Objectives {
    fn from(v: Vec<f64>) -> Self {
        Objectives::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        let a = Objectives::new(vec![1.0, 2.0]);
        let b = Objectives::new(vec![2.0, 3.0]);
        assert_eq!(a.compare(&b), Dominance::Dominates);
        assert_eq!(b.compare(&a), Dominance::DominatedBy);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn weak_dominance_counts() {
        // Equal in one objective, better in the other ⇒ dominates.
        let a = Objectives::new(vec![1.0, 2.0]);
        let b = Objectives::new(vec![1.0, 3.0]);
        assert_eq!(a.compare(&b), Dominance::Dominates);
    }

    #[test]
    fn incomparable_vectors() {
        let a = Objectives::new(vec![1.0, 3.0]);
        let b = Objectives::new(vec![2.0, 2.0]);
        assert_eq!(a.compare(&b), Dominance::Indifferent);
        assert_eq!(b.compare(&a), Dominance::Indifferent);
    }

    #[test]
    fn equal_vectors_are_indifferent() {
        let a = Objectives::new(vec![1.0, 2.0]);
        assert_eq!(a.compare(&a.clone()), Dominance::Indifferent);
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dimension_mismatch_panics() {
        let a = Objectives::new(vec![1.0]);
        let b = Objectives::new(vec![1.0, 2.0]);
        let _ = a.compare(&b);
    }

    #[test]
    fn dominance_is_antisymmetric_and_transitive() {
        let a = Objectives::new(vec![0.0, 0.0]);
        let b = Objectives::new(vec![1.0, 1.0]);
        let c = Objectives::new(vec![2.0, 2.0]);
        assert!(a.dominates(&b) && b.dominates(&c) && a.dominates(&c));
        assert!(!b.dominates(&a));
    }
}
