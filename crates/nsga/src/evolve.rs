//! The NSGA-II generational loop with elitist (μ+λ) environmental
//! selection, generic over genomes and evaluation.

use crate::crowding::crowding_distance;
use crate::objectives::Objectives;
use crate::select::{tournament_select, RankedIndividual};
use crate::sort::{fast_non_dominated_sort, ranks_from_fronts};
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Context handed to [`Problem::evaluate`] so evaluators (like A4NN's
/// trainer) can tag records with the model's identity.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext {
    /// 0-based generation this genome belongs to (0 = initial population).
    pub generation: usize,
    /// Position within its generation's batch.
    pub index_in_generation: usize,
    /// Globally unique model id, assigned in evaluation order.
    pub model_id: u64,
}

/// A problem definition for the engine: how to create, vary, and score
/// genomes. All objectives are minimized (see [`Objectives`]).
pub trait Problem {
    /// Genome representation (e.g. an NSGA-Net bit-string genome).
    type Genome: Clone;

    /// Score a genome. For A4NN this is where a network is built, trained
    /// (possibly terminated early by the prediction engine), and measured.
    fn evaluate(&mut self, genome: &Self::Genome, ctx: &EvalContext) -> Objectives;

    /// Sample a random genome for the initial population.
    fn random_genome(&mut self, rng: &mut dyn RngCore) -> Self::Genome;

    /// Produce one offspring from two parents (crossover + mutation).
    fn vary(&mut self, a: &Self::Genome, b: &Self::Genome, rng: &mut dyn RngCore) -> Self::Genome;

    /// Optional duplicate filter: return true if `candidate` should be
    /// rejected (e.g. identical architecture already evaluated). The engine
    /// retries a bounded number of times before accepting a duplicate.
    fn is_duplicate(&mut self, _candidate: &Self::Genome) -> bool {
        false
    }
}

/// Engine configuration — NSGA-Net's Table 2 settings map onto this
/// directly: `population = 10`, `offspring = 10`, `generations = 10`
/// evaluates `population + offspring × (generations − 1) = 100` networks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NsgaConfig {
    /// Size of the parent population (μ).
    pub population: usize,
    /// Offspring produced per generation (λ).
    pub offspring: usize,
    /// Total number of generations, counting the initial population as
    /// generation 0.
    pub generations: usize,
    /// RNG seed for the whole run (reproducibility of the search).
    pub seed: u64,
}

impl NsgaConfig {
    /// Total number of genome evaluations the run will perform.
    pub fn total_evaluations(&self) -> usize {
        self.population + self.offspring * self.generations.saturating_sub(1)
    }
}

/// One evaluated individual.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Individual<G> {
    /// Globally unique id in evaluation order (0-based).
    pub id: u64,
    /// Generation that produced this individual.
    pub generation: usize,
    /// The genome.
    pub genome: G,
    /// Its objective vector (minimization convention).
    pub objectives: Objectives,
}

/// Result of a complete run.
#[derive(Debug, Clone)]
pub struct RunResult<G> {
    /// Every individual ever evaluated, in evaluation order.
    pub all: Vec<Individual<G>>,
    /// Indices (into `all`) of the final parent population.
    pub final_population: Vec<usize>,
    /// The configuration that produced this result.
    pub config: NsgaConfig,
}

impl<G: Clone> RunResult<G> {
    /// Pareto-optimal individuals over *everything evaluated* (the paper's
    /// Figure 6 fronts are computed over all 100 architectures of a test).
    pub fn pareto_front(&self) -> Vec<&Individual<G>> {
        let objs: Vec<Objectives> = self.all.iter().map(|i| i.objectives.clone()).collect();
        let fronts = fast_non_dominated_sort(&objs);
        fronts
            .first()
            .map(|f| f.iter().map(|&i| &self.all[i]).collect())
            .unwrap_or_default()
    }
}

/// The NSGA-II engine.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: NsgaConfig,
}

/// How many times `vary` is retried when the problem reports duplicates.
const DUPLICATE_RETRIES: usize = 16;

impl Nsga2 {
    /// Create an engine with the given configuration.
    pub fn new(config: NsgaConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.generations > 0, "need at least one generation");
        Nsga2 { config }
    }

    /// Run the full generational loop. `on_generation` is invoked after
    /// each generation's environmental selection with the indices (into the
    /// global archive) of the surviving parents — A4NN's workflow
    /// orchestrator uses this hook to flush lineage records.
    pub fn run<P, F>(&self, problem: &mut P, mut on_generation: F) -> RunResult<P::Genome>
    where
        P: Problem,
        F: FnMut(&[usize]),
    {
        let cfg = self.config;
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut all: Vec<Individual<P::Genome>> = Vec::with_capacity(cfg.total_evaluations());
        let mut next_id: u64 = 0;

        // Generation 0: random initial population.
        let mut parents: Vec<usize> = Vec::with_capacity(cfg.population);
        for index in 0..cfg.population {
            let genome = problem.random_genome(&mut rng);
            let ctx = EvalContext {
                generation: 0,
                index_in_generation: index,
                model_id: next_id,
            };
            let objectives = problem.evaluate(&genome, &ctx);
            all.push(Individual {
                id: next_id,
                generation: 0,
                genome,
                objectives,
            });
            parents.push(all.len() - 1);
            next_id += 1;
        }
        on_generation(&parents);

        for generation in 1..cfg.generations {
            // Rank the current parents for tournament selection.
            let parent_objs: Vec<Objectives> =
                parents.iter().map(|&i| all[i].objectives.clone()).collect();
            let fronts = fast_non_dominated_sort(&parent_objs);
            let ranks = ranks_from_fronts(&fronts, parents.len());
            let mut crowding = vec![0.0f64; parents.len()];
            for front in &fronts {
                let d = crowding_distance(&parent_objs, front);
                for (&i, &di) in front.iter().zip(&d) {
                    crowding[i] = di;
                }
            }
            let ranked: Vec<RankedIndividual> = ranks
                .iter()
                .zip(&crowding)
                .map(|(&rank, &crowding)| RankedIndividual { rank, crowding })
                .collect();

            // Variation: λ offspring from tournament-selected parents.
            let mut offspring: Vec<usize> = Vec::with_capacity(cfg.offspring);
            for index in 0..cfg.offspring {
                let pa = parents[tournament_select(&ranked, &mut rng)];
                let pb = parents[tournament_select(&ranked, &mut rng)];
                let mut child = problem.vary(&all[pa].genome, &all[pb].genome, &mut rng);
                let mut retries = 0;
                while problem.is_duplicate(&child) && retries < DUPLICATE_RETRIES {
                    child = problem.vary(&all[pa].genome, &all[pb].genome, &mut rng);
                    retries += 1;
                }
                let ctx = EvalContext {
                    generation,
                    index_in_generation: index,
                    model_id: next_id,
                };
                let objectives = problem.evaluate(&child, &ctx);
                all.push(Individual {
                    id: next_id,
                    generation,
                    genome: child,
                    objectives,
                });
                offspring.push(all.len() - 1);
                next_id += 1;
            }

            // Elitist (μ+λ) environmental selection.
            let mut pool: Vec<usize> = parents.clone();
            pool.extend_from_slice(&offspring);
            parents = environmental_selection(&all, &pool, cfg.population);
            on_generation(&parents);
        }

        RunResult {
            all,
            final_population: parents,
            config: cfg,
        }
    }
}

/// Pick `keep` survivors from `pool` (indices into `all`): whole fronts
/// while they fit, then the most crowded-distance-sparse members of the
/// first overflowing front. Public so callers that drive their own
/// generational loop (A4NN's workflow trains a whole generation in
/// parallel before selecting) can reuse NSGA-II's exact selection.
pub fn environmental_selection<G>(
    all: &[Individual<G>],
    pool: &[usize],
    keep: usize,
) -> Vec<usize> {
    let objs: Vec<Objectives> = pool.iter().map(|&i| all[i].objectives.clone()).collect();
    let fronts = fast_non_dominated_sort(&objs);
    let mut survivors = Vec::with_capacity(keep);
    for front in fronts {
        if survivors.len() + front.len() <= keep {
            survivors.extend(front.iter().map(|&local| pool[local]));
            if survivors.len() == keep {
                break;
            }
        } else {
            let d = crowding_distance(&objs, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            // Descending crowding distance; infinities (extremes) first,
            // NaN-objective members (pinned at 0) last. total_cmp keeps
            // the sort total even if a distance were ever NaN.
            order.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
            for &local in order.iter().take(keep - survivors.len()) {
                survivors.push(pool[front[local]]);
            }
            break;
        }
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// SCH: minimize (x², (x−2)²); Pareto set is x ∈ [0, 2].
    struct Sch {
        evals: usize,
    }

    impl Problem for Sch {
        type Genome = f64;
        fn evaluate(&mut self, g: &f64, _ctx: &EvalContext) -> Objectives {
            self.evals += 1;
            Objectives::new(vec![g * g, (g - 2.0) * (g - 2.0)])
        }
        fn random_genome(&mut self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-6.0..6.0)
        }
        fn vary(&mut self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> f64 {
            let mid = (a + b) / 2.0;
            mid + rng.gen_range(-0.3..0.3)
        }
    }

    fn run_sch(seed: u64) -> RunResult<f64> {
        let cfg = NsgaConfig {
            population: 16,
            offspring: 16,
            generations: 25,
            seed,
        };
        Nsga2::new(cfg).run(&mut Sch { evals: 0 }, |_| {})
    }

    #[test]
    fn converges_to_sch_pareto_set() {
        let result = run_sch(3);
        let front = result.pareto_front();
        assert!(front.len() >= 4);
        // The final population should be concentrated near [0, 2].
        let mut inside = 0;
        for &i in &result.final_population {
            let x = result.all[i].genome;
            if (-0.3..=2.3).contains(&x) {
                inside += 1;
            }
        }
        assert!(
            inside * 10 >= result.final_population.len() * 8,
            "{inside}/{} in Pareto region",
            result.final_population.len()
        );
    }

    #[test]
    fn evaluation_count_matches_config() {
        let cfg = NsgaConfig {
            population: 10,
            offspring: 10,
            generations: 10,
            seed: 5,
        };
        assert_eq!(cfg.total_evaluations(), 100);
        let mut problem = Sch { evals: 0 };
        let result = Nsga2::new(cfg).run(&mut problem, |_| {});
        assert_eq!(problem.evals, 100);
        assert_eq!(result.all.len(), 100);
    }

    #[test]
    fn model_ids_are_sequential_and_generations_recorded() {
        let result = run_sch(9);
        for (k, ind) in result.all.iter().enumerate() {
            assert_eq!(ind.id as usize, k);
        }
        assert_eq!(result.all[0].generation, 0);
        assert_eq!(result.all.last().unwrap().generation, 24);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_sch(77);
        let b = run_sch(77);
        assert_eq!(a.all.len(), b.all.len());
        for (x, y) in a.all.iter().zip(&b.all) {
            assert_eq!(x.genome.to_bits(), y.genome.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_sch(1);
        let b = run_sch(2);
        let same = a
            .all
            .iter()
            .zip(&b.all)
            .filter(|(x, y)| x.genome.to_bits() == y.genome.to_bits())
            .count();
        assert!(same < a.all.len() / 2);
    }

    #[test]
    fn on_generation_fires_once_per_generation() {
        let cfg = NsgaConfig {
            population: 8,
            offspring: 8,
            generations: 7,
            seed: 0,
        };
        let mut calls = 0;
        let _ = Nsga2::new(cfg).run(&mut Sch { evals: 0 }, |parents| {
            calls += 1;
            assert_eq!(parents.len(), 8);
        });
        assert_eq!(calls, 7);
    }

    #[test]
    fn environmental_selection_is_elitist() {
        // Survivors of each generation are never dominated by a discarded
        // pool member of the same generation — check the final population
        // against the global archive of its last two generations.
        let result = run_sch(13);
        let last_gen = result.all.last().unwrap().generation;
        let pool: Vec<usize> = (0..result.all.len())
            .filter(|&i| result.all[i].generation >= last_gen.saturating_sub(1))
            .collect();
        for &s in &result.final_population {
            for &p in &pool {
                if result.all[p]
                    .objectives
                    .dominates(&result.all[s].objectives)
                {
                    // A dominating pool member must itself be a survivor.
                    assert!(
                        result.final_population.contains(&p),
                        "non-surviving dominator found"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_filter_is_consulted() {
        struct DupProblem {
            dup_checks: usize,
        }
        impl Problem for DupProblem {
            type Genome = u32;
            fn evaluate(&mut self, g: &u32, _ctx: &EvalContext) -> Objectives {
                Objectives::new(vec![f64::from(*g), -f64::from(*g)])
            }
            fn random_genome(&mut self, rng: &mut dyn RngCore) -> u32 {
                rng.next_u32() % 1000
            }
            fn vary(&mut self, a: &u32, _b: &u32, rng: &mut dyn RngCore) -> u32 {
                a.wrapping_add(rng.next_u32() % 7)
            }
            fn is_duplicate(&mut self, _c: &u32) -> bool {
                self.dup_checks += 1;
                false
            }
        }
        let cfg = NsgaConfig {
            population: 4,
            offspring: 4,
            generations: 3,
            seed: 0,
        };
        let mut p = DupProblem { dup_checks: 0 };
        let _ = Nsga2::new(cfg).run(&mut p, |_| {});
        assert_eq!(p.dup_checks, 8); // 4 offspring × 2 generations.
    }

    /// Regression: a population containing failed models (NaN objectives,
    /// legal since trainings can exhaust their retry budget) must evolve
    /// to completion instead of panicking in crowding/selection, and the
    /// failed models must never displace viable ones from the survivors.
    #[test]
    fn evolves_population_containing_failed_models() {
        struct Flaky;
        impl Problem for Flaky {
            type Genome = f64;
            fn evaluate(&mut self, g: &f64, _ctx: &EvalContext) -> Objectives {
                if *g < 0.0 {
                    // Crashed training: NaN fitness (negated, as the
                    // workflow negates accuracy) and NaN cost.
                    Objectives::new(vec![-f64::NAN, f64::NAN])
                } else {
                    Objectives::new(vec![g * g, (g - 2.0) * (g - 2.0)])
                }
            }
            fn random_genome(&mut self, rng: &mut dyn RngCore) -> f64 {
                rng.gen_range(-6.0..6.0) // roughly half the seeds fail
            }
            fn vary(&mut self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> f64 {
                (a + b) / 2.0 + rng.gen_range(-1.0..1.0)
            }
        }
        let cfg = NsgaConfig {
            population: 12,
            offspring: 12,
            generations: 8,
            seed: 11,
        };
        let result = Nsga2::new(cfg).run(&mut Flaky, |_| {});
        assert_eq!(result.all.len(), cfg.total_evaluations());
        let failed_total = result.all.iter().filter(|i| i.objectives.has_nan()).count();
        assert!(failed_total > 0, "test needs some failed evaluations");
        // Survivors: only failed if fewer viable candidates than slots.
        let viable_total = result.all.len() - failed_total;
        if viable_total >= cfg.population {
            for &s in &result.final_population {
                assert!(
                    !result.all[s].objectives.has_nan(),
                    "failed model survived selection over viable ones"
                );
            }
        }
        // The global Pareto front never contains a fully-NaN individual.
        for ind in result.pareto_front() {
            assert!(!ind.objectives.values().iter().all(|v| v.is_nan()));
        }
    }

    /// environmental_selection over an overflowing front with a NaN
    /// member: no panic, and the NaN member is cut first.
    #[test]
    fn selection_discards_nan_member_first() {
        let mk = |objs: Vec<f64>, id: u64| Individual {
            id,
            generation: 0,
            genome: 0.0f64,
            objectives: Objectives::new(objs),
        };
        // Mutually indifferent trade-off front plus one partially-NaN
        // member that is indifferent to all (cheapest FLOPs).
        let all = vec![
            mk(vec![0.0, 3.0], 0),
            mk(vec![1.0, 2.0], 1),
            mk(vec![2.0, 1.0], 2),
            mk(vec![f64::NAN, 0.5], 3),
        ];
        let pool: Vec<usize> = (0..4).collect();
        let survivors = environmental_selection(&all, &pool, 3);
        assert_eq!(survivors.len(), 3);
        assert!(
            !survivors.contains(&3),
            "NaN member outlived a viable one: {survivors:?}"
        );
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        let _ = Nsga2::new(NsgaConfig {
            population: 0,
            offspring: 4,
            generations: 2,
            seed: 0,
        });
    }
}
