//! # a4nn-nsga — generic NSGA-II multi-objective evolutionary engine
//!
//! From-scratch implementation of the NSGA-II algorithm (Deb et al., 2002)
//! that underlies NSGA-Net (Lu et al., 2019), the NAS the A4NN paper plugs
//! into its workflow. The engine is generic over the genome type and the
//! evaluation function, which is exactly what A4NN's composability story
//! requires: the workflow intercepts evaluation (to run the prediction
//! engine in situ) without touching selection or variation.
//!
//! Components:
//!
//! - [`objectives`] — objective vectors and Pareto dominance (minimization
//!   convention; accuracy is negated by callers that maximize it),
//! - [`sort`] — fast non-dominated sorting into Pareto fronts,
//! - [`crowding`] — crowding-distance assignment within a front,
//! - [`select`] — binary tournament selection on (rank, crowding),
//! - [`evolve`] — the generational loop: environmental selection of μ
//!   parents, variation into λ offspring, elitist truncation.
//!
//! ```
//! use a4nn_nsga::prelude::*;
//!
//! // Minimize the classic SCH problem: f1 = x², f2 = (x−2)².
//! struct Sch;
//! impl Problem for Sch {
//!     type Genome = f64;
//!     fn evaluate(&mut self, g: &f64, _ctx: &EvalContext) -> Objectives {
//!         Objectives::new(vec![g * g, (g - 2.0) * (g - 2.0)])
//!     }
//!     fn random_genome(&mut self, rng: &mut dyn rand::RngCore) -> f64 {
//!         use rand::Rng;
//!         rng.gen_range(-4.0..4.0)
//!     }
//!     fn vary(&mut self, a: &f64, b: &f64, rng: &mut dyn rand::RngCore) -> f64 {
//!         use rand::Rng;
//!         (a + b) / 2.0 + rng.gen_range(-0.2..0.2)
//!     }
//! }
//!
//! let cfg = NsgaConfig { population: 20, offspring: 20, generations: 20, seed: 1 };
//! let result = Nsga2::new(cfg).run(&mut Sch, |_| {});
//! let front = result.pareto_front();
//! assert!(!front.is_empty());
//! // All Pareto-optimal x lie in [0, 2].
//! for ind in front {
//!     assert!(ind.genome > -0.5 && ind.genome < 2.5);
//! }
//! ```
#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod crowding;
pub mod evolve;
pub mod objectives;
pub mod select;
pub mod sort;

pub use crowding::crowding_distance;
pub use evolve::{
    environmental_selection, EvalContext, Individual, Nsga2, NsgaConfig, Problem, RunResult,
};
pub use objectives::{cmp_objective, DimensionMismatch, Dominance, Objectives};
pub use select::{tournament_select, RankedIndividual};
pub use sort::{fast_non_dominated_sort, ranks_from_fronts};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::{
        crowding_distance, fast_non_dominated_sort, tournament_select, Dominance, EvalContext,
        Individual, Nsga2, NsgaConfig, Objectives, Problem, RunResult,
    };
}
