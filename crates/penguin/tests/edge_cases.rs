//! Edge-case hardening for the PENGUIN fitter and prediction engine.
//!
//! NAS populations produce pathological learning curves — networks that
//! never learn (constant accuracy), diverge (NaN/Inf losses), or die
//! after one epoch. The fault-tolerance layer depends on the engine
//! *never panicking* on such histories: a panic inside an engine
//! interaction is treated as an engine crash and degrades the whole
//! model to run-to-completion training.

use a4nn_penguin::{
    fit_curve, CurveFamily, EngineConfig, FitConfig, FitError, ParametricCurve, PredictionEngine,
};

fn epochs(n: usize) -> Vec<f64> {
    (1..=n).map(|e| e as f64).collect()
}

#[test]
fn constant_curves_fit_or_fail_cleanly_in_every_family() {
    // A network that never learns: zero-variance fitness history.
    for value in [0.0, 12.5, 100.0] {
        let xs = epochs(10);
        let ys = vec![value; 10];
        for family in CurveFamily::ALL {
            match fit_curve(&family, &xs, &ys, &FitConfig::default()) {
                Ok(fit) => {
                    assert!(
                        fit.params.iter().all(|p| p.is_finite()),
                        "{}: non-finite params for constant {value}",
                        family.name()
                    );
                    assert!(fit.sse.is_finite());
                    let extrapolated = family.eval(&fit.params, 25.0);
                    assert!(
                        extrapolated.is_finite(),
                        "{}: constant {value} extrapolates to {extrapolated}",
                        family.name()
                    );
                }
                Err(e) => assert_eq!(
                    e,
                    FitError::DidNotConverge,
                    "{}: unexpected error class for constant {value}",
                    family.name()
                ),
            }
        }
    }
}

#[test]
fn single_point_histories_are_rejected_not_fatal() {
    for family in CurveFamily::ALL {
        let err = fit_curve(&family, &[1.0], &[50.0], &FitConfig::default()).unwrap_err();
        assert_eq!(
            err,
            FitError::TooFewPoints {
                have: 1,
                need: family.n_params()
            },
            "{}",
            family.name()
        );
    }
    // Zero points likewise.
    let err = fit_curve(&CurveFamily::ExpBase, &[], &[], &FitConfig::default()).unwrap_err();
    assert!(matches!(err, FitError::TooFewPoints { have: 0, .. }));
}

#[test]
fn mismatched_series_are_rejected() {
    let err = fit_curve(
        &CurveFamily::Pow3,
        &[1.0, 2.0, 3.0],
        &[10.0, 20.0],
        &FitConfig::default(),
    )
    .unwrap_err();
    assert_eq!(err, FitError::LengthMismatch);
}

#[test]
fn nan_laden_histories_never_panic_the_fitter() {
    let xs = epochs(8);
    for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        // Fully poisoned series.
        let all_bad = vec![poison; 8];
        for family in CurveFamily::ALL {
            // Any Err is acceptable; Ok must at least carry finite params.
            if let Ok(fit) = fit_curve(&family, &xs, &all_bad, &FitConfig::default()) {
                assert!(
                    fit.params.iter().all(|p| p.is_finite()),
                    "{}: accepted non-finite params from poisoned data",
                    family.name()
                );
            }
        }
        // One poisoned observation amid a sane curve.
        let mut mixed: Vec<f64> = xs.iter().map(|x| 90.0 - 60.0 * 0.7f64.powf(*x)).collect();
        mixed[3] = poison;
        for family in CurveFamily::ALL {
            let _ = fit_curve(&family, &xs, &mixed, &FitConfig::default());
        }
    }
}

#[test]
fn engine_survives_non_finite_fitness_stream() {
    for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let mut verdict = None;
        for e in 1..=25u32 {
            let fitness = if e % 3 == 0 { poison } else { 80.0 };
            engine.observe(e, fitness);
            if let Some(v) = engine.step() {
                verdict = Some(v);
                break;
            }
        }
        // Converging is allowed only on a finite prediction; the common
        // outcome is simply running out the budget without converging.
        if let Some(v) = verdict {
            assert!(v.is_finite(), "engine converged on {v} with {poison} data");
        }
        let stats = engine.stats();
        assert!(stats.interactions >= 1);
        assert_eq!(
            stats.fits + stats.fit_failures,
            stats.interactions,
            "every interaction is either a fit or a counted failure"
        );
    }
}

#[test]
fn engine_handles_zero_variance_training() {
    // Constant 0% accuracy — a dead network. The engine must either
    // predict the constant (and may legitimately terminate early) or
    // decline to predict; it must not panic or emit garbage.
    let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
    for e in 1..=25u32 {
        engine.observe(e, 0.0);
        if let Some(v) = engine.step() {
            assert!(v.is_finite());
            assert!(v.abs() < 5.0, "constant-zero curve predicted {v}");
            break;
        }
    }
    for p in engine.predictions().iter().flatten() {
        assert!(p.is_finite(), "prediction history holds {p}");
    }
}

#[test]
fn engine_step_before_observe_is_a_counted_failure() {
    let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
    assert_eq!(engine.step(), None, "no data, no prediction");
    assert_eq!(engine.stats().fit_failures, 1);
    // A single observation is still below C_min.
    engine.observe(1, 42.0);
    assert_eq!(engine.step(), None);
    assert_eq!(engine.stats().fit_failures, 2);
    assert_eq!(engine.predictions().len(), 2);
}
