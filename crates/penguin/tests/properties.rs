//! Property-based tests of the prediction engine.

use a4nn_penguin::{
    fit_curve, ConvergenceRule, CurveFamily, EngineConfig, FitConfig, ParametricCurve,
    PredictionAnalyzer, PredictionEngine, PredictionOutcome,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine never trains past the budget and its final fitness is
    /// finite for any bounded curve.
    #[test]
    fn engine_respects_budget(
        a in 55.0f64..99.0,
        rho in 0.2f64..0.97,
        scale in 5.0f64..60.0,
        budget in 1u32..40,
    ) {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let mut calls = 0u32;
        let outcome = engine.run_training_loop(budget, |e| {
            calls += 1;
            (a - scale * rho.powi(e as i32)).clamp(0.0, 100.0)
        });
        prop_assert!(calls <= budget);
        if budget > 0 {
            prop_assert!(outcome.fitness().is_finite());
        }
        if let PredictionOutcome::Converged { epoch, fitness } = outcome {
            prop_assert!(epoch <= budget);
            // Converged predictions respect the analyzer's bounds.
            prop_assert!((0.0..=100.0).contains(&fitness));
        }
    }

    /// Exact curves are recovered: prediction at e_pred within tolerance.
    #[test]
    fn exact_curves_predict_accurately(
        a in 60.0f64..99.0,
        b in 1.1f64..2.5,
        c in 2.0f64..10.0,
    ) {
        let xs: Vec<f64> = (1..=12).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a - b.powf(c - x)).collect();
        // Skip degenerate curves that start far below zero.
        prop_assume!(ys[0] > -50.0);
        let fit = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default());
        prop_assume!(fit.is_ok());
        let pred = CurveFamily::ExpBase.eval(&fit.unwrap().params, 25.0);
        let truth = a - b.powf(c - 25.0);
        prop_assert!((pred - truth).abs() < 1.0, "pred {pred} vs truth {truth}");
    }

    /// Analyzer: scaling the tolerance up can only preserve or create
    /// convergence, never destroy it (monotonicity in r).
    #[test]
    fn analyzer_monotone_in_tolerance(
        values in proptest::collection::vec(0.0f64..100.0, 3..8),
        r_small in 0.01f64..1.0,
        extra in 0.0f64..5.0,
    ) {
        let preds: Vec<Option<f64>> = values.into_iter().map(Some).collect();
        let tight = PredictionAnalyzer {
            tolerance: r_small,
            ..PredictionAnalyzer::paper_defaults()
        };
        let loose = PredictionAnalyzer {
            tolerance: r_small + extra,
            ..PredictionAnalyzer::paper_defaults()
        };
        if tight.converged(&preds) {
            prop_assert!(loose.converged(&preds));
        }
    }

    /// Analyzer: all three rules agree on constant windows and all reject
    /// out-of-bounds windows.
    #[test]
    fn rules_agree_on_extremes(v in 0.0f64..100.0, oob in 100.01f64..1e4) {
        for rule in [ConvergenceRule::Range, ConvergenceRule::Variance, ConvergenceRule::StdDev] {
            let a = PredictionAnalyzer { rule, ..PredictionAnalyzer::paper_defaults() };
            prop_assert!(a.converged(&[Some(v), Some(v), Some(v)]));
            prop_assert!(!a.converged(&[Some(oob), Some(oob), Some(oob)]));
        }
    }

    /// Fitting is invariant to observation order (least squares is a sum).
    #[test]
    fn fit_order_invariant(seed in any::<u64>()) {
        use rand::{seq::SliceRandom, SeedableRng};
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 90.0 - 45.0 * 0.7f64.powf(x)).collect();
        let fit_a = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let xs2: Vec<f64> = order.iter().map(|&i| xs[i]).collect();
        let ys2: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        let fit_b = fit_curve(&CurveFamily::ExpBase, &xs2, &ys2, &FitConfig::default()).unwrap();
        let pa = CurveFamily::ExpBase.eval(&fit_a.params, 25.0);
        let pb = CurveFamily::ExpBase.eval(&fit_b.params, 25.0);
        prop_assert!((pa - pb).abs() < 0.05, "{pa} vs {pb}");
    }
}
