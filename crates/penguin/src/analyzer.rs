//! The prediction analyzer (§2.1.2): decides whether the sequence of
//! fitness predictions has converged to a stable, in-bounds value.
//!
//! The analyzer first checks that the most recent `N` predictions are valid
//! fitness values (the engine uses validation accuracy, so predictions must
//! lie in `[0, 100]`); any out-of-bounds prediction vetoes convergence.
//! It then checks stability under a configurable [`ConvergenceRule`] with
//! tolerance `r` (the paper uses `N = 3`, `r = 0.5`).

use serde::{Deserialize, Serialize};

/// How the spread of the last `N` predictions is compared against the
/// tolerance `r`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceRule {
    /// `max − min ≤ r` over the window — the strictest reading of
    /// "predictions within a variance threshold" and our default.
    #[default]
    Range,
    /// Sample variance of the window `≤ r`.
    Variance,
    /// Sample standard deviation of the window `≤ r`.
    StdDev,
}

/// Stateless convergence test over a prediction history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionAnalyzer {
    /// Number of trailing predictions that must agree (`N`, paper: 3).
    pub window: usize,
    /// Allowed spread `r` (paper: 0.5).
    pub tolerance: f64,
    /// Spread measure.
    pub rule: ConvergenceRule,
    /// Inclusive fitness bounds; validation accuracy ⇒ `[0, 100]`.
    pub bounds: (f64, f64),
}

impl Default for PredictionAnalyzer {
    fn default() -> Self {
        PredictionAnalyzer {
            window: 3,
            tolerance: 0.5,
            rule: ConvergenceRule::Range,
            bounds: (0.0, 100.0),
        }
    }
}

impl PredictionAnalyzer {
    /// Create an analyzer with the paper's settings (`N = 3`, `r = 0.5`,
    /// bounds `[0, 100]`, range rule).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Whether a single prediction is a valid fitness value.
    #[inline]
    pub fn in_bounds(&self, prediction: f64) -> bool {
        prediction.is_finite() && prediction >= self.bounds.0 && prediction <= self.bounds.1
    }

    /// Decide convergence over the full prediction history. Only the last
    /// [`window`](Self::window) entries are inspected; `None` entries
    /// (epochs where the fit failed or too few points were available)
    /// inside the window veto convergence, as do out-of-bounds values.
    pub fn converged(&self, predictions: &[Option<f64>]) -> bool {
        if self.window == 0 || predictions.len() < self.window {
            return false;
        }
        let tail = &predictions[predictions.len() - self.window..];
        let mut values = Vec::with_capacity(self.window);
        for p in tail {
            match p {
                Some(v) if self.in_bounds(*v) => values.push(*v),
                _ => return false,
            }
        }
        self.spread_ok(&values)
    }

    fn spread_ok(&self, values: &[f64]) -> bool {
        match self.rule {
            ConvergenceRule::Range => {
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                max - min <= self.tolerance
            }
            ConvergenceRule::Variance => self.sample_variance(values) <= self.tolerance,
            ConvergenceRule::StdDev => self.sample_variance(values).sqrt() <= self.tolerance,
        }
    }

    fn sample_variance(&self, values: &[f64]) -> f64 {
        let n = values.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean = values.iter().sum::<f64>() / n;
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(vals: &[f64]) -> Vec<Option<f64>> {
        vals.iter().map(|&v| Some(v)).collect()
    }

    #[test]
    fn converges_when_last_n_within_range() {
        let a = PredictionAnalyzer::paper_defaults();
        assert!(a.converged(&some(&[40.0, 80.0, 95.0, 95.2, 95.4])));
    }

    #[test]
    fn does_not_converge_when_spread_exceeds_r() {
        let a = PredictionAnalyzer::paper_defaults();
        assert!(!a.converged(&some(&[95.0, 95.2, 95.8])));
    }

    #[test]
    fn boundary_spread_exactly_r_converges() {
        let a = PredictionAnalyzer::paper_defaults();
        assert!(a.converged(&some(&[95.0, 95.25, 95.5])));
    }

    #[test]
    fn out_of_bounds_prediction_vetoes() {
        let a = PredictionAnalyzer::paper_defaults();
        // 104 > 100: invalid fitness, per §2.1.2.
        assert!(!a.converged(&some(&[104.0, 104.1, 104.2])));
        assert!(!a.converged(&some(&[-1.0, -1.0, -1.0])));
    }

    #[test]
    fn nan_and_missing_predictions_veto() {
        let a = PredictionAnalyzer::paper_defaults();
        assert!(!a.converged(&[Some(95.0), None, Some(95.1)]));
        assert!(!a.converged(&some(&[95.0, f64::NAN, 95.1])));
    }

    #[test]
    fn too_short_history_does_not_converge() {
        let a = PredictionAnalyzer::paper_defaults();
        assert!(!a.converged(&some(&[95.0, 95.1])));
        assert!(!a.converged(&[]));
    }

    #[test]
    fn only_the_trailing_window_matters() {
        let a = PredictionAnalyzer::paper_defaults();
        // Early garbage followed by a stable tail converges.
        assert!(a.converged(&some(&[10.0, 200.0, 95.0, 95.1, 95.2])));
    }

    #[test]
    fn variance_rule() {
        let a = PredictionAnalyzer {
            rule: ConvergenceRule::Variance,
            tolerance: 0.05,
            ..Default::default()
        };
        assert!(a.converged(&some(&[95.0, 95.1, 95.2])));
        assert!(!a.converged(&some(&[94.0, 95.0, 96.0])));
    }

    #[test]
    fn stddev_rule() {
        let a = PredictionAnalyzer {
            rule: ConvergenceRule::StdDev,
            tolerance: 0.2,
            ..Default::default()
        };
        assert!(a.converged(&some(&[95.0, 95.1, 95.2])));
        assert!(!a.converged(&some(&[94.0, 95.0, 96.0])));
    }

    #[test]
    fn zero_window_never_converges() {
        let a = PredictionAnalyzer {
            window: 0,
            ..Default::default()
        };
        assert!(!a.converged(&some(&[95.0, 95.0, 95.0])));
    }

    #[test]
    fn custom_bounds_apply() {
        // Loss-style fitness in [0, 1].
        let a = PredictionAnalyzer {
            bounds: (0.0, 1.0),
            tolerance: 0.01,
            ..Default::default()
        };
        assert!(a.converged(&some(&[0.90, 0.904, 0.908])));
        assert!(!a.converged(&some(&[1.5, 1.5, 1.5])));
    }
}
