//! # a4nn-penguin — decoupled parametric fitness-prediction engine
//!
//! This crate implements the *parametric prediction engine* of the A4NN
//! workflow (Channing et al., ICPP 2023, §2.1), a self-contained,
//! externally-controllable engine in the spirit of PENGUIN (Rorabaugh et
//! al., TPDS 2022). Given the partial learning curve of a neural network
//! (validation fitness per epoch), the engine:
//!
//! 1. fits a **parametric model** of the fitness curve — by default the
//!    paper's concave function `F(x) = a − b^(c−x)` — with nonlinear least
//!    squares ([`fit`]), and
//! 2. extrapolates the fitness the network is expected to attain at a
//!    target epoch `e_pred`, then decides via the **prediction analyzer**
//!    ([`analyzer`]) whether the sequence of predictions has converged to a
//!    stable, in-bounds value, in which case training can be terminated
//!    early.
//!
//! The engine is deliberately decoupled from any particular NAS: it
//! consumes only `(epoch, fitness)` pairs and produces predictions, which
//! is what makes the A4NN workflow *composable*.
//!
//! ## Quick example
//!
//! ```
//! use a4nn_penguin::{EngineConfig, PredictionEngine};
//!
//! let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
//! // Feed a well-behaved concave learning curve.
//! let mut outcome = None;
//! for e in 1..=25u32 {
//!     let fitness = 95.0 - 60.0 * 0.6f64.powi(e as i32);
//!     engine.observe(e, fitness);
//!     if let Some(p) = engine.step() {
//!         outcome = Some((e, p));
//!         break;
//!     }
//! }
//! let (terminated_at, predicted) = outcome.expect("curve should converge");
//! assert!(terminated_at < 25);
//! assert!((predicted - 95.0).abs() < 2.0);
//! ```
#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod analyzer;
pub mod curve;
pub mod engine;
pub mod fit;

pub use analyzer::{ConvergenceRule, PredictionAnalyzer};
pub use curve::{CurveFamily, ParametricCurve};
pub use engine::{EngineConfig, EngineStats, PredictionEngine, PredictionOutcome};
pub use fit::{fit_curve, FitConfig, FitError, FitResult};
