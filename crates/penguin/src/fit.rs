//! Nonlinear least-squares fitting of parametric learning curves.
//!
//! The paper attains curve parameters "using the least squares regression
//! of the fitting" (§2.1.1). We implement a dense Levenberg–Marquardt
//! solver from scratch: the parameter counts are tiny (3–4), so the normal
//! equations are solved directly with a small Gaussian-elimination routine.
//! Multiple data-driven initial guesses are tried and the best (lowest
//! residual) fit wins, which makes the fitter robust against the noisy,
//! sometimes pathological curves that NAS candidates produce.

use crate::curve::ParametricCurve;

/// Configuration for the Levenberg–Marquardt fitter.
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Maximum LM iterations per starting point.
    pub max_iters: usize,
    /// Initial damping factor λ.
    pub lambda_init: f64,
    /// Multiplicative update applied to λ on rejected / accepted steps.
    pub lambda_factor: f64,
    /// Convergence threshold on the relative decrease of the cost.
    pub tol: f64,
    /// Optional recency weighting: observation `i` of `n` gets weight
    /// `decay^(n−1−i)` with `decay ∈ (0, 1]`, so the newest epochs
    /// dominate the fit. `None` (or 1.0) weighs all epochs equally — the
    /// paper's plain least squares.
    pub recency_decay: Option<f64>,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            max_iters: 60,
            lambda_init: 1e-2,
            lambda_factor: 8.0,
            tol: 1e-10,
            recency_decay: None,
        }
    }
}

impl FitConfig {
    /// Per-observation weights implied by the configuration.
    fn weights(&self, n: usize) -> Option<Vec<f64>> {
        let decay = self.recency_decay?;
        assert!(
            decay > 0.0 && decay <= 1.0,
            "recency decay must be in (0, 1], got {decay}"
        );
        if (decay - 1.0).abs() < f64::EPSILON {
            return None;
        }
        Some((0..n).map(|i| decay.powi((n - 1 - i) as i32)).collect())
    }
}

/// A successful curve fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Fitted parameter vector θ.
    pub params: Vec<f64>,
    /// Sum of squared residuals at θ.
    pub sse: f64,
    /// Number of LM iterations consumed by the winning start.
    pub iterations: usize,
}

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than parameters.
    TooFewPoints { have: usize, need: usize },
    /// Mismatched `xs`/`ys` lengths.
    LengthMismatch,
    /// Every starting point diverged or produced invalid parameters.
    DidNotConverge,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints { have, need } => {
                write!(f, "too few points for fit: have {have}, need {need}")
            }
            FitError::LengthMismatch => write!(f, "xs and ys have different lengths"),
            FitError::DidNotConverge => write!(f, "no starting point converged"),
        }
    }
}

impl std::error::Error for FitError {}

/// Solve the dense linear system `A x = b` in place (A is `n×n`,
/// row-major). Returns `None` for singular systems. Partial pivoting keeps
/// the tiny systems we solve here stable.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

fn sse_of(
    curve: &dyn ParametricCurve,
    params: &[f64],
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
) -> f64 {
    xs.iter()
        .zip(ys)
        .enumerate()
        .map(|(i, (&x, &y))| {
            let r = y - curve.eval(params, x);
            let w = weights.map_or(1.0, |w| w[i]);
            w * r * r
        })
        .sum()
}

/// One Levenberg–Marquardt descent from `start`. Returns the refined
/// parameters and their SSE, or `None` if the descent left the valid
/// parameter domain immediately.
fn lm_from_start(
    curve: &dyn ParametricCurve,
    xs: &[f64],
    ys: &[f64],
    start: &[f64],
    cfg: &FitConfig,
) -> Option<(Vec<f64>, f64, usize)> {
    let n_params = curve.n_params();
    let n_points = xs.len();
    if !curve.params_valid(start) {
        return None;
    }
    let weights = cfg.weights(xs.len());
    let mut params = start.to_vec();
    let mut cost = sse_of(curve, &params, xs, ys, weights.as_deref());
    if !cost.is_finite() {
        return None;
    }
    let mut lambda = cfg.lambda_init;
    let mut grad_row = vec![0.0; n_params];
    let mut iterations = 0;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // Build JᵀJ and Jᵀr.
        let mut jtj = vec![0.0; n_params * n_params];
        let mut jtr = vec![0.0; n_params];
        for i in 0..n_points {
            let x = xs[i];
            let w = weights.as_deref().map_or(1.0, |w| w[i]);
            let r = ys[i] - curve.eval(&params, x);
            curve.grad(&params, x, &mut grad_row);
            if grad_row.iter().any(|g| !g.is_finite()) || !r.is_finite() {
                return None;
            }
            for a in 0..n_params {
                jtr[a] += w * grad_row[a] * r;
                for b in a..n_params {
                    jtj[a * n_params + b] += w * grad_row[a] * grad_row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..n_params {
            for b in 0..a {
                jtj[a * n_params + b] = jtj[b * n_params + a];
            }
        }

        // Try damped steps, increasing λ until one is accepted.
        let mut accepted = false;
        for _ in 0..12 {
            let mut a = jtj.clone();
            for d in 0..n_params {
                a[d * n_params + d] += lambda * (1.0 + jtj[d * n_params + d]);
            }
            let mut b = jtr.clone();
            if let Some(step) = solve_dense(&mut a, &mut b, n_params) {
                let candidate: Vec<f64> = params.iter().zip(&step).map(|(p, s)| p + s).collect();
                if curve.params_valid(&candidate) {
                    let c = sse_of(curve, &candidate, xs, ys, weights.as_deref());
                    if c.is_finite() && c < cost {
                        let rel = (cost - c) / cost.max(1e-300);
                        params = candidate;
                        cost = c;
                        lambda = (lambda / cfg.lambda_factor).max(1e-12);
                        accepted = true;
                        if rel < cfg.tol {
                            return Some((params, cost, iterations));
                        }
                        break;
                    }
                }
            }
            lambda *= cfg.lambda_factor;
            if lambda > 1e12 {
                break;
            }
        }
        if !accepted {
            break;
        }
    }
    Some((params, cost, iterations))
}

/// Fit `curve` to the observed learning curve `(xs, ys)` with
/// Levenberg–Marquardt, trying every data-driven initial guess and keeping
/// the best fit.
///
/// # Errors
///
/// Returns [`FitError::TooFewPoints`] when there are fewer observations
/// than parameters, and [`FitError::DidNotConverge`] when every starting
/// point diverges (e.g. a constant-zero curve from a network that never
/// learns can still be fitted, but NaN-laden data cannot).
pub fn fit_curve(
    curve: &dyn ParametricCurve,
    xs: &[f64],
    ys: &[f64],
    cfg: &FitConfig,
) -> Result<FitResult, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < curve.n_params() {
        return Err(FitError::TooFewPoints {
            have: xs.len(),
            need: curve.n_params(),
        });
    }
    let mut best: Option<(Vec<f64>, f64, usize)> = None;
    for start in curve.initial_guesses(xs, ys) {
        if let Some((p, c, it)) = lm_from_start(curve, xs, ys, &start, cfg) {
            let better = best.as_ref().is_none_or(|(_, bc, _)| c < *bc);
            if better {
                best = Some((p, c, it));
            }
        }
    }
    best.map(|(params, sse, iterations)| FitResult {
        params,
        sse,
        iterations,
    })
    .ok_or(FitError::DidNotConverge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveFamily;

    fn synth(a: f64, b: f64, c: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (1..=n).map(|e| e as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a - b.powf(c - x)).collect();
        (xs, ys)
    }

    #[test]
    fn recovers_exact_exp_base_curve() {
        let (xs, ys) = synth(96.0, 1.6, 8.0, 10);
        let fit = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        // Prediction at epoch 25 must match the generating curve closely.
        let truth = 96.0 - 1.6f64.powf(8.0 - 25.0);
        let pred = CurveFamily::ExpBase.eval(&fit.params, 25.0);
        assert!((pred - truth).abs() < 0.1, "pred {pred} vs {truth}");
        assert!(fit.sse < 1e-6, "sse {}", fit.sse);
    }

    #[test]
    fn recovers_noisy_curve_asymptote() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (xs, mut ys) = synth(93.0, 1.8, 6.0, 12);
        for y in &mut ys {
            *y += rng.gen_range(-0.4..0.4);
        }
        let fit = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        let pred = CurveFamily::ExpBase.eval(&fit.params, 25.0);
        assert!((pred - 93.0).abs() < 1.5, "pred {pred}");
    }

    #[test]
    fn too_few_points_is_an_error() {
        let err = fit_curve(
            &CurveFamily::ExpBase,
            &[1.0, 2.0],
            &[10.0, 20.0],
            &FitConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::TooFewPoints { have: 2, need: 3 });
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let err = fit_curve(
            &CurveFamily::ExpBase,
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0],
            &FitConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::LengthMismatch);
    }

    #[test]
    fn nan_data_does_not_converge() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [f64::NAN, 1.0, 2.0, 3.0];
        let err = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap_err();
        assert_eq!(err, FitError::DidNotConverge);
    }

    #[test]
    fn fits_flat_non_learner_curve() {
        // ~50% accuracy forever (binary non-learner): the fit should track
        // the flat level rather than blow up.
        let xs: Vec<f64> = (1..=8).map(|e| e as f64).collect();
        let ys = vec![50.1, 49.9, 50.0, 50.2, 49.8, 50.0, 50.1, 49.9];
        let fit = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        let pred = CurveFamily::ExpBase.eval(&fit.params, 25.0);
        assert!((pred - 50.0).abs() < 3.0, "pred {pred}");
    }

    #[test]
    fn solve_dense_solves_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![3.0, 5.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn recency_weighting_tracks_a_regime_change() {
        // First half of the curve saturates at 70, second half at 95: the
        // weighted fit must predict closer to the recent regime than the
        // unweighted fit.
        let xs: Vec<f64> = (1..=16).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x <= 7.0 {
                    70.0 - 40.0 * 0.5f64.powf(x)
                } else {
                    95.0 - 30.0 * 0.4f64.powf(x - 7.0)
                }
            })
            .collect();
        let plain = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        let weighted = fit_curve(
            &CurveFamily::ExpBase,
            &xs,
            &ys,
            &FitConfig {
                recency_decay: Some(0.6),
                ..FitConfig::default()
            },
        )
        .unwrap();
        let pred_plain = CurveFamily::ExpBase.eval(&plain.params, 25.0);
        let pred_weighted = CurveFamily::ExpBase.eval(&weighted.params, 25.0);
        assert!(
            (pred_weighted - 95.0).abs() < (pred_plain - 95.0).abs(),
            "weighted {pred_weighted} should beat plain {pred_plain} on the new regime"
        );
    }

    #[test]
    fn decay_of_one_matches_unweighted() {
        let (xs, ys) = synth(94.0, 1.7, 7.0, 10);
        let plain = fit_curve(&CurveFamily::ExpBase, &xs, &ys, &FitConfig::default()).unwrap();
        let unit = fit_curve(
            &CurveFamily::ExpBase,
            &xs,
            &ys,
            &FitConfig {
                recency_decay: Some(1.0),
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert!((plain.sse - unit.sse).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "recency decay")]
    fn invalid_decay_panics() {
        let (xs, ys) = synth(94.0, 1.7, 7.0, 10);
        let _ = fit_curve(
            &CurveFamily::ExpBase,
            &xs,
            &ys,
            &FitConfig {
                recency_decay: Some(0.0),
                ..FitConfig::default()
            },
        );
    }

    #[test]
    fn all_families_fit_well_behaved_curve() {
        let (xs, ys) = synth(95.0, 1.5, 7.0, 15);
        for family in CurveFamily::ALL {
            let fit = fit_curve(&family, &xs, &ys, &FitConfig::default());
            assert!(fit.is_ok(), "{} failed: {:?}", family.name(), fit.err());
            let pred = family.eval(&fit.unwrap().params, 25.0);
            // Families differ in extrapolation quality; just require sanity.
            assert!(pred.is_finite(), "{}", family.name());
        }
    }
}
