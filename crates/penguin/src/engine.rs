//! The prediction engine proper: the iterative *parametric modeling* →
//! *prediction analysis* loop of §2.1, matching Algorithm 1's
//! `pred_eng(e_pred, F, C_min, r)` interface.

use crate::analyzer::PredictionAnalyzer;
use crate::curve::{CurveFamily, ParametricCurve};
use crate::fit::{fit_curve, FitConfig};
use serde::{Deserialize, Serialize};

/// User-facing engine configuration (paper Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Parametric function `F` used to model fitness (Table 1 row 1).
    pub family: CurveFamily,
    /// Minimum number of fitness points before making a prediction
    /// (`C_min`, paper: 3).
    pub c_min: usize,
    /// Epoch for which final fitness is predicted (`e_pred`, paper: 25).
    pub e_pred: u32,
    /// Number of trailing predictions considered for convergence
    /// (`N`, paper: 3).
    pub n_converge: usize,
    /// Allowed spread of those predictions (`r`, paper: 0.5).
    pub r: f64,
    /// Inclusive fitness bounds (validation accuracy ⇒ `[0, 100]`).
    pub bounds: (f64, f64),
    /// Least-squares solver settings.
    #[serde(skip)]
    pub fit: FitConfig,
}

impl EngineConfig {
    /// The exact configuration of the paper's evaluation (Table 1):
    /// `F(x) = a − b^(c−x)`, `C_min = 3`, `e_pred = 25`, `N = 3`, `r = 0.5`.
    pub fn paper_defaults() -> Self {
        EngineConfig {
            family: CurveFamily::ExpBase,
            c_min: 3,
            e_pred: 25,
            n_converge: 3,
            r: 0.5,
            bounds: (0.0, 100.0),
            fit: FitConfig::default(),
        }
    }

    fn analyzer(&self) -> PredictionAnalyzer {
        PredictionAnalyzer {
            window: self.n_converge,
            tolerance: self.r,
            bounds: self.bounds,
            ..Default::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Result of a completed engine run over one network's training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictionOutcome {
    /// Predictions converged at `epoch`; `fitness` is the engine's final
    /// prediction `P[-1]`, which the NAS treats as the network's fitness.
    Converged { epoch: u32, fitness: f64 },
    /// Training ran to the epoch budget; `fitness` is the last *measured*
    /// validation fitness `h_e` (Algorithm 1, line 20).
    Exhausted { fitness: f64 },
}

impl PredictionOutcome {
    /// The fitness value the NAS should use for selection.
    pub fn fitness(&self) -> f64 {
        match self {
            PredictionOutcome::Converged { fitness, .. } => *fitness,
            PredictionOutcome::Exhausted { fitness } => *fitness,
        }
    }

    /// Whether training was terminated early.
    pub fn converged(&self) -> bool {
        matches!(self, PredictionOutcome::Converged { .. })
    }
}

/// Aggregate counters for overhead accounting (§4.3.1 reports ~28 ms per
/// engine interaction and ~52 s added per 100-model test).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of `observe` + `step` interactions performed.
    pub interactions: u64,
    /// Number of successful curve fits.
    pub fits: u64,
    /// Number of failed fits (too few points or divergence).
    pub fit_failures: u64,
    /// Total wall time spent inside the engine, in seconds.
    pub total_seconds: f64,
}

impl EngineStats {
    /// Mean seconds per engine interaction.
    pub fn mean_interaction_seconds(&self) -> f64 {
        if self.interactions == 0 {
            0.0
        } else {
            self.total_seconds / self.interactions as f64
        }
    }
}

/// The in-situ prediction engine attached to one network's training loop.
///
/// Mirrors Algorithm 1: after each training epoch, call
/// [`observe`](Self::observe) with the measured validation fitness, then
/// [`step`](Self::step); a `Some(prediction)` return means the analyzer
/// converged and training should be terminated with that predicted final
/// fitness.
#[derive(Debug, Clone)]
pub struct PredictionEngine {
    config: EngineConfig,
    analyzer: PredictionAnalyzer,
    /// Fitness history `H`: (epoch, measured fitness).
    history: Vec<(f64, f64)>,
    /// Prediction history `P`: one entry per epoch observed after `C_min`.
    predictions: Vec<Option<f64>>,
    stats: EngineStats,
}

impl PredictionEngine {
    /// Build an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        let analyzer = config.analyzer();
        PredictionEngine {
            config,
            analyzer,
            history: Vec::with_capacity(32),
            predictions: Vec::with_capacity(32),
            stats: EngineStats::default(),
        }
    }

    /// Append one measured `(epoch, fitness)` point to the fitness history
    /// `H`.
    pub fn observe(&mut self, epoch: u32, fitness: f64) {
        self.history.push((f64::from(epoch), fitness));
    }

    /// Run one iteration of the modeling → analysis loop:
    /// fit the parametric curve to `H`, extrapolate fitness at `e_pred`,
    /// append to `P`, and test convergence. Returns the final converged
    /// prediction, or `None` if training should continue.
    pub fn step(&mut self) -> Option<f64> {
        let t0 = std::time::Instant::now();
        let prediction = self.predict_once();
        self.predictions.push(prediction);
        self.stats.interactions += 1;
        let converged = self.analyzer.converged(&self.predictions);
        self.stats.total_seconds += t0.elapsed().as_secs_f64();
        if converged {
            // P[-1] — guaranteed Some by the analyzer.
            self.predictions.last().copied().flatten()
        } else {
            None
        }
    }

    fn predict_once(&mut self) -> Option<f64> {
        if self.history.len() < self.config.c_min.max(self.config.family.n_params()) {
            self.stats.fit_failures += 1;
            return None;
        }
        let xs: Vec<f64> = self.history.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = self.history.iter().map(|(_, y)| *y).collect();
        match fit_curve(&self.config.family, &xs, &ys, &self.config.fit) {
            Ok(fit) => {
                self.stats.fits += 1;
                Some(
                    self.config
                        .family
                        .eval(&fit.params, f64::from(self.config.e_pred)),
                )
            }
            Err(_) => {
                self.stats.fit_failures += 1;
                None
            }
        }
    }

    /// The fitness history `H` accumulated so far.
    pub fn history(&self) -> &[(f64, f64)] {
        &self.history
    }

    /// The prediction history `P` (one entry per `step`).
    pub fn predictions(&self) -> &[Option<f64>] {
        &self.predictions
    }

    /// Overhead counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Reset history and predictions, keeping configuration and stats.
    /// Used when the same engine object is reused across networks.
    pub fn reset(&mut self) {
        self.history.clear();
        self.predictions.clear();
    }

    /// Drive a complete training loop (Algorithm 1) over a closure that
    /// trains one epoch and returns the measured validation fitness.
    ///
    /// `train_epoch(e)` is called for `e = 1..=max_epochs`; the loop breaks
    /// as soon as the analyzer converges.
    pub fn run_training_loop<F>(&mut self, max_epochs: u32, mut train_epoch: F) -> PredictionOutcome
    where
        F: FnMut(u32) -> f64,
    {
        let mut last_measured = f64::NAN;
        for e in 1..=max_epochs {
            last_measured = train_epoch(e);
            self.observe(e, last_measured);
            if let Some(p) = self.step() {
                return PredictionOutcome::Converged {
                    epoch: e,
                    fitness: p,
                };
            }
        }
        PredictionOutcome::Exhausted {
            fitness: last_measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(a: f64, rho: f64, scale: f64) -> impl Fn(u32) -> f64 {
        move |e: u32| a - scale * rho.powi(e as i32)
    }

    #[test]
    fn well_behaved_curve_terminates_early() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let f = curve(96.0, 0.65, 55.0);
        let outcome = engine.run_training_loop(25, &f);
        match outcome {
            PredictionOutcome::Converged { epoch, fitness } => {
                assert!(epoch < 25, "should save epochs, got {epoch}");
                assert!((fitness - 96.0).abs() < 1.5, "fitness {fitness}");
            }
            PredictionOutcome::Exhausted { .. } => panic!("should converge"),
        }
    }

    #[test]
    fn prediction_matches_final_training_within_tolerance() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let f = curve(92.0, 0.7, 40.0);
        let outcome = engine.run_training_loop(25, &f);
        let full = f(25);
        assert!((outcome.fitness() - full).abs() < 2.0);
    }

    #[test]
    fn erratic_curve_trains_to_budget() {
        // A convex, accelerating curve keeps dragging the fitted asymptote
        // upward, so the prediction window never stabilizes within r.
        let f = |e: u32| 0.15 * f64::from(e) * f64::from(e);
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let outcome = engine.run_training_loop(25, &f);
        assert!(!outcome.converged());
        match outcome {
            PredictionOutcome::Exhausted { fitness } => {
                // h_e of the final epoch.
                assert!((fitness - f(25)).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn exhausted_returns_last_measured_fitness() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        // Linearly increasing fitness: predictions keep moving up, so the
        // analyzer should not converge within 10 epochs with tight r.
        let outcome = engine.run_training_loop(10, |e| f64::from(e) * 3.0);
        if let PredictionOutcome::Exhausted { fitness } = outcome {
            assert!((fitness - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_prediction_before_c_min_points() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        engine.observe(1, 30.0);
        assert!(engine.step().is_none());
        engine.observe(2, 40.0);
        assert!(engine.step().is_none());
        // First prediction possible only at C_min = 3 points, and
        // convergence needs N = 3 predictions, so earliest stop is epoch 5.
        assert_eq!(engine.predictions().len(), 2);
        assert!(engine.predictions().iter().all(Option::is_none));
    }

    #[test]
    fn earliest_possible_termination_epoch_is_cmin_plus_n_minus_1() {
        let cfg = EngineConfig::paper_defaults();
        let mut engine = PredictionEngine::new(cfg);
        // Perfectly flat-converging curve terminates as early as possible.
        let f = curve(95.0, 0.2, 60.0);
        let outcome = engine.run_training_loop(25, &f);
        match outcome {
            PredictionOutcome::Converged { epoch, .. } => {
                assert!(epoch >= 5, "needs C_min + N − 1 = 5 epochs, got {epoch}");
                assert!(epoch <= 8, "fast curve should stop quickly, got {epoch}");
            }
            _ => panic!("must converge"),
        }
    }

    #[test]
    fn stats_count_interactions() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let f = curve(96.0, 0.65, 55.0);
        let outcome = engine.run_training_loop(25, &f);
        let stats = engine.stats();
        let epochs = match outcome {
            PredictionOutcome::Converged { epoch, .. } => epoch,
            _ => 25,
        };
        assert_eq!(stats.interactions, u64::from(epochs));
        assert!(stats.fits >= 3);
        assert!(stats.total_seconds >= 0.0);
    }

    #[test]
    fn reset_clears_histories() {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let f = curve(96.0, 0.65, 55.0);
        let _ = engine.run_training_loop(25, &f);
        assert!(!engine.history().is_empty());
        engine.reset();
        assert!(engine.history().is_empty());
        assert!(engine.predictions().is_empty());
    }

    #[test]
    fn fig2_style_trace_converges_midtraining() {
        // Reproduce the Figure 2 situation: prediction of fitness@25
        // converging around epoch ~12 for a moderately fast learner.
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let f = |e: u32| 90.0 - 52.0 * 0.8f64.powi(e as i32);
        let outcome = engine.run_training_loop(25, &f);
        match outcome {
            PredictionOutcome::Converged { epoch, fitness } => {
                assert!((6..=18).contains(&epoch), "epoch {epoch}");
                assert!((fitness - f(25)).abs() < 2.0);
            }
            _ => panic!("fig2-style curve must converge"),
        }
    }
}
