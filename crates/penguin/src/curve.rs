//! Parametric curve families used to model NN fitness learning curves.
//!
//! The paper's engine uses the concave function `F(x) = a − b^(c−x)`
//! ([`CurveFamily::ExpBase`]). The conclusions ask *"Which parametric
//! functions are best able to predict neural architecture fitness?"* — to
//! support that ablation this module ships several additional families from
//! the learning-curve literature (Domhan et al., IJCAI 2015; Viering &
//! Loog, 2021). Each family knows how to evaluate itself, compute the
//! analytic Jacobian of its residuals, and produce data-driven initial
//! parameter guesses for the nonlinear least-squares fitter.

use serde::{Deserialize, Serialize};

/// A parametric learning-curve family `F(x; θ)`.
///
/// `x` is the (1-based) training epoch; `F` is the fitness (validation
/// accuracy in percent in the A4NN use case). Implementors provide the
/// function value and the partial derivatives with respect to each
/// parameter, which the Levenberg–Marquardt fitter consumes.
pub trait ParametricCurve {
    /// Human-readable name (e.g. `"exp-base"` for `a − b^(c−x)`).
    fn name(&self) -> &'static str;
    /// Number of free parameters `θ`.
    fn n_params(&self) -> usize;
    /// Evaluate `F(x; θ)`.
    fn eval(&self, params: &[f64], x: f64) -> f64;
    /// Partial derivatives `∂F/∂θ_i (x; θ)` written into `out`.
    fn grad(&self, params: &[f64], x: f64, out: &mut [f64]);
    /// Data-driven initial guesses. `xs`/`ys` are the observed partial
    /// learning curve. Returns one or more starting points; the fitter
    /// tries each and keeps the best fit.
    fn initial_guesses(&self, xs: &[f64], ys: &[f64]) -> Vec<Vec<f64>>;
    /// Whether a parameter vector is inside the family's valid domain
    /// (e.g. a positive base for `b^(c−x)`). Invalid vectors are rejected
    /// during fitting.
    fn params_valid(&self, params: &[f64]) -> bool;
}

/// Enumeration of the built-in curve families.
///
/// `ExpBase` is the function used throughout the paper's evaluation
/// (Table 1). The others exist for the parametric-function ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveFamily {
    /// `F(x) = a − b^(c−x)` — the paper's concave saturating curve.
    #[default]
    ExpBase,
    /// `F(x) = a − b·x^(−c)` — the pow3 family.
    Pow3,
    /// `F(x) = a − b / ln(x + c)` — logarithmic saturation.
    Log3,
    /// `F(x) = exp(a + b/x + c·ln x)` — vapor-pressure curve.
    Vap3,
    /// `F(x) = a − b·exp(−c·x^d)` — Weibull-style, 4 parameters.
    Weibull4,
    /// `F(x) = a − (a − b)·exp(−c·x)` — Janoschek-style exponential
    /// saturation with explicit starting fitness `b`.
    Janoschek3,
}

impl CurveFamily {
    /// All built-in families, in a stable order (used by the ablation
    /// harness).
    pub const ALL: [CurveFamily; 6] = [
        CurveFamily::ExpBase,
        CurveFamily::Pow3,
        CurveFamily::Log3,
        CurveFamily::Vap3,
        CurveFamily::Weibull4,
        CurveFamily::Janoschek3,
    ];
}

#[inline]
fn curve_stats(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(xs.len(), ys.len());
    let y_first = *ys.first().unwrap_or(&0.0);
    let y_last = *ys.last().unwrap_or(&1.0);
    let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (y_first, y_last, y_max)
}

impl ParametricCurve for CurveFamily {
    fn name(&self) -> &'static str {
        match self {
            CurveFamily::ExpBase => "exp-base",
            CurveFamily::Pow3 => "pow3",
            CurveFamily::Log3 => "log3",
            CurveFamily::Vap3 => "vap3",
            CurveFamily::Weibull4 => "weibull4",
            CurveFamily::Janoschek3 => "janoschek3",
        }
    }

    fn n_params(&self) -> usize {
        match self {
            CurveFamily::Weibull4 => 4,
            _ => 3,
        }
    }

    fn eval(&self, p: &[f64], x: f64) -> f64 {
        match self {
            // a − b^(c−x), b > 0. Written via exp/ln for numerical control.
            CurveFamily::ExpBase => p[0] - (p[1].ln() * (p[2] - x)).exp(),
            CurveFamily::Pow3 => p[0] - p[1] * x.powf(-p[2]),
            CurveFamily::Log3 => p[0] - p[1] / (x + p[2]).ln(),
            CurveFamily::Vap3 => (p[0] + p[1] / x + p[2] * x.ln()).exp(),
            CurveFamily::Weibull4 => p[0] - p[1] * (-p[2] * x.powf(p[3])).exp(),
            CurveFamily::Janoschek3 => p[0] - (p[0] - p[1]) * (-p[2] * x).exp(),
        }
    }

    fn grad(&self, p: &[f64], x: f64, out: &mut [f64]) {
        match self {
            CurveFamily::ExpBase => {
                // F = a − exp(L(c−x)) with L = ln b.
                let l = p[1].ln();
                let t = (l * (p[2] - x)).exp();
                out[0] = 1.0;
                // ∂F/∂b = −(c−x)·b^(c−x−1) = −(c−x)·t/b
                out[1] = -(p[2] - x) * t / p[1];
                // ∂F/∂c = −ln(b)·t
                out[2] = -l * t;
            }
            CurveFamily::Pow3 => {
                let t = x.powf(-p[2]);
                out[0] = 1.0;
                out[1] = -t;
                out[2] = p[1] * t * x.ln();
            }
            CurveFamily::Log3 => {
                let lx = (x + p[2]).ln();
                out[0] = 1.0;
                out[1] = -1.0 / lx;
                out[2] = p[1] / (lx * lx * (x + p[2]));
            }
            CurveFamily::Vap3 => {
                let f = (p[0] + p[1] / x + p[2] * x.ln()).exp();
                out[0] = f;
                out[1] = f / x;
                out[2] = f * x.ln();
            }
            CurveFamily::Weibull4 => {
                let xp = x.powf(p[3]);
                let e = (-p[2] * xp).exp();
                out[0] = 1.0;
                out[1] = -e;
                out[2] = p[1] * xp * e;
                out[3] = p[1] * p[2] * xp * x.ln() * e;
            }
            CurveFamily::Janoschek3 => {
                let e = (-p[2] * x).exp();
                out[0] = 1.0 - e;
                out[1] = e;
                out[2] = (p[0] - p[1]) * x * e;
            }
        }
    }

    fn initial_guesses(&self, xs: &[f64], ys: &[f64]) -> Vec<Vec<f64>> {
        let (y_first, y_last, y_max) = curve_stats(xs, ys);
        let asymptote = (y_max + 2.0).min(100.0).max(y_last);
        let gap = (asymptote - y_first).max(1.0);
        match self {
            CurveFamily::ExpBase => {
                // a − b^(c−x): choose b in (1, ∞) so the curve rises; c
                // shifts where the knee sits. b^c ≈ gap at x=0.
                let mut guesses = Vec::with_capacity(3);
                for &b in &[1.3f64, 1.6, 2.2] {
                    let c = gap.ln() / b.ln();
                    guesses.push(vec![asymptote, b, c]);
                }
                guesses
            }
            CurveFamily::Pow3 => vec![
                vec![asymptote, gap, 0.5],
                vec![asymptote, gap, 1.0],
                vec![asymptote, gap * 2.0, 1.5],
            ],
            CurveFamily::Log3 => vec![vec![asymptote, gap, 1.0], vec![asymptote, gap * 0.5, 2.0]],
            CurveFamily::Vap3 => {
                let la = asymptote.max(1.0).ln();
                vec![vec![la, -1.0, 0.05], vec![la, -0.5, 0.01]]
            }
            CurveFamily::Weibull4 => vec![
                vec![asymptote, gap, 0.3, 1.0],
                vec![asymptote, gap, 0.1, 1.5],
            ],
            CurveFamily::Janoschek3 => {
                vec![vec![asymptote, y_first, 0.2], vec![asymptote, y_first, 0.5]]
            }
        }
    }

    fn params_valid(&self, p: &[f64]) -> bool {
        if p.iter().any(|v| !v.is_finite()) {
            return false;
        }
        match self {
            // base must be > 1 for an increasing saturating curve, and the
            // asymptote must be a plausible fitness.
            CurveFamily::ExpBase => p[1] > 1.0 + 1e-9 && p[0] > -50.0 && p[0] < 250.0,
            CurveFamily::Pow3 => p[2] > 0.0,
            CurveFamily::Log3 => p[2] > 1.0 - f64::EPSILON, // ln(x+c) defined & positive for x ≥ 1
            CurveFamily::Vap3 => true,
            CurveFamily::Weibull4 => p[2] > 0.0 && p[3] > 0.0,
            CurveFamily::Janoschek3 => p[2] > 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_grad(family: CurveFamily, params: &[f64], x: f64) {
        let mut analytic = vec![0.0; family.n_params()];
        family.grad(params, x, &mut analytic);
        let h = 1e-6;
        for i in 0..family.n_params() {
            let mut plus = params.to_vec();
            let mut minus = params.to_vec();
            plus[i] += h;
            minus[i] -= h;
            let numeric = (family.eval(&plus, x) - family.eval(&minus, x)) / (2.0 * h);
            let scale = numeric.abs().max(analytic[i].abs()).max(1.0);
            assert!(
                (numeric - analytic[i]).abs() / scale < 1e-4,
                "{} param {i}: numeric {numeric} vs analytic {}",
                family.name(),
                analytic[i]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        check_grad(CurveFamily::ExpBase, &[95.0, 1.5, 8.0], 5.0);
        check_grad(CurveFamily::Pow3, &[95.0, 40.0, 0.7], 5.0);
        check_grad(CurveFamily::Log3, &[95.0, 30.0, 2.0], 5.0);
        check_grad(CurveFamily::Vap3, &[4.5, -1.0, 0.02], 5.0);
        check_grad(CurveFamily::Weibull4, &[95.0, 50.0, 0.3, 1.2], 5.0);
        check_grad(CurveFamily::Janoschek3, &[95.0, 40.0, 0.4], 5.0);
    }

    #[test]
    fn exp_base_matches_paper_form() {
        // F(x) = a − b^(c−x) evaluated directly.
        let (a, b, c) = (97.0f64, 1.7f64, 9.0f64);
        let p = [a, b, c];
        for x in [1.0, 5.0, 12.0, 25.0] {
            let direct = a - b.powf(c - x);
            assert!((CurveFamily::ExpBase.eval(&p, x) - direct).abs() < 1e-10);
        }
    }

    #[test]
    fn exp_base_is_increasing_and_concave_for_b_gt_1() {
        let p = [95.0, 1.6, 7.0];
        let f = |x: f64| CurveFamily::ExpBase.eval(&p, x);
        let mut prev = f(1.0);
        let mut prev_delta = f64::INFINITY;
        for e in 2..=25 {
            let cur = f(e as f64);
            let delta = cur - prev;
            assert!(delta > 0.0, "curve must increase");
            assert!(delta < prev_delta, "increments must shrink (concave)");
            prev = cur;
            prev_delta = delta;
        }
    }

    #[test]
    fn initial_guesses_are_valid() {
        let xs: Vec<f64> = (1..=6).map(|e| e as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 90.0 - 50.0 * 0.7f64.powf(x)).collect();
        for family in CurveFamily::ALL {
            let guesses = family.initial_guesses(&xs, &ys);
            assert!(!guesses.is_empty(), "{}", family.name());
            for g in guesses {
                assert_eq!(g.len(), family.n_params());
                assert!(family.params_valid(&g), "{} guess {g:?}", family.name());
            }
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(!CurveFamily::ExpBase.params_valid(&[95.0, 0.9, 5.0]));
        assert!(!CurveFamily::ExpBase.params_valid(&[f64::NAN, 1.5, 5.0]));
        assert!(!CurveFamily::Pow3.params_valid(&[95.0, 40.0, -0.5]));
        assert!(!CurveFamily::Weibull4.params_valid(&[95.0, 40.0, 0.5, -1.0]));
    }
}
