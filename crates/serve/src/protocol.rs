//! Serve wire protocol: the request/response vocabulary spoken over the
//! `a4nn-net` length-prefixed frame codec.
//!
//! The framing (magic, version, length, JSON payload) is exactly the one
//! the distributed-search worker speaks — [`a4nn_net::frame`] — so the
//! serve endpoint inherits its typed rejection of truncation, corruption,
//! and foreign protocol revisions, plus the incremental payload reader
//! that caps what an untrusted peer's length header can allocate.
//!
//! Two request kinds: `Classify` (one image in, logits + argmax class
//! out) and `Models` (the Pareto menu: every served model with its
//! fitness/FLOPs trade-off so a client can pick a point on the front).
//! Saturation is an explicit [`ServeResponse::Rejected`] — a client sees
//! *why* it was refused and can back off, instead of watching a socket
//! time out.

use serde::{Deserialize, Serialize};

/// One request frame from a serve client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Session opener; the server refuses foreign revisions explicitly.
    Hello {
        /// The client's `a4nn_net::PROTOCOL_VERSION`.
        version: u16,
    },
    /// Classify one image.
    Classify {
        /// Which served model to use; `None` picks the server's default
        /// (the best-by-fitness Pareto point).
        model_id: Option<u64>,
        /// Image channels (must match the model's input channels).
        channels: usize,
        /// Image height in pixels.
        height: usize,
        /// Image width in pixels.
        width: usize,
        /// Row-major CHW pixel data, `channels * height * width` long.
        pixels: Vec<f32>,
    },
    /// List the served Pareto-front models.
    Models,
    /// Orderly session close.
    Goodbye,
}

/// One served model as advertised by the model-picker endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Model id within the source search run.
    pub model_id: u64,
    /// Final fitness the search recorded (validation accuracy, %).
    pub fitness: f64,
    /// Estimated forward FLOPs — the cost axis of the Pareto front.
    pub flops: f64,
    /// Names of the objectives the source search minimized, in
    /// objective order. Empty when the commons predates the objective
    /// registry; consumers then assume the legacy
    /// `(neg_fitness, flops)` pair.
    #[serde(default)]
    pub objective_names: Vec<String>,
    /// The record's minimized objective vector, aligned with
    /// `objective_names`.
    #[serde(default)]
    pub objective_values: Vec<f64>,
    /// Human-readable architecture summary from the record trail.
    pub arch_summary: String,
    /// Input channels the model expects.
    pub input_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Epoch of the checkpoint being served (`None` when the model was
    /// deterministically rebuilt from its genome instead).
    pub checkpoint_epoch: Option<u32>,
    /// Whether this is the server's default model.
    pub default: bool,
}

/// One response frame from the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// Handshake accept.
    Welcome {
        /// The server's protocol version.
        version: u16,
        /// Number of models being served.
        models: usize,
    },
    /// Handshake refusal (version mismatch).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// A classify result.
    Classified {
        /// The model that produced this answer (resolves a `None` pick).
        model_id: u64,
        /// Argmax class index.
        class: usize,
        /// Raw logits, one per class. `f32` survives the JSON codec
        /// bit-exactly (f32→f64 widening is exact and the vendored
        /// serde_json round-trips f64), which is what makes the
        /// serve-vs-direct bitwise equivalence checkable over the wire.
        logits: Vec<f32>,
    },
    /// The admission queue was full; back off and retry.
    Rejected {
        /// Human-readable reason (queue capacity).
        reason: String,
    },
    /// The request was invalid (unknown model, wrong pixel count, …).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The Pareto menu.
    Models(Vec<ModelInfo>),
}
