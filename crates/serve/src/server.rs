//! The serve endpoint: a TCP listener in front of the micro-batcher.
//!
//! Two interchangeable I/O layers drive the same protocol and the same
//! [`Batcher`]:
//!
//! - **`--io threads`** — the portable fallback: one thread per accepted
//!   connection, blocking frame reads with the idle deadline applied as
//!   a socket read timeout. Finished connection threads are reaped as
//!   new connections arrive, so a long-lived server's bookkeeping stays
//!   bounded.
//! - **`--io reactor`** (Linux default) — the epoll event loop from
//!   [`a4nn_net::reactor`]: every connection is a nonblocking state
//!   machine (handshake → request decode → batcher hand-off → response
//!   flush) multiplexed by one fixed thread, with batch workers posting
//!   completions back through the reactor's eventfd doorbell. Thread
//!   count is reactor + batch workers, independent of client count.
//!
//! In both modes connection handling does no tensor work: frames are
//! decoded, requests handed to the [`Batcher`], replies written. All
//! `f32` scratch lives in the batch workers' pooled arenas.
//!
//! When a metrics path is configured, the registry snapshot is persisted
//! atomically (tmp+rename) at most once per `metrics_interval` as
//! connections close, plus once when the server finishes — so a server
//! killed by a supervisor still leaves its measurements on disk, but
//! metrics I/O no longer scales with connection churn.

use crate::batcher::{Batcher, BatcherConfig, ReplySink};
use crate::model::ModelRepo;
use crate::protocol::{ServeRequest, ServeResponse};
use a4nn_error::A4nnError;
use a4nn_metrics::MetricsRegistry;
use a4nn_net::{read_message, write_message, NetError, PROTOCOL_VERSION};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which connection-handling layer serves the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// One OS thread per accepted connection (portable fallback).
    Threads,
    /// One epoll reactor thread multiplexing every connection
    /// (Linux only; the default there).
    Reactor,
}

impl IoMode {
    /// The platform default: the reactor on Linux, threads elsewhere.
    pub fn default_for_platform() -> Self {
        if cfg!(target_os = "linux") {
            IoMode::Reactor
        } else {
            IoMode::Threads
        }
    }

    /// Parse a `--io` value.
    pub fn parse(s: &str) -> Result<Self, A4nnError> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "reactor" => Ok(IoMode::Reactor),
            other => Err(A4nnError::Config(format!(
                "unknown io mode {other:?} (expected threads|reactor)"
            ))),
        }
    }

    /// The `--io` spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            IoMode::Threads => "threads",
            IoMode::Reactor => "reactor",
        }
    }
}

/// Server configuration: batcher knobs plus the I/O layer and the
/// metrics sink.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-queue and batching knobs.
    pub batcher: BatcherConfig,
    /// Connection-handling layer.
    pub io: IoMode,
    /// Close a connection with no read/write progress for this long —
    /// a client stalled mid-frame cannot hold its slot forever. Applied
    /// as the reactor deadline or the per-socket read timeout.
    pub idle_timeout: Duration,
    /// Where to persist the metrics snapshot (atomic tmp+rename), when
    /// set.
    pub metrics_out: Option<PathBuf>,
    /// Persist at most once per this interval as connections close
    /// (plus once at shutdown).
    pub metrics_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batcher: BatcherConfig::default(),
            io: IoMode::default_for_platform(),
            idle_timeout: Duration::from_secs(30),
            metrics_out: None,
            metrics_interval: Duration::from_secs(2),
        }
    }
}

/// Debounced metrics persistence shared by every connection closer:
/// writes are atomic and rate-limited, with an explicit final flush.
struct MetricsPersist {
    metrics: Arc<MetricsRegistry>,
    path: PathBuf,
    interval: Duration,
    last: Mutex<Option<Instant>>,
}

impl MetricsPersist {
    /// Persist if the interval elapsed since the last write (or none
    /// happened yet). Connection churn beyond the rate costs nothing.
    fn maybe_persist(&self) {
        {
            let mut last = self.last.lock();
            match *last {
                Some(at) if at.elapsed() < self.interval => return,
                _ => *last = Some(Instant::now()),
            }
        }
        self.persist_now();
    }

    /// Unconditional write — the shutdown flush.
    fn persist_now(&self) {
        if let Err(e) = a4nn_lineage::write_atomic(&self.path, &snapshot_json(&self.metrics)) {
            eprintln!(
                "a4nn serve: writing metrics to {}: {e}",
                self.path.display()
            );
        }
    }
}

fn snapshot_json(metrics: &MetricsRegistry) -> Vec<u8> {
    metrics
        .snapshot()
        .to_json()
        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}").into_bytes())
}

/// A bound serve endpoint, ready to accept classify connections.
pub struct ServeServer {
    listener: TcpListener,
    batcher: Arc<Batcher>,
    metrics: Arc<MetricsRegistry>,
    io: IoMode,
    idle_timeout: Duration,
    persist: Option<Arc<MetricsPersist>>,
}

impl ServeServer {
    /// Bind `addr` (port `0` picks a free port) and start the batch
    /// workers over `repo`'s models.
    pub fn bind(
        addr: &str,
        repo: ModelRepo,
        cfg: ServeConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, A4nnError> {
        if cfg.io == IoMode::Reactor && !cfg!(target_os = "linux") {
            return Err(A4nnError::Config(
                "--io reactor requires Linux (epoll); use --io threads".into(),
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| A4nnError::Net(format!("binding serve listener on {addr}: {e}")))?;
        let batcher = Arc::new(Batcher::start(repo, cfg.batcher, Arc::clone(&metrics))?);
        let persist = cfg.metrics_out.map(|path| {
            Arc::new(MetricsPersist {
                metrics: Arc::clone(&metrics),
                path,
                interval: cfg.metrics_interval,
                last: Mutex::new(None),
            })
        });
        Ok(ServeServer {
            listener,
            batcher,
            metrics,
            io: cfg.io,
            idle_timeout: cfg.idle_timeout,
            persist,
        })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> Result<SocketAddr, A4nnError> {
        self.listener
            .local_addr()
            .map_err(|e| A4nnError::Net(format!("reading serve listener address: {e}")))
    }

    /// The I/O layer this server runs on.
    pub fn io_mode(&self) -> IoMode {
        self.io
    }

    /// Accept and serve connections through the configured I/O layer.
    /// `sessions == 0` serves forever; otherwise the server exits after
    /// that many connections have been accepted *and* finished. A
    /// connection that ends abnormally (dropped socket, bad frame, idle
    /// deadline) is logged and counted, never fatal to the server.
    pub fn run(&self, sessions: usize) -> Result<(), A4nnError> {
        let result = match self.io {
            IoMode::Threads => self.run_threads(sessions),
            IoMode::Reactor => self.run_reactor(sessions),
        };
        if let Some(persist) = &self.persist {
            persist.persist_now();
        }
        result
    }

    /// The portable thread-per-connection accept loop.
    fn run_threads(&self, sessions: usize) -> Result<(), A4nnError> {
        let mut accepted = 0usize;
        let mut joins: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            let stream =
                stream.map_err(|e| A4nnError::Net(format!("accepting serve connection: {e}")))?;
            // Reap finished connection threads before tracking another:
            // a long-lived server must not accumulate a JoinHandle per
            // connection it ever served.
            let mut i = 0;
            while i < joins.len() {
                if joins[i].is_finished() {
                    let _ = joins.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            let batcher = Arc::clone(&self.batcher);
            let persist = self.persist.clone();
            let idle = self.idle_timeout;
            joins.push(std::thread::spawn(move || {
                if let Err(e) = serve_connection(stream, &batcher, idle) {
                    eprintln!("a4nn serve: connection ended abnormally: {e}");
                }
                if let Some(persist) = persist {
                    persist.maybe_persist();
                }
            }));
            accepted += 1;
            if sessions != 0 && accepted >= sessions {
                break;
            }
        }
        for join in joins {
            let _ = join.join();
        }
        Ok(())
    }

    /// The epoll event loop (Linux).
    #[cfg(target_os = "linux")]
    fn run_reactor(&self, sessions: usize) -> Result<(), A4nnError> {
        use a4nn_net::reactor::{Reactor, ReactorConfig};
        let mut reactor = Reactor::new(ReactorConfig {
            idle_timeout: self.idle_timeout,
            metrics: Some(Arc::clone(&self.metrics)),
        })?;
        let mut handler = ServeHandler {
            batcher: Arc::clone(&self.batcher),
            metrics: Arc::clone(&self.metrics),
            reactor: reactor.handle(),
            sessions: std::collections::HashMap::new(),
            persist: self.persist.clone(),
        };
        reactor.run(&self.listener, &mut handler, sessions)
    }

    /// Unreachable off Linux: `bind` already refused the mode.
    #[cfg(not(target_os = "linux"))]
    fn run_reactor(&self, _sessions: usize) -> Result<(), A4nnError> {
        Err(A4nnError::Config(
            "--io reactor requires Linux (epoll); use --io threads".into(),
        ))
    }

    /// Bind and serve on a background thread — the in-process server the
    /// tests and the bench sweep drive.
    pub fn spawn(
        addr: &str,
        repo: ModelRepo,
        cfg: ServeConfig,
        metrics: Arc<MetricsRegistry>,
        sessions: usize,
    ) -> Result<ServeHandle, A4nnError> {
        let server = ServeServer::bind(addr, repo, cfg, metrics)?;
        let addr = server.local_addr()?;
        let join = std::thread::spawn(move || server.run(sessions));
        Ok(ServeHandle { addr, join })
    }
}

/// Handle to a [`ServeServer::spawn`]ed background server.
pub struct ServeHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), A4nnError>>,
}

impl ServeHandle {
    /// The server's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to finish its session budget.
    pub fn join(self) -> Result<(), A4nnError> {
        self.join
            .join()
            .map_err(|_| A4nnError::Internal("serve server thread panicked".into()))?
    }
}

// ---------------------------------------------------------------------
// Threaded connection path
// ---------------------------------------------------------------------

/// Drive one client session over `stream` (thread-per-connection mode).
/// The idle deadline is enforced as a socket read timeout: a client
/// that stalls mid-frame or goes silent is disconnected, matching the
/// reactor's deadline semantics.
fn serve_connection(
    stream: TcpStream,
    batcher: &Batcher,
    idle_timeout: Duration,
) -> Result<(), NetError> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(idle_timeout.max(Duration::from_millis(1))));
    let mut reader = stream.try_clone()?;
    let mut writer = stream;

    // Handshake: refuse foreign protocol revisions explicitly, exactly
    // like the worker server does.
    match read_message::<_, ServeRequest>(&mut reader)? {
        Some(ServeRequest::Hello { version }) if version == PROTOCOL_VERSION => {}
        Some(ServeRequest::Hello { version }) => {
            let reason = format!(
                "protocol version mismatch: server speaks v{PROTOCOL_VERSION}, client v{version}"
            );
            let _ = write_message(&mut writer, &ServeResponse::Refused { reason });
            return Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello to open the session, got {other:?}"
            )))
        }
    }
    write_message(
        &mut writer,
        &ServeResponse::Welcome {
            version: PROTOCOL_VERSION,
            models: batcher.infos().len(),
        },
    )?;

    loop {
        match read_message::<_, ServeRequest>(&mut reader)? {
            Some(ServeRequest::Classify {
                model_id,
                channels,
                height,
                width,
                pixels,
            }) => {
                let response = match batcher.classify(model_id, channels, height, width, pixels) {
                    Ok(c) => ServeResponse::Classified {
                        model_id: c.model_id,
                        class: c.class,
                        logits: c.logits,
                    },
                    Err(A4nnError::Saturated(reason)) => ServeResponse::Rejected { reason },
                    Err(e) => ServeResponse::Error {
                        message: e.to_string(),
                    },
                };
                write_message(&mut writer, &response)?;
            }
            Some(ServeRequest::Models) => {
                write_message(
                    &mut writer,
                    &ServeResponse::Models(batcher.infos().to_vec()),
                )?;
            }
            Some(ServeRequest::Goodbye) | None => return Ok(()),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "unexpected mid-session request {other:?}"
                )))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reactor connection path (Linux)
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod reactor_handler {
    use super::*;
    use a4nn_metrics::names;
    use a4nn_net::reactor::{CloseReason, FrameHandler, HandlerAction, ReactorHandle, Token};
    use a4nn_net::{encode, WriteQueue};
    use std::collections::{HashMap, VecDeque};

    /// Most requests a pipelining client may have parked behind an
    /// in-flight classification before the connection is dropped as
    /// abusive. The blocking client never pipelines, so this only
    /// bounds hostile peers' memory.
    const PIPELINE_CAP: usize = 256;

    /// Per-connection protocol state: the same state machine the
    /// threaded path walks implicitly, made explicit because the
    /// reactor cannot block between states.
    pub(super) struct Session {
        /// Hello/Welcome exchanged.
        greeted: bool,
        /// A classification is at the batcher; its reply frame must be
        /// written before any later request's.
        in_flight: bool,
        /// Requests received while one was in flight, answered strictly
        /// in arrival order.
        parked: VecDeque<ServeRequest>,
    }

    /// The reactor-side serve protocol: one handler instance for all
    /// connections, keyed by token.
    pub(super) struct ServeHandler {
        pub(super) batcher: Arc<Batcher>,
        pub(super) metrics: Arc<MetricsRegistry>,
        pub(super) reactor: ReactorHandle,
        pub(super) sessions: HashMap<Token, Session>,
        pub(super) persist: Option<Arc<MetricsPersist>>,
    }

    impl ServeHandler {
        /// Hand one Classify to the batcher; the batch worker posts the
        /// encoded response back through the reactor doorbell. Inline
        /// errors (saturation, bad request) are answered immediately —
        /// ordering holds because nothing was in flight.
        #[allow(clippy::too_many_arguments)]
        fn submit_classify(
            &mut self,
            token: Token,
            model_id: Option<u64>,
            channels: usize,
            height: usize,
            width: usize,
            pixels: Vec<f32>,
            out: &mut WriteQueue,
        ) -> HandlerAction {
            let reactor = self.reactor.clone();
            let metrics = Arc::clone(&self.metrics);
            let t0 = Instant::now();
            let sink = ReplySink::Callback(Box::new(move |c| {
                metrics.observe_duration(names::SERVE_LATENCY_US, t0.elapsed().as_secs_f64());
                let response = ServeResponse::Classified {
                    model_id: c.model_id,
                    class: c.class,
                    logits: c.logits,
                };
                match encode(&response) {
                    Ok(frame) => reactor.complete(token, frame),
                    // An unencodable response is machinery breakage; the
                    // reactor will close the connection at its idle
                    // deadline since no reply ever lands.
                    Err(e) => eprintln!("a4nn serve: encoding classify response: {e}"),
                }
            }));
            match self
                .batcher
                .submit_sink(model_id, channels, height, width, pixels, sink)
            {
                Ok(()) => {
                    if let Some(s) = self.sessions.get_mut(&token) {
                        s.in_flight = true;
                    }
                    HandlerAction::Continue
                }
                Err(A4nnError::Saturated(reason)) => {
                    enqueue_or_close(out, &ServeResponse::Rejected { reason })
                }
                Err(e) => enqueue_or_close(
                    out,
                    &ServeResponse::Error {
                        message: e.to_string(),
                    },
                ),
            }
        }

        /// Apply one request whose turn has come (nothing in flight).
        fn process(
            &mut self,
            token: Token,
            request: ServeRequest,
            out: &mut WriteQueue,
        ) -> HandlerAction {
            match request {
                ServeRequest::Hello { .. } => {
                    eprintln!("a4nn serve: protocol violation: repeated Hello");
                    HandlerAction::CloseNow
                }
                ServeRequest::Classify {
                    model_id,
                    channels,
                    height,
                    width,
                    pixels,
                } => self.submit_classify(token, model_id, channels, height, width, pixels, out),
                ServeRequest::Models => {
                    enqueue_or_close(out, &ServeResponse::Models(self.batcher.infos().to_vec()))
                }
                ServeRequest::Goodbye => HandlerAction::CloseAfterFlush,
            }
        }

        /// Drain parked requests until one goes in flight, one closes
        /// the session, or the queue empties.
        fn pump_parked(&mut self, token: Token, out: &mut WriteQueue) -> HandlerAction {
            loop {
                let Some(session) = self.sessions.get_mut(&token) else {
                    return HandlerAction::CloseNow;
                };
                if session.in_flight {
                    return HandlerAction::Continue;
                }
                let Some(request) = session.parked.pop_front() else {
                    return HandlerAction::Continue;
                };
                match self.process(token, request, out) {
                    HandlerAction::Continue => continue,
                    action => return action,
                }
            }
        }
    }

    impl FrameHandler for ServeHandler {
        fn on_open(&mut self, token: Token, _out: &mut WriteQueue) {
            self.sessions.insert(
                token,
                Session {
                    greeted: false,
                    in_flight: false,
                    parked: VecDeque::new(),
                },
            );
        }

        fn on_frame(
            &mut self,
            token: Token,
            payload: &[u8],
            out: &mut WriteQueue,
        ) -> HandlerAction {
            let request: ServeRequest = match serde_json::from_slice(payload) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("a4nn serve: undecodable request payload: {e}");
                    return HandlerAction::CloseNow;
                }
            };
            let Some(session) = self.sessions.get_mut(&token) else {
                return HandlerAction::CloseNow;
            };
            if !session.greeted {
                // Handshake: refuse foreign protocol revisions
                // explicitly, exactly like the threaded path.
                return match request {
                    ServeRequest::Hello { version } if version == PROTOCOL_VERSION => {
                        session.greeted = true;
                        enqueue_or_close(
                            out,
                            &ServeResponse::Welcome {
                                version: PROTOCOL_VERSION,
                                models: self.batcher.infos().len(),
                            },
                        )
                    }
                    ServeRequest::Hello { version } => {
                        let reason = format!(
                            "protocol version mismatch: server speaks v{PROTOCOL_VERSION}, \
                             client v{version}"
                        );
                        eprintln!(
                            "a4nn serve: connection ended abnormally: handshake refused: {reason}"
                        );
                        match enqueue_or_close(out, &ServeResponse::Refused { reason }) {
                            HandlerAction::Continue => HandlerAction::CloseAfterFlush,
                            other => other,
                        }
                    }
                    other => {
                        eprintln!(
                            "a4nn serve: protocol violation: expected Hello to open the \
                             session, got {other:?}"
                        );
                        HandlerAction::CloseNow
                    }
                };
            }
            if session.in_flight || !session.parked.is_empty() {
                // Strict request→response ordering: later requests wait
                // their turn behind the in-flight classification.
                if session.parked.len() >= PIPELINE_CAP {
                    eprintln!(
                        "a4nn serve: dropping connection with {PIPELINE_CAP} pipelined \
                         request(s) already parked"
                    );
                    return HandlerAction::CloseNow;
                }
                session.parked.push_back(request);
                return HandlerAction::Continue;
            }
            self.process(token, request, out)
        }

        fn on_complete(
            &mut self,
            token: Token,
            frame: Vec<u8>,
            out: &mut WriteQueue,
        ) -> HandlerAction {
            out.enqueue(&frame);
            if let Some(session) = self.sessions.get_mut(&token) {
                session.in_flight = false;
            }
            self.pump_parked(token, out)
        }

        fn on_close(&mut self, token: Token, _reason: &CloseReason) {
            self.sessions.remove(&token);
            if let Some(persist) = &self.persist {
                persist.maybe_persist();
            }
        }
    }

    /// Encode and queue one response; an unencodable response drops the
    /// connection (machinery breakage, never observed for our types).
    fn enqueue_or_close<T: serde::Serialize>(out: &mut WriteQueue, msg: &T) -> HandlerAction {
        match out.enqueue_message(msg) {
            Ok(()) => HandlerAction::Continue,
            Err(e) => {
                eprintln!("a4nn serve: encoding response: {e}");
                HandlerAction::CloseNow
            }
        }
    }
}

#[cfg(target_os = "linux")]
use reactor_handler::ServeHandler;
