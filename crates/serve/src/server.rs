//! The serve endpoint: a TCP listener in front of the micro-batcher.
//!
//! Structure mirrors the distributed-search worker server (bind /
//! `local_addr` / `run(sessions)` / `spawn`), with one deliberate
//! difference: sessions are served *concurrently*, one thread per
//! accepted connection, because cross-connection micro-batching is the
//! whole point — the batcher folds simultaneous requests from different
//! clients into shared forward passes.
//!
//! Connection threads do no tensor work themselves: they decode frames,
//! hand requests to the [`Batcher`], and write replies. All `f32`
//! scratch lives in the batch workers' pooled arenas.
//!
//! When a metrics path is configured, the full registry snapshot is
//! written atomically after *every* connection closes, so a server
//! killed by a supervisor (or a CI job) still leaves its measurements on
//! disk.

use crate::batcher::{Batcher, BatcherConfig};
use crate::model::ModelRepo;
use crate::protocol::{ServeRequest, ServeResponse};
use a4nn_error::A4nnError;
use a4nn_metrics::MetricsRegistry;
use a4nn_net::{read_message, write_message, NetError, PROTOCOL_VERSION};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// Server configuration: batcher knobs plus the metrics sink.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Admission-queue and batching knobs.
    pub batcher: BatcherConfig,
    /// Where to persist the metrics snapshot after each connection
    /// closes (atomic tmp+rename), when set.
    pub metrics_out: Option<PathBuf>,
}

/// A bound serve endpoint, ready to accept classify connections.
pub struct ServeServer {
    listener: TcpListener,
    batcher: Arc<Batcher>,
    metrics: Arc<MetricsRegistry>,
    metrics_out: Option<PathBuf>,
}

impl ServeServer {
    /// Bind `addr` (port `0` picks a free port) and start the batch
    /// workers over `repo`'s models.
    pub fn bind(
        addr: &str,
        repo: ModelRepo,
        cfg: ServeConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, A4nnError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| A4nnError::Net(format!("binding serve listener on {addr}: {e}")))?;
        let batcher = Arc::new(Batcher::start(repo, cfg.batcher, Arc::clone(&metrics))?);
        Ok(ServeServer {
            listener,
            batcher,
            metrics,
            metrics_out: cfg.metrics_out,
        })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> Result<SocketAddr, A4nnError> {
        self.listener
            .local_addr()
            .map_err(|e| A4nnError::Net(format!("reading serve listener address: {e}")))
    }

    /// Accept and serve connections, one thread each. `sessions == 0`
    /// serves forever; otherwise the accept loop exits after that many
    /// connections and waits for their threads to finish. A connection
    /// that ends abnormally (dropped socket, bad frame) is logged and
    /// counted, never fatal to the server.
    pub fn run(&self, sessions: usize) -> Result<(), A4nnError> {
        let mut accepted = 0usize;
        let mut joins = Vec::new();
        for stream in self.listener.incoming() {
            let stream =
                stream.map_err(|e| A4nnError::Net(format!("accepting serve connection: {e}")))?;
            let batcher = Arc::clone(&self.batcher);
            let metrics = Arc::clone(&self.metrics);
            let metrics_out = self.metrics_out.clone();
            joins.push(std::thread::spawn(move || {
                if let Err(e) = serve_connection(stream, &batcher) {
                    eprintln!("a4nn serve: connection ended abnormally: {e}");
                }
                if let Some(path) = metrics_out {
                    if let Err(e) = persist_metrics(&metrics, &path) {
                        eprintln!("a4nn serve: writing metrics to {}: {e}", path.display());
                    }
                }
            }));
            accepted += 1;
            if sessions != 0 && accepted >= sessions {
                break;
            }
        }
        for join in joins {
            let _ = join.join();
        }
        Ok(())
    }

    /// Bind and serve on a background thread — the in-process server the
    /// tests and the bench sweep drive.
    pub fn spawn(
        addr: &str,
        repo: ModelRepo,
        cfg: ServeConfig,
        metrics: Arc<MetricsRegistry>,
        sessions: usize,
    ) -> Result<ServeHandle, A4nnError> {
        let server = ServeServer::bind(addr, repo, cfg, metrics)?;
        let addr = server.local_addr()?;
        let join = std::thread::spawn(move || server.run(sessions));
        Ok(ServeHandle { addr, join })
    }
}

/// Handle to a [`ServeServer::spawn`]ed background server.
pub struct ServeHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), A4nnError>>,
}

impl ServeHandle {
    /// The server's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to finish its session budget.
    pub fn join(self) -> Result<(), A4nnError> {
        self.join
            .join()
            .map_err(|_| A4nnError::Internal("serve server thread panicked".into()))?
    }
}

/// Atomically persist the registry snapshot as pretty JSON.
fn persist_metrics(metrics: &MetricsRegistry, path: &std::path::Path) -> Result<(), A4nnError> {
    a4nn_lineage::write_atomic(path, &metrics.snapshot().to_json()?)
}

/// Drive one client session over `stream`.
fn serve_connection(stream: TcpStream, batcher: &Batcher) -> Result<(), NetError> {
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone()?;
    let mut writer = stream;

    // Handshake: refuse foreign protocol revisions explicitly, exactly
    // like the worker server does.
    match read_message::<_, ServeRequest>(&mut reader)? {
        Some(ServeRequest::Hello { version }) if version == PROTOCOL_VERSION => {}
        Some(ServeRequest::Hello { version }) => {
            let reason = format!(
                "protocol version mismatch: server speaks v{PROTOCOL_VERSION}, client v{version}"
            );
            let _ = write_message(&mut writer, &ServeResponse::Refused { reason });
            return Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello to open the session, got {other:?}"
            )))
        }
    }
    write_message(
        &mut writer,
        &ServeResponse::Welcome {
            version: PROTOCOL_VERSION,
            models: batcher.infos().len(),
        },
    )?;

    loop {
        match read_message::<_, ServeRequest>(&mut reader)? {
            Some(ServeRequest::Classify {
                model_id,
                channels,
                height,
                width,
                pixels,
            }) => {
                let response = match batcher.classify(model_id, channels, height, width, pixels) {
                    Ok(c) => ServeResponse::Classified {
                        model_id: c.model_id,
                        class: c.class,
                        logits: c.logits,
                    },
                    Err(A4nnError::Saturated(reason)) => ServeResponse::Rejected { reason },
                    Err(e) => ServeResponse::Error {
                        message: e.to_string(),
                    },
                };
                write_message(&mut writer, &response)?;
            }
            Some(ServeRequest::Models) => {
                write_message(
                    &mut writer,
                    &ServeResponse::Models(batcher.infos().to_vec()),
                )?;
            }
            Some(ServeRequest::Goodbye) | None => return Ok(()),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "unexpected mid-session request {other:?}"
                )))
            }
        }
    }
}
