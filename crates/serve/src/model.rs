//! Loading the Pareto front out of a finished search run.
//!
//! A [`ModelRepo`] is built from a commons directory (the lineage record
//! trails a search writes) and, when present, a `checkpoints/`
//! subdirectory holding [`CheckpointStore`] model states. Every
//! non-failed record on the fitness/FLOPs Pareto front becomes a served
//! model:
//!
//! - with a checkpoint: the highest-epoch [`a4nn_nn::ModelState`] is
//!   restored —
//!   the trained weights the search actually measured;
//! - without: the network is rebuilt deterministically from the genome
//!   (paper-default search space, model-id-seeded init), so a repo
//!   loaded twice — or once in the server and once in a verifier —
//!   yields bitwise-identical weights by construction.
//!
//! The default model is the best-by-fitness Pareto point; clients that
//! don't care about the cost axis get the most accurate answer.

use crate::protocol::ModelInfo;
use a4nn_core::{netspec_from_arch, CheckpointStore};
use a4nn_error::A4nnError;
use a4nn_genome::SearchSpace;
use a4nn_lineage::{Analyzer, DataCommons};
use a4nn_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// One servable model: its menu entry plus the network itself.
pub struct ServedModel {
    /// The menu entry advertised to clients.
    pub info: ModelInfo,
    /// The instantiated network (eval-mode forward only).
    pub net: Network,
}

/// The Pareto-front models loaded from one search run.
pub struct ModelRepo {
    models: Vec<ServedModel>,
    default_idx: usize,
}

impl ModelRepo {
    /// Load the Pareto front from `dir` (a commons directory; an optional
    /// `checkpoints/` subdirectory supplies trained weights).
    pub fn load(dir: &Path) -> Result<Self, A4nnError> {
        let commons = DataCommons::load_dir(dir)?;
        let checkpoints = {
            let ckpt_dir = dir.join("checkpoints");
            if ckpt_dir.is_dir() {
                Some(CheckpointStore::load_dir(&ckpt_dir)?)
            } else {
                None
            }
        };
        Self::from_commons(&commons, checkpoints.as_ref())
    }

    /// Build a repo from an in-memory commons (the in-process path used
    /// by tests and the bench sweep).
    pub fn from_commons(
        commons: &DataCommons,
        checkpoints: Option<&CheckpointStore>,
    ) -> Result<Self, A4nnError> {
        let analyzer = Analyzer::new(commons);
        let space = SearchSpace::paper_defaults();
        let mut models = Vec::new();
        // The front is computed over each record's full objective
        // vector; legacy commons (no objective columns) fall back to
        // the reconstructed (−fitness, flops) pair inside
        // `objective_vector`, so pre-registry runs serve the same menu
        // they always did. A commons mixing objective dimensions is
        // surfaced as the typed config error instead of a panic.
        for record in analyzer.pareto_front_objectives()? {
            if record.failed() || record.final_fitness.is_nan() {
                continue;
            }
            let checkpoint = checkpoints.and_then(|store| {
                let epoch = store.epochs_for(record.model_id).into_iter().max()?;
                store.get(record.model_id, epoch).map(|s| (epoch, s))
            });
            // The RNG seeds construction; for the checkpoint path every
            // parameter is overwritten, and for the rebuild path the
            // model-id seed makes the init itself reproducible.
            let mut rng = StdRng::seed_from_u64(record.model_id);
            let (net, checkpoint_epoch) = match checkpoint {
                Some((epoch, state)) => (state.restore(&mut rng), Some(epoch)),
                None => {
                    let spec = netspec_from_arch(&space.decode(&record.genome));
                    (Network::new(&spec, &mut rng), None)
                }
            };
            let spec = net.spec();
            models.push(ServedModel {
                info: ModelInfo {
                    model_id: record.model_id,
                    fitness: record.final_fitness,
                    flops: record.flops,
                    objective_names: record.objective_labels(),
                    objective_values: record.objective_vector(),
                    arch_summary: record.arch_summary.clone(),
                    input_channels: spec.input_channels,
                    num_classes: spec.num_classes,
                    checkpoint_epoch,
                    default: false,
                },
                net,
            });
        }
        if models.is_empty() {
            return Err(A4nnError::Config(
                "commons has no servable models: the Pareto front is empty or all failed".into(),
            ));
        }
        // Stable order for reproducible menus and worker assignment.
        models.sort_by_key(|m| m.info.model_id);
        let default_idx = models
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a4nn_lineage::fitness_cmp(a.info.fitness, b.info.fitness))
            .map(|(i, _)| i)
            .unwrap_or(0);
        models[default_idx].info.default = true;
        Ok(ModelRepo {
            models,
            default_idx,
        })
    }

    /// The served models, ascending by model id.
    pub fn models(&self) -> &[ServedModel] {
        &self.models
    }

    /// The Pareto menu advertised to clients.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.models.iter().map(|m| m.info.clone()).collect()
    }

    /// Index of the default (best-by-fitness) model.
    pub fn default_idx(&self) -> usize {
        self.default_idx
    }

    /// Decompose into (menu, default index, networks) — the batcher takes
    /// ownership of the networks and keeps the menu for validation.
    pub fn into_parts(self) -> (Vec<ModelInfo>, usize, Vec<Network>) {
        let infos = self.infos();
        let default_idx = self.default_idx;
        let nets = self.models.into_iter().map(|m| m.net).collect();
        (infos, default_idx, nets)
    }

    /// Resolve a client's model pick to an index into [`models`](Self::models).
    pub fn resolve(&self, model_id: Option<u64>) -> Result<usize, A4nnError> {
        match model_id {
            None => Ok(self.default_idx),
            Some(id) => self
                .models
                .iter()
                .position(|m| m.info.model_id == id)
                .ok_or_else(|| {
                    A4nnError::Config(format!("model {id} is not on the served Pareto front"))
                }),
        }
    }
}
