//! Load generator and bench harness for the serve endpoint.
//!
//! Three pieces:
//!
//! - [`run_load`]: `clients` concurrent connections each firing
//!   `requests_per_client` seeded synthetic classify requests, measuring
//!   per-request latency and counting typed rejections. Rejections are
//!   part of the measurement, not failures — but a run that saw *only*
//!   rejections surfaces [`A4nnError::Saturated`] instead of reporting
//!   an empty percentile table.
//! - [`sweep_in_process`]: the throughput-vs-batch-size bench — one
//!   in-process server per batch size, same seeded load against each,
//!   producing the [`BenchReport`] committed as `BENCH_serve.json`.
//! - [`verify_against_direct`]: the correctness diff CI runs — every
//!   served model gets seeded images classified over the wire and
//!   forward-passed locally from an identically-loaded [`ModelRepo`];
//!   logits must match *bitwise* (micro-batching, the JSON codec, and
//!   worker placement are all equivalence-preserving by construction).

use crate::client::ServeClient;
use crate::model::ModelRepo;
use crate::server::{ServeConfig, ServeServer};
use a4nn_error::A4nnError;
use a4nn_metrics::MetricsRegistry;
use a4nn_nn::{Tensor4, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Serve endpoint to target, e.g. `127.0.0.1:7463`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Classify requests each client fires.
    pub requests_per_client: usize,
    /// Synthetic image height.
    pub height: usize,
    /// Synthetic image width.
    pub width: usize,
    /// Base seed for the synthetic pixels (client `i` uses `seed + i`).
    pub seed: u64,
}

/// Aggregated measurements from one load run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests fired.
    pub requests: usize,
    /// Requests answered with a classification.
    pub accepted: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// Wall time of the whole run, seconds.
    pub elapsed_s: f64,
    /// Accepted requests per second.
    pub throughput_rps: f64,
    /// Median accepted-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile accepted-request latency, microseconds.
    pub p99_us: u64,
    /// Mean accepted-request latency, microseconds.
    pub mean_us: f64,
    /// Worst accepted-request latency, microseconds.
    pub max_us: u64,
}

/// One point of the throughput-vs-batch-size sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchPoint {
    /// The server's `max_batch` for this point.
    pub max_batch: usize,
    /// The load measurements at that batch size.
    pub report: LoadReport,
}

/// One point of the connection-scaling sweep: a fixed client count
/// driven against one I/O mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// The server's I/O layer (`threads` or `reactor`).
    pub io: String,
    /// Concurrent client connections offered.
    pub clients: usize,
    /// The load measurements at that concurrency.
    pub report: LoadReport,
}

/// The committed bench artifact (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Concurrent client connections per batch-size point.
    pub clients: usize,
    /// Requests per client per point.
    pub requests_per_client: usize,
    /// Synthetic image height.
    pub height: usize,
    /// Synthetic image width.
    pub width: usize,
    /// Base pixel seed.
    pub seed: u64,
    /// One entry per swept batch size.
    pub points: Vec<BatchPoint>,
    /// Connection-scaling sweep: client counts × I/O modes (absent in
    /// reports written before the reactor existed).
    #[serde(default)]
    pub scaling: Vec<ScalingPoint>,
}

/// Deterministic synthetic image for (seed, request index).
fn synthetic_pixels(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Nearest-rank percentile over an ascending-sorted sample set.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Fire the load and aggregate the measurements.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, A4nnError> {
    if spec.clients == 0 || spec.requests_per_client == 0 {
        return Err(A4nnError::Config(
            "load generator needs at least one client and one request".into(),
        ));
    }
    let started = Instant::now();
    type ClientOutcome = Result<(Vec<u64>, usize), A4nnError>;
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|i| {
                scope.spawn(move || -> ClientOutcome {
                    let mut client = ServeClient::connect(&spec.addr)?;
                    let menu = client.models()?;
                    let default = menu
                        .iter()
                        .find(|m| m.default)
                        .or_else(|| menu.first())
                        .ok_or_else(|| {
                            A4nnError::Net("serve endpoint advertises no models".into())
                        })?;
                    let channels = default.input_channels;
                    let len = channels * spec.height * spec.width;
                    let mut rng = StdRng::seed_from_u64(spec.seed + i as u64);
                    let mut latencies = Vec::with_capacity(spec.requests_per_client);
                    let mut rejected = 0usize;
                    for _ in 0..spec.requests_per_client {
                        let pixels = synthetic_pixels(&mut rng, len);
                        let t0 = Instant::now();
                        match client.classify(None, channels, spec.height, spec.width, pixels) {
                            Ok(_) => {
                                latencies.push(t0.elapsed().as_micros() as u64);
                            }
                            Err(A4nnError::Saturated(_)) => rejected += 1,
                            Err(e) => return Err(e),
                        }
                    }
                    let _ = client.goodbye();
                    Ok((latencies, rejected))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(A4nnError::Internal("load client thread panicked".into()))
                })
            })
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut rejected = 0usize;
    for outcome in outcomes {
        let (lats, rej) = outcome?;
        latencies.extend(lats);
        rejected += rej;
    }
    let requests = spec.clients * spec.requests_per_client;
    let accepted = latencies.len();
    if accepted == 0 {
        return Err(A4nnError::Saturated(format!(
            "all {requests} request(s) were rejected; no latency to report"
        )));
    }
    latencies.sort_unstable();
    let sum: u64 = latencies.iter().sum();
    Ok(LoadReport {
        clients: spec.clients,
        requests,
        accepted,
        rejected,
        elapsed_s,
        throughput_rps: accepted as f64 / elapsed_s.max(f64::EPSILON),
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        mean_us: sum as f64 / accepted as f64,
        max_us: *latencies.last().unwrap_or(&0),
    })
}

/// Run the throughput-vs-batch-size sweep: one in-process server per
/// batch size, identical seeded load against each.
pub fn sweep_in_process(
    commons: &Path,
    batch_sizes: &[usize],
    clients: usize,
    requests_per_client: usize,
    height: usize,
    width: usize,
    seed: u64,
) -> Result<BenchReport, A4nnError> {
    let mut points = Vec::with_capacity(batch_sizes.len());
    for &max_batch in batch_sizes {
        let repo = ModelRepo::load(commons)?;
        let cfg = ServeConfig {
            batcher: crate::batcher::BatcherConfig {
                max_batch,
                // The sweep measures batching, not rejection: size the
                // queue to the offered concurrency so admission control
                // stays out of the way.
                queue_cap: (clients * 2).max(64),
                ..Default::default()
            },
            ..ServeConfig::default()
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let handle = ServeServer::spawn("127.0.0.1:0", repo, cfg, metrics, clients)?;
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            clients,
            requests_per_client,
            height,
            width,
            seed,
        })?;
        handle.join()?;
        points.push(BatchPoint { max_batch, report });
    }
    Ok(BenchReport {
        clients,
        requests_per_client,
        height,
        width,
        seed,
        points,
        scaling: Vec::new(),
    })
}

/// Run the connection-scaling sweep: every client count in
/// `client_counts` against every I/O mode in `modes`, one in-process
/// server per point. The admission queue is sized to the offered
/// concurrency (as in [`sweep_in_process`]) so the sweep measures the
/// I/O layer, not admission control.
pub fn scaling_sweep(
    commons: &Path,
    modes: &[crate::server::IoMode],
    client_counts: &[usize],
    requests_per_client: usize,
    height: usize,
    width: usize,
    seed: u64,
) -> Result<Vec<ScalingPoint>, A4nnError> {
    let mut points = Vec::with_capacity(modes.len() * client_counts.len());
    for &io in modes {
        for &clients in client_counts {
            let repo = ModelRepo::load(commons)?;
            let cfg = ServeConfig {
                batcher: crate::batcher::BatcherConfig {
                    queue_cap: (clients * 2).max(64),
                    ..Default::default()
                },
                io,
                ..ServeConfig::default()
            };
            let metrics = Arc::new(MetricsRegistry::new());
            let handle = ServeServer::spawn("127.0.0.1:0", repo, cfg, metrics, clients)?;
            let report = run_load(&LoadSpec {
                addr: handle.addr().to_string(),
                clients,
                requests_per_client,
                height,
                width,
                seed,
            })?;
            handle.join()?;
            points.push(ScalingPoint {
                io: io.as_str().to_string(),
                clients,
                report,
            });
        }
    }
    Ok(points)
}

/// Classify seeded images over the wire and diff the logits bitwise
/// against a locally-loaded copy of the same models. Returns the number
/// of comparisons made; any mismatch is an `Internal` error naming the
/// first diverging model.
pub fn verify_against_direct(
    commons: &Path,
    addr: &str,
    samples_per_model: usize,
    height: usize,
    width: usize,
    seed: u64,
) -> Result<usize, A4nnError> {
    let (infos, _, mut nets) = ModelRepo::load(commons)?.into_parts();
    let mut client = ServeClient::connect(addr)?;
    let mut ws = Workspace::new();
    let mut checked = 0usize;
    for (idx, info) in infos.iter().enumerate() {
        let len = info.input_channels * height * width;
        let mut rng = StdRng::seed_from_u64(seed ^ info.model_id);
        for sample in 0..samples_per_model {
            let pixels = synthetic_pixels(&mut rng, len);
            let served = client.classify(
                Some(info.model_id),
                info.input_channels,
                height,
                width,
                pixels.clone(),
            )?;
            let x = Tensor4::from_vec(1, info.input_channels, height, width, pixels);
            let logits = nets[idx].forward_ws(&x, false, &mut ws);
            let direct = logits.row(0);
            let matches = served.logits.len() == direct.len()
                && served
                    .logits
                    .iter()
                    .zip(direct)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !matches {
                return Err(A4nnError::Internal(format!(
                    "serve response diverged from direct evaluation for model {} sample {sample}",
                    info.model_id
                )));
            }
            ws.give2(logits);
            checked += 1;
        }
    }
    let _ = client.goodbye();
    Ok(checked)
}
