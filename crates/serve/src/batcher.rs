//! The micro-batcher: a bounded admission queue in front of batched
//! eval-mode forward passes.
//!
//! Concurrent classify requests from any number of connections land in
//! one bounded queue. Admission is all-or-nothing and non-blocking: a
//! full queue refuses the request with [`A4nnError::Saturated`] instead
//! of queueing unboundedly — the caller sees a typed rejection and backs
//! off, and the server's memory stays bounded no matter the offered load.
//!
//! Batch workers drain the queue greedily: each batch takes consecutive
//! requests for the *same model and image shape* up to `max_batch` and
//! runs them through a single eval-mode `forward_ws`. Eval-mode forward
//! treats every sample independently (per-sample im2col, running BN
//! stats, row-wise dense), so a request's logits are bitwise identical
//! whether it rode a batch of one or sixteen — the property the
//! equivalence suite pins.
//!
//! Each worker owns one [`Workspace`] arena: after warm-up, steady-state
//! serving performs no heap allocation in the forward path, and a
//! [`trim_to`](Workspace::trim_to) after every batch bounds the pool
//! when request shapes vary. The pool's high-water mark is exported
//! through the metrics registry (summed across workers).

use crate::model::ModelRepo;
use crate::protocol::ModelInfo;
use a4nn_error::A4nnError;
use a4nn_metrics::{names, MetricsRegistry};
use a4nn_nn::{Network, Workspace};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Batcher tuning knobs.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Most requests folded into one forward pass.
    pub max_batch: usize,
    /// Admission queue capacity; requests beyond it are rejected.
    pub queue_cap: usize,
    /// Batch worker threads (each owns a clone of every served model).
    pub workers: usize,
    /// Workspace pool cap per worker, bytes; trimmed after every batch.
    pub ws_limit_bytes: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 8,
            queue_cap: 64,
            workers: 1,
            ws_limit_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One classify answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The model that answered (resolves a `None` pick).
    pub model_id: u64,
    /// Argmax class index.
    pub class: usize,
    /// Raw logits, one per class.
    pub logits: Vec<f32>,
}

/// Where a finished classification goes.
///
/// Connection threads block on a channel; the epoll reactor cannot
/// block, so it hands the batcher a callback that posts the encoded
/// response back through the reactor's completion doorbell. Either way
/// the batch worker's job is the same: deliver one [`Classification`].
pub enum ReplySink {
    /// Send into a bounded channel (the blocking connection-thread path).
    Channel(Sender<Classification>),
    /// Invoke a closure on the batch worker thread (the reactor path —
    /// the closure must be cheap: encode and notify, no tensor work).
    Callback(Box<dyn FnOnce(Classification) + Send>),
}

impl ReplySink {
    fn deliver(self, c: Classification) {
        match self {
            // A receiver that hung up (dead connection) is not an error.
            ReplySink::Channel(tx) => {
                let _ = tx.send(c);
            }
            ReplySink::Callback(f) => f(c),
        }
    }
}

/// A request parked in the admission queue.
struct Pending {
    model_idx: usize,
    channels: usize,
    height: usize,
    width: usize,
    pixels: Vec<f32>,
    enqueued: Instant,
    reply: ReplySink,
}

impl Pending {
    fn shape_key(&self) -> (usize, usize, usize, usize) {
        (self.model_idx, self.channels, self.height, self.width)
    }
}

struct Queue {
    items: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
    cfg: BatcherConfig,
    infos: Vec<ModelInfo>,
    default_idx: usize,
    metrics: Arc<MetricsRegistry>,
}

/// The running batcher: submit requests, receive classifications.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Consume `repo` and start the batch workers.
    pub fn start(
        repo: ModelRepo,
        cfg: BatcherConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, A4nnError> {
        if cfg.max_batch == 0 || cfg.queue_cap == 0 || cfg.workers == 0 {
            return Err(A4nnError::Config(
                "batcher max_batch, queue_cap, and workers must all be positive".into(),
            ));
        }
        let (infos, default_idx, nets) = repo.into_parts();
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            cfg: cfg.clone(),
            infos,
            default_idx,
            metrics,
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        // The last worker takes the original networks; earlier ones
        // clone. Identical weights either way, so which worker executes
        // a batch cannot perturb answers.
        let mut pool = Some(nets);
        for w in 0..cfg.workers {
            let nets: Vec<Network> = if w + 1 == cfg.workers {
                pool.take().unwrap_or_default()
            } else {
                pool.as_ref().cloned().unwrap_or_default()
            };
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared, nets)));
        }
        Ok(Batcher { shared, workers })
    }

    /// The Pareto menu the batcher serves.
    pub fn infos(&self) -> &[ModelInfo] {
        &self.shared.infos
    }

    /// Validate and admit one request. Returns the reply receiver, or a
    /// typed error: `Config` for malformed requests, `Saturated` when the
    /// admission queue is full.
    pub fn submit(
        &self,
        model_id: Option<u64>,
        channels: usize,
        height: usize,
        width: usize,
        pixels: Vec<f32>,
    ) -> Result<Receiver<Classification>, A4nnError> {
        let (tx, rx) = bounded(1);
        self.submit_sink(
            model_id,
            channels,
            height,
            width,
            pixels,
            ReplySink::Channel(tx),
        )?;
        Ok(rx)
    }

    /// [`submit`](Self::submit) with an explicit reply sink — the
    /// reactor's nonblocking entry point. Validation and admission
    /// control are identical; only where the answer lands differs.
    pub fn submit_sink(
        &self,
        model_id: Option<u64>,
        channels: usize,
        height: usize,
        width: usize,
        pixels: Vec<f32>,
        reply: ReplySink,
    ) -> Result<(), A4nnError> {
        let model_idx = match model_id {
            None => self.shared.default_idx,
            Some(id) => self
                .shared
                .infos
                .iter()
                .position(|m| m.model_id == id)
                .ok_or_else(|| {
                    A4nnError::Config(format!("model {id} is not on the served Pareto front"))
                })?,
        };
        let info = &self.shared.infos[model_idx];
        if channels != info.input_channels {
            return Err(A4nnError::Config(format!(
                "model {} expects {} channel(s), request has {channels}",
                info.model_id, info.input_channels
            )));
        }
        if height == 0 || width == 0 || pixels.len() != channels * height * width {
            return Err(A4nnError::Config(format!(
                "pixel payload is {} value(s), expected {channels}x{height}x{width} = {}",
                pixels.len(),
                channels * height * width
            )));
        }
        let pending = Pending {
            model_idx,
            channels,
            height,
            width,
            pixels,
            enqueued: Instant::now(),
            reply,
        };
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return Err(A4nnError::Internal("serve batcher is shut down".into()));
            }
            if q.items.len() >= self.shared.cfg.queue_cap {
                drop(q);
                self.shared.metrics.add(names::SERVE_REJECTED, 1);
                return Err(A4nnError::Saturated(format!(
                    "serve queue holds {} request(s)",
                    self.shared.cfg.queue_cap
                )));
            }
            q.items.push_back(pending);
        }
        self.shared.cond.notify_one();
        self.shared.metrics.add(names::SERVE_REQUESTS, 1);
        Ok(())
    }

    /// Submit and block for the answer, recording end-to-end latency.
    pub fn classify(
        &self,
        model_id: Option<u64>,
        channels: usize,
        height: usize,
        width: usize,
        pixels: Vec<f32>,
    ) -> Result<Classification, A4nnError> {
        let t0 = Instant::now();
        let rx = self.submit(model_id, channels, height, width, pixels)?;
        let result = rx
            .recv()
            .map_err(|_| A4nnError::Internal("serve batch worker died before replying".into()));
        if result.is_ok() {
            self.shared
                .metrics
                .observe_duration(names::SERVE_LATENCY_US, t0.elapsed().as_secs_f64());
        }
        result
    }

    /// Drain the queue and stop the workers. Requests already admitted
    /// are answered; the queue refuses new work immediately.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Argmax over one logits row, ties to the lower index — the same rule
/// `count_correct` applies during training-side evaluation.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, v) in row.iter().enumerate().skip(1) {
        if v.total_cmp(&row[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

fn worker_loop(shared: &Shared, mut nets: Vec<Network>) {
    let mut ws = Workspace::new();
    // Each worker exports the growth of its own pool high-water mark as a
    // counter delta, so the shared counter sums per-worker peaks.
    let mut exported_peak = 0usize;
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock();
            while q.items.is_empty() && !q.shutdown {
                shared.cond.wait(&mut q);
            }
            if q.items.is_empty() {
                // Shutdown with a drained queue: done.
                return;
            }
            let mut batch = Vec::with_capacity(shared.cfg.max_batch);
            let Some(first) = q.items.pop_front() else {
                continue;
            };
            let key = first.shape_key();
            batch.push(first);
            while batch.len() < shared.cfg.max_batch
                && q.items.front().is_some_and(|p| p.shape_key() == key)
            {
                if let Some(p) = q.items.pop_front() {
                    batch.push(p);
                }
            }
            batch
        };
        // Admission control can in principle hand a worker zero work (a
        // sibling drained the queue between wake-up and pop); the guard
        // above makes that an explicit skip, never a zero-size forward —
        // the same explicitness `try_evaluate_chunked` enforces.
        let Some(first) = batch.first() else {
            continue;
        };
        let now = Instant::now();
        for p in &batch {
            shared.metrics.observe_duration(
                names::SERVE_QUEUE_WAIT_US,
                now.duration_since(p.enqueued).as_secs_f64(),
            );
        }
        let (model_idx, c, h, w) = first.shape_key();
        let n = batch.len();
        let mut x = ws.t4_scratch(n, c, h, w);
        let stride = c * h * w;
        for (i, p) in batch.iter().enumerate() {
            x.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(&p.pixels);
        }
        let t0 = Instant::now();
        let logits = nets[model_idx].forward_ws(&x, false, &mut ws);
        shared
            .metrics
            .observe_duration(names::SERVE_EVAL_US, t0.elapsed().as_secs_f64());
        ws.give4(x);
        let model_id = shared.infos[model_idx].model_id;
        for (i, p) in batch.into_iter().enumerate() {
            let row = logits.row(i).to_vec();
            let class = argmax(&row);
            p.reply.deliver(Classification {
                model_id,
                class,
                logits: row,
            });
        }
        ws.give2(logits);
        ws.trim_to(shared.cfg.ws_limit_bytes);
        shared.metrics.add(names::SERVE_BATCHES, 1);
        shared.metrics.observe(names::SERVE_BATCH_SIZE, n as u64);
        let peak = ws.peak_pooled_bytes();
        if peak > exported_peak {
            shared
                .metrics
                .add(names::SERVE_WS_PEAK_BYTES, (peak - exported_peak) as u64);
            exported_peak = peak;
        }
    }
}
