//! Blocking client for the serve endpoint.
//!
//! Wraps one TCP connection: handshake on connect, then synchronous
//! request/response pairs. Server-side refusals come back as typed
//! errors — a [`ServeResponse::Rejected`] maps onto
//! [`A4nnError::Saturated`] so callers (the load generator, scripted
//! clients) can branch on the failure class without string matching.

use crate::batcher::Classification;
use crate::protocol::{ModelInfo, ServeRequest, ServeResponse};
use a4nn_error::A4nnError;
use a4nn_net::{read_message, write_message, PROTOCOL_VERSION};
use std::net::TcpStream;

/// One connected serve session.
pub struct ServeClient {
    reader: TcpStream,
    writer: TcpStream,
    models: usize,
}

impl ServeClient {
    /// Connect to `addr` and complete the handshake.
    pub fn connect(addr: &str) -> Result<Self, A4nnError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| A4nnError::Net(format!("connecting to serve endpoint {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| A4nnError::Net(format!("cloning serve stream: {e}")))?;
        let mut client = ServeClient {
            reader,
            writer: stream,
            models: 0,
        };
        client.send(&ServeRequest::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.receive()? {
            ServeResponse::Welcome { models, .. } => {
                client.models = models;
                Ok(client)
            }
            ServeResponse::Refused { reason } => {
                Err(A4nnError::Net(format!("serve handshake refused: {reason}")))
            }
            other => Err(A4nnError::Net(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// Number of models the server advertised at handshake.
    pub fn model_count(&self) -> usize {
        self.models
    }

    /// Classify one image. `None` picks the server's default model.
    pub fn classify(
        &mut self,
        model_id: Option<u64>,
        channels: usize,
        height: usize,
        width: usize,
        pixels: Vec<f32>,
    ) -> Result<Classification, A4nnError> {
        self.send(&ServeRequest::Classify {
            model_id,
            channels,
            height,
            width,
            pixels,
        })?;
        match self.receive()? {
            ServeResponse::Classified {
                model_id,
                class,
                logits,
            } => Ok(Classification {
                model_id,
                class,
                logits,
            }),
            ServeResponse::Rejected { reason } => Err(A4nnError::Saturated(reason)),
            ServeResponse::Error { message } => Err(A4nnError::Config(message)),
            other => Err(A4nnError::Net(format!(
                "unexpected classify response {other:?}"
            ))),
        }
    }

    /// Fetch the Pareto menu.
    pub fn models(&mut self) -> Result<Vec<ModelInfo>, A4nnError> {
        self.send(&ServeRequest::Models)?;
        match self.receive()? {
            ServeResponse::Models(infos) => Ok(infos),
            other => Err(A4nnError::Net(format!(
                "unexpected models response {other:?}"
            ))),
        }
    }

    /// Close the session politely.
    pub fn goodbye(mut self) -> Result<(), A4nnError> {
        self.send(&ServeRequest::Goodbye)
    }

    fn send(&mut self, request: &ServeRequest) -> Result<(), A4nnError> {
        write_message(&mut self.writer, request)
            .map_err(|e| A4nnError::Net(format!("sending serve request: {e}")))
    }

    fn receive(&mut self) -> Result<ServeResponse, A4nnError> {
        match read_message::<_, ServeResponse>(&mut self.reader) {
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err(A4nnError::Net(
                "serve connection closed mid-conversation".into(),
            )),
            Err(e) => Err(A4nnError::Net(format!("reading serve response: {e}"))),
        }
    }
}
