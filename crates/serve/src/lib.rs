//! # a4nn-serve — batched Pareto-front inference under load
//!
//! The paper's workflow ends when the search writes its data commons;
//! this crate is what production starts with: a long-running TCP server
//! that loads the run's Pareto-front models and answers classify
//! requests, micro-batching concurrent traffic through shared forward
//! passes.
//!
//! Pipeline, in order:
//!
//! - [`model`] — [`ModelRepo`]: the fitness/FLOPs Pareto front out of a
//!   commons directory, with trained weights from a `checkpoints/`
//!   [`CheckpointStore`](a4nn_core::CheckpointStore) when present and a
//!   deterministic genome rebuild otherwise.
//! - [`batcher`] — [`Batcher`]: a bounded admission queue (full ⇒ typed
//!   [`A4nnError::Saturated`](a4nn_error::A4nnError) rejection, CLI exit
//!   code 11) feeding batch workers that fold same-model, same-shape
//!   requests into single eval-mode forward passes over pooled
//!   [`Workspace`](a4nn_nn::Workspace) arenas.
//! - [`server`] / [`client`] — the TCP endpoint and its blocking client,
//!   speaking [`protocol`] messages over the `a4nn-net` frame codec
//!   (same magic, version, and typed frame errors as the distributed
//!   search). Two interchangeable I/O layers (`--io threads|reactor`):
//!   thread-per-connection, or the epoll reactor from
//!   `a4nn_net::reactor` multiplexing every connection through one
//!   thread (Linux default).
//! - [`loadgen`] — the load generator, the throughput-vs-batch-size and
//!   connection-scaling sweeps behind `BENCH_serve.json`, and the
//!   serve-vs-direct bitwise verifier CI runs.
//!
//! The load-bearing property is the serving restatement of the
//! workspace determinism argument: eval-mode forward treats every sample
//! independently, so micro-batching, buffer reuse, worker placement, and
//! the JSON wire codec (f32→f64 widening is exact, and the vendored
//! serde_json round-trips f64) all preserve logits *bitwise*. A served
//! answer is the answer a local single-request evaluation would give.

#![warn(clippy::redundant_clone)]

pub mod batcher;
pub mod client;
pub mod loadgen;
pub mod model;
pub mod protocol;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, Classification, ReplySink};
pub use client::ServeClient;
pub use loadgen::{
    run_load, scaling_sweep, sweep_in_process, verify_against_direct, BatchPoint, BenchReport,
    LoadReport, LoadSpec, ScalingPoint,
};
pub use model::{ModelRepo, ServedModel};
pub use protocol::{ModelInfo, ServeRequest, ServeResponse};
pub use server::{IoMode, ServeConfig, ServeHandle, ServeServer};
