//! Idle-deadline enforcement, in both I/O modes: a client that stalls
//! mid-frame is disconnected at the idle deadline, and while it stalls
//! it never blocks service to healthy connections.
//!
//! The stalled client sends *half* a frame and then goes silent — the
//! worst case for a server, because the connection is mid-parse: a
//! blocking reader would sit in `read` forever, and a naive reactor
//! would keep the registration alive with no way to make progress.

use a4nn_core::prelude::*;
use a4nn_net::encode;
use a4nn_serve::{
    BatcherConfig, IoMode, ModelRepo, ServeClient, ServeConfig, ServeRequest, ServeServer,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn commons() -> &'static DataCommons {
    static COMMONS: OnceLock<DataCommons> = OnceLock::new();
    COMMONS.get_or_init(|| {
        let cfg = WorkflowConfig {
            nas: NasSettings {
                population: 4,
                offspring: 4,
                generations: 1,
                ..NasSettings::paper_defaults()
            },
            engine: Some(EngineConfig::paper_defaults()),
            gpus: 1,
            beam: BeamIntensity::Low,
            seed: 2023,
            objectives: a4nn_core::ObjectiveSet::default(),
        };
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        A4nnWorkflow::new(cfg).run(&factory).commons
    })
}

fn repo() -> ModelRepo {
    ModelRepo::from_commons(commons(), None).expect("search run must yield a servable front")
}

/// Stall a connection with half a frame on the wire; serve a healthy
/// client meanwhile; require the healthy answer promptly and the
/// stalled socket closed at the deadline.
fn stalled_client_is_reaped_without_blocking_others(io: IoMode) {
    const IDLE: Duration = Duration::from_millis(400);
    let serving = repo();
    let metrics = Arc::new(MetricsRegistry::new());
    let cfg = ServeConfig {
        batcher: BatcherConfig::default(),
        io,
        idle_timeout: IDLE,
        ..ServeConfig::default()
    };
    // Session budget 2: the stalled connection and the healthy one.
    let handle = ServeServer::spawn("127.0.0.1:0", serving, cfg, metrics, 2)
        .expect("spawning the in-process serve endpoint");
    let addr = handle.addr().to_string();

    // The stalled client: half a Hello frame, then silence.
    let mut stalled = TcpStream::connect(&addr).expect("stalled client connects");
    let frame = encode(&ServeRequest::Hello { version: 1 }).expect("encoding Hello");
    stalled
        .write_all(&frame[..frame.len() / 2])
        .expect("sending the partial frame");
    stalled.flush().expect("flushing the partial frame");

    // The healthy client, with the stall already in progress: full
    // service, promptly — the stalled peer costs it nothing.
    let healthy_started = Instant::now();
    let mut client = ServeClient::connect(&addr).expect("healthy client connects");
    let menu = client.models().expect("menu while another client stalls");
    let default = menu
        .iter()
        .find(|m| m.default)
        .expect("a served front has a default model");
    let len = default.input_channels * 8 * 8;
    let answer = client
        .classify(None, default.input_channels, 8, 8, vec![0.25; len])
        .expect("classification while another client stalls");
    assert_eq!(answer.logits.len(), default.num_classes);
    let healthy_elapsed = healthy_started.elapsed();
    assert!(
        healthy_elapsed < IDLE,
        "--io {}: the healthy client waited {healthy_elapsed:?} — it was \
         blocked behind the stalled one",
        io.as_str()
    );
    client.goodbye().expect("clean goodbye");

    // The server must close the stalled connection at the idle
    // deadline: its socket reaches EOF without us ever completing the
    // frame.
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("setting the probe timeout");
    let reap_started = Instant::now();
    let mut probe = [0u8; 16];
    let n = stalled
        .read(&mut probe)
        .expect("the server closes the socket rather than leaving it hanging");
    assert_eq!(
        n,
        0,
        "--io {}: expected EOF on the stalled socket, got {n} byte(s)",
        io.as_str()
    );
    let reaped_after = reap_started.elapsed();
    assert!(
        reaped_after < Duration::from_secs(20),
        "--io {}: the stalled connection outlived the idle deadline by {reaped_after:?}",
        io.as_str()
    );

    // Both sessions count against the budget, so the server exits.
    handle.join().expect("server drains its session budget");
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_reaps_stalled_clients_without_blocking_others() {
    stalled_client_is_reaped_without_blocking_others(IoMode::Reactor);
}

#[test]
fn threads_reap_stalled_clients_without_blocking_others() {
    stalled_client_is_reaped_without_blocking_others(IoMode::Threads);
}
