//! Serve-vs-direct equivalence: an answer that rode a micro-batch is
//! bitwise identical to evaluating that request alone, and admission
//! control degrades typed — never by corrupting accepted work.
//!
//! The reference commons is a real (surrogate-scale) search run, so the
//! served Pareto front exercises the same genome-decode → network-build
//! path production serving uses.

use a4nn_core::prelude::*;
use a4nn_net::{read_message, write_message, PROTOCOL_VERSION};
use a4nn_nn::{Tensor4, Workspace};
use a4nn_serve::{
    Batcher, BatcherConfig, ModelRepo, ServeClient, ServeConfig, ServeRequest, ServeResponse,
    ServeServer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

/// Request shapes mixed into the load: batching groups by shape, so a
/// mixed stream forces batch splits and remainders.
const SHAPES: [(usize, usize); 3] = [(8, 8), (12, 12), (8, 16)];

fn commons() -> &'static DataCommons {
    static COMMONS: OnceLock<DataCommons> = OnceLock::new();
    COMMONS.get_or_init(|| {
        let cfg = WorkflowConfig {
            nas: NasSettings {
                population: 6,
                offspring: 6,
                generations: 2,
                ..NasSettings::paper_defaults()
            },
            engine: Some(EngineConfig::paper_defaults()),
            gpus: 2,
            beam: BeamIntensity::Low,
            seed: 2023,
            objectives: a4nn_core::ObjectiveSet::default(),
        };
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        A4nnWorkflow::new(cfg).run(&factory).commons
    })
}

fn repo() -> ModelRepo {
    ModelRepo::from_commons(commons(), None).expect("search run must yield a servable front")
}

fn pixels(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// The serving tie rule: argmax, ties to the lower index.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, v) in row.iter().enumerate().skip(1) {
        if v.total_cmp(&row[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

/// Forward one recorded request alone (batch of one) and return its
/// logits — the reference every served answer must match bitwise.
fn direct_logits(
    nets: &mut [a4nn_nn::Network],
    idx: usize,
    channels: usize,
    h: usize,
    w: usize,
    pix: Vec<f32>,
    ws: &mut Workspace,
) -> Vec<f32> {
    let x = Tensor4::from_vec(1, channels, h, w, pix);
    let logits = nets[idx].forward_ws(&x, false, ws);
    let row = logits.row(0).to_vec();
    ws.give2(logits);
    row
}

#[test]
fn micro_batched_responses_match_single_request_eval_bitwise() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 24;

    let serving = repo();
    let menu = serving.infos();
    let cfg = ServeConfig {
        batcher: BatcherConfig {
            max_batch: 4,
            queue_cap: 256,
            workers: 2,
            ..BatcherConfig::default()
        },
        ..ServeConfig::default()
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let handle = ServeServer::spawn("127.0.0.1:0", serving, cfg, Arc::clone(&metrics), CLIENTS)
        .expect("spawning the in-process serve endpoint");
    let addr = handle.addr().to_string();

    // Concurrent clients, each cycling model picks and shapes, recording
    // every (request, response) pair for offline comparison.
    type Recorded = (u64, usize, usize, usize, Vec<f32>, usize, Vec<f32>);
    let recorded: Vec<Recorded> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let menu = &menu;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(&addr).unwrap();
                    let mut rng = StdRng::seed_from_u64(7000 + c as u64);
                    let mut out = Vec::with_capacity(REQUESTS);
                    for r in 0..REQUESTS {
                        // Alternate explicit picks with the default model.
                        let pick = if r % 3 == 0 {
                            None
                        } else {
                            Some(menu[(c + r) % menu.len()].model_id)
                        };
                        let channels = match pick {
                            Some(id) => {
                                menu.iter()
                                    .find(|m| m.model_id == id)
                                    .unwrap()
                                    .input_channels
                            }
                            None => menu.iter().find(|m| m.default).unwrap().input_channels,
                        };
                        let (h, w) = SHAPES[(c + r) % SHAPES.len()];
                        let pix = pixels(&mut rng, channels * h * w);
                        let answer = client
                            .classify(pick, channels, h, w, pix.clone())
                            .expect("well-formed request under an uncapped queue");
                        out.push((
                            answer.model_id,
                            channels,
                            h,
                            w,
                            pix,
                            answer.class,
                            answer.logits,
                        ));
                    }
                    client.goodbye().unwrap();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    handle.join().expect("server drains its session budget");
    assert_eq!(recorded.len(), CLIENTS * REQUESTS);

    // Reference: an identically-loaded repo, every request evaluated
    // alone. Micro-batching must be unobservable in the bytes.
    let (infos, default_idx, mut nets) = repo().into_parts();
    let mut ws = Workspace::new();
    for (i, (model_id, channels, h, w, pix, class, logits)) in recorded.into_iter().enumerate() {
        let idx = infos
            .iter()
            .position(|m| m.model_id == model_id)
            .expect("response names a served model");
        let direct = direct_logits(&mut nets, idx, channels, h, w, pix, &mut ws);
        assert_eq!(
            logits.len(),
            direct.len(),
            "request {i}: logit arity diverged"
        );
        assert!(
            logits.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()),
            "request {i} (model {model_id}, {channels}x{h}x{w}): served logits {logits:?} != direct {direct:?}"
        );
        assert_eq!(class, argmax(&direct), "request {i}: class diverged");
    }
    // A default pick resolves to the best-by-fitness model.
    assert!(infos[default_idx].default);

    // The load left its trace in the registry: every request counted,
    // batched, measured.
    let snap = metrics.snapshot();
    let json = snap.to_json().unwrap();
    let text = String::from_utf8(json).unwrap();
    for name in ["serve_requests", "serve_batches"] {
        assert!(text.contains(name), "metrics snapshot missing {name}");
    }
}

#[test]
fn saturation_is_typed_and_never_poisons_accepted_requests() {
    let serving = repo();
    let menu = serving.infos();
    let default = menu.iter().find(|m| m.default).unwrap().clone();
    let metrics = Arc::new(MetricsRegistry::new());
    let batcher = Batcher::start(
        serving,
        BatcherConfig {
            max_batch: 1,
            queue_cap: 1,
            workers: 1,
            ..BatcherConfig::default()
        },
        Arc::clone(&metrics),
    )
    .unwrap();

    // Submit far faster than one worker can evaluate 16x16 forward
    // passes: with a single-slot queue the burst must overrun admission.
    let (h, w) = (16usize, 16usize);
    let len = default.input_channels * h * w;
    let mut rng = StdRng::seed_from_u64(99);
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..400 {
        let pix = pixels(&mut rng, len);
        match batcher.submit(None, default.input_channels, h, w, pix.clone()) {
            Ok(rx) => accepted.push((pix, rx)),
            Err(A4nnError::Saturated(reason)) => {
                assert_eq!(A4nnError::Saturated(reason).exit_code(), 11);
                rejected += 1;
            }
            Err(other) => panic!("only Saturated may reject a well-formed request: {other}"),
        }
    }
    assert!(
        rejected > 0,
        "a 400-request burst into a 1-slot queue must saturate"
    );
    assert!(!accepted.is_empty(), "admission must still accept work");

    // Every accepted request is answered, and answered exactly as a
    // single-request evaluation would.
    let (infos, _, mut nets) = repo().into_parts();
    let idx = infos.iter().position(|m| m.default).unwrap();
    let mut ws = Workspace::new();
    for (pix, rx) in accepted {
        let answer = rx.recv().expect("accepted requests are always answered");
        assert_eq!(answer.model_id, default.model_id);
        let direct = direct_logits(&mut nets, idx, default.input_channels, h, w, pix, &mut ws);
        assert!(
            answer
                .logits
                .iter()
                .zip(&direct)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "an answer served under saturation pressure diverged from direct eval"
        );
    }
    drop(batcher);

    // The registry kept honest books: accepted + rejected == offered.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("serve_requests") + snap.counter("serve_rejected"),
        400,
        "admission accounting must partition the offered load"
    );
}

#[test]
fn menu_matches_the_commons_pareto_front_and_picker_validates() {
    let serving = repo();
    let expected = serving.infos();
    let metrics = Arc::new(MetricsRegistry::new());
    let handle =
        ServeServer::spawn("127.0.0.1:0", serving, ServeConfig::default(), metrics, 1).unwrap();

    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    assert_eq!(client.model_count(), expected.len());
    let menu = client.models().unwrap();
    assert_eq!(menu.len(), expected.len());
    for (got, want) in menu.iter().zip(&expected) {
        assert_eq!(got.model_id, want.model_id);
        assert_eq!(got.input_channels, want.input_channels);
        assert_eq!(got.num_classes, want.num_classes);
        assert_eq!(got.default, want.default);
        assert_eq!(got.fitness.to_bits(), want.fitness.to_bits());
    }
    assert_eq!(
        menu.iter().filter(|m| m.default).count(),
        1,
        "exactly one default model"
    );

    // An off-menu model id and a malformed pixel payload are refused as
    // request errors, not rejections and not dropped connections.
    let c = menu[0].input_channels;
    let err = client
        .classify(Some(u64::MAX), c, 8, 8, vec![0.0; c * 64])
        .unwrap_err();
    assert!(
        matches!(err, A4nnError::Config(ref m) if m.contains("not on the served Pareto front"))
    );
    let err = client.classify(None, c, 8, 8, vec![0.0; 3]).unwrap_err();
    assert!(matches!(err, A4nnError::Config(_)), "bad payload: {err}");
    // The session survives both errors.
    let answer = client.classify(None, c, 8, 8, vec![0.5; c * 64]).unwrap();
    assert_eq!(answer.logits.len(), menu[0].num_classes);
    client.goodbye().unwrap();
    handle.join().unwrap();
}

#[test]
fn foreign_protocol_revision_is_refused_at_handshake() {
    let handle = ServeServer::spawn(
        "127.0.0.1:0",
        repo(),
        ServeConfig::default(),
        Arc::new(MetricsRegistry::new()),
        1,
    )
    .unwrap();

    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut writer = stream;
    write_message(
        &mut writer,
        &ServeRequest::Hello {
            version: PROTOCOL_VERSION + 1,
        },
    )
    .unwrap();
    match read_message::<_, ServeResponse>(&mut reader).unwrap() {
        Some(ServeResponse::Refused { reason }) => {
            assert!(
                reason.contains("version"),
                "refusal names the cause: {reason}"
            );
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    // The server drops the session after refusing; its budget is spent.
    handle.join().unwrap();
}

#[test]
fn an_unservable_commons_is_a_typed_config_error() {
    let empty = DataCommons::new(Vec::new());
    let err = match ModelRepo::from_commons(&empty, None) {
        Ok(_) => panic!("an empty commons must not yield a servable repo"),
        Err(e) => e,
    };
    assert!(matches!(err, A4nnError::Config(_)), "{err}");
    assert_eq!(err.exit_code(), 3);
}
