//! Property tests for the micro-batcher: for *any* mix of batch size,
//! worker count, request shapes, model picks, and submission
//! interleaving, every answer is bitwise identical to evaluating that
//! request alone.
//!
//! This is the serving restatement of the workspace-determinism
//! property: eval-mode forward is per-sample independent, so how the
//! batcher chunks the queue (full batches, remainders, shape splits) and
//! which worker runs a batch must be unobservable in the bytes.

use a4nn_core::prelude::*;
use a4nn_nn::{Tensor4, Workspace};
use a4nn_serve::{Batcher, BatcherConfig, ModelRepo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

const SHAPES: [(usize, usize); 4] = [(8, 8), (10, 10), (8, 12), (16, 8)];

fn commons() -> &'static DataCommons {
    static COMMONS: OnceLock<DataCommons> = OnceLock::new();
    COMMONS.get_or_init(|| {
        let cfg = WorkflowConfig {
            nas: NasSettings {
                population: 6,
                offspring: 6,
                generations: 2,
                ..NasSettings::paper_defaults()
            },
            engine: Some(EngineConfig::paper_defaults()),
            gpus: 2,
            beam: BeamIntensity::Low,
            seed: 2023,
            objectives: a4nn_core::ObjectiveSet::default(),
        };
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        A4nnWorkflow::new(cfg).run(&factory).commons
    })
}

/// One generated request: which model, what shape, which pixels.
struct Req {
    pick: Option<u64>,
    channels: usize,
    h: usize,
    w: usize,
    pixels: Vec<f32>,
}

fn generate_requests(n: usize, seed: u64, menu: &[a4nn_serve::ModelInfo]) -> Vec<Req> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pick = if rng.gen_range(0usize..3) == 0 {
                None
            } else {
                Some(menu[rng.gen_range(0usize..menu.len())].model_id)
            };
            let channels = match pick {
                Some(id) => {
                    menu.iter()
                        .find(|m| m.model_id == id)
                        .unwrap()
                        .input_channels
                }
                None => menu.iter().find(|m| m.default).unwrap().input_channels,
            };
            let (h, w) = SHAPES[rng.gen_range(0usize..SHAPES.len())];
            let pixels = (0..channels * h * w)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect();
            Req {
                pick,
                channels,
                h,
                w,
                pixels,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_interleaving_of_the_batcher_matches_direct_eval(
        max_batch in 1usize..7,
        workers in 1usize..4,
        n_requests in 1usize..28,
        submitters in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let repo = ModelRepo::from_commons(commons(), None).unwrap();
        let menu = repo.infos();
        let batcher = Batcher::start(
            repo,
            BatcherConfig {
                max_batch,
                // The property under test is chunking, not admission:
                // size the queue so nothing is rejected.
                queue_cap: n_requests.max(1) * 2,
                workers,
                ..BatcherConfig::default()
            },
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();

        let requests = generate_requests(n_requests, seed, &menu);

        // Split the stream across concurrent submitter threads so the
        // queue sees genuinely interleaved arrival orders, then block
        // for every reply.
        let answers: Vec<(usize, a4nn_serve::Classification)> = std::thread::scope(|scope| {
            let chunk = n_requests.div_ceil(submitters);
            let handles: Vec<_> = requests
                .chunks(chunk.max(1))
                .enumerate()
                .map(|(t, part)| {
                    let batcher = &batcher;
                    scope.spawn(move || {
                        part.iter()
                            .enumerate()
                            .map(|(i, r)| {
                                let answer = batcher
                                    .classify(r.pick, r.channels, r.h, r.w, r.pixels.clone())
                                    .expect("uncapped queue accepts every request");
                                (t * chunk.max(1) + i, answer)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread"))
                .collect()
        });
        drop(batcher);
        prop_assert_eq!(answers.len(), n_requests);

        // Reference repo: same commons, same deterministic rebuild.
        let (infos, default_idx, mut nets) = ModelRepo::from_commons(commons(), None)
            .unwrap()
            .into_parts();
        let mut ws = Workspace::new();
        for (i, answer) in answers {
            let r = &requests[i];
            let expected_idx = match r.pick {
                Some(id) => infos.iter().position(|m| m.model_id == id).unwrap(),
                None => default_idx,
            };
            prop_assert_eq!(answer.model_id, infos[expected_idx].model_id);
            let x = Tensor4::from_vec(1, r.channels, r.h, r.w, r.pixels.clone());
            let logits = nets[expected_idx].forward_ws(&x, false, &mut ws);
            let direct = logits.row(0);
            prop_assert_eq!(answer.logits.len(), direct.len());
            for (a, b) in answer.logits.iter().zip(direct) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "request {} under max_batch={} workers={} diverged", i, max_batch, workers);
            }
            ws.give2(logits);
        }
    }
}
