//! Pre-registry compatibility: a commons written before the objective
//! registry existed (no objective columns, no objective fields in the
//! record trails) must still load, serve the same Pareto menu it always
//! did, and export the same 14-column `models.csv`.
//!
//! The fixtures under `tests/fixtures/` were produced by a pre-refactor
//! build (6+6×1 surrogate run, low beam, seed 2023) and are committed
//! verbatim; they pin the fallback path against drift.

use a4nn_lineage::{models_csv, DataCommons};
use a4nn_serve::ModelRepo;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

#[test]
fn legacy_commons_serves_the_reconstructed_pair() {
    let repo = ModelRepo::load(&fixture("legacy_commons")).expect("legacy commons must load");
    assert!(!repo.models().is_empty(), "fixture front must be non-empty");
    for info in repo.infos() {
        // Pre-registry records carry no objective columns; the menu must
        // fall back to the reconstructed (neg_fitness, flops) pair.
        assert_eq!(info.objective_names, vec!["neg_fitness", "flops"]);
        assert_eq!(info.objective_values.len(), 2);
        assert_eq!(info.objective_values[0], -info.fitness);
        assert_eq!(info.objective_values[1], info.flops);
    }
}

#[test]
fn legacy_commons_menu_matches_the_legacy_front() {
    // The objective-vector front over untagged records must reproduce
    // the historical fitness/FLOPs front exactly: same models, same
    // default pick.
    let commons = DataCommons::load_dir(&fixture("legacy_commons")).unwrap();
    let repo = ModelRepo::from_commons(&commons, None).unwrap();
    let legacy_front: Vec<u64> = {
        let analyzer = a4nn_lineage::Analyzer::new(&commons);
        let mut ids: Vec<u64> = analyzer
            .pareto_front()
            .iter()
            .filter(|r| !r.failed() && !r.final_fitness.is_nan())
            .map(|r| r.model_id)
            .collect();
        ids.sort_unstable();
        ids
    };
    let served: Vec<u64> = repo.infos().iter().map(|m| m.model_id).collect();
    assert_eq!(served, legacy_front);
}

#[test]
fn legacy_commons_exports_the_14_column_csv_byte_identical() {
    // Loading a pre-refactor commons and re-exporting it must produce
    // the exact CSV the pre-refactor build wrote: headers, column count,
    // and every byte of every row.
    let commons = DataCommons::load_dir(&fixture("legacy_commons")).unwrap();
    let exported = models_csv(&commons);
    let committed = std::fs::read_to_string(fixture("legacy_models.csv")).unwrap();
    assert_eq!(
        exported, committed,
        "legacy commons must round-trip to the committed pre-refactor models.csv"
    );
    let header = exported.lines().next().unwrap();
    assert_eq!(header.split(',').count(), 14, "legacy schema is 14 columns");
    assert!(
        !header.contains("obj_"),
        "no objective columns for legacy runs"
    );
}
