//! # a4nn-faults — deterministic fault-injection plans
//!
//! Test support for the A4NN fault-tolerance layer: a [`FaultPlan`] is a
//! seeded, deterministic schedule of faults that both orchestration
//! modes (`Direct` and `Bus`) accept and replay identically, so the
//! chaos suite can assert that the two coupling mechanisms survive the
//! same faults with byte-identical surviving-model commons.
//!
//! Fault classes ([`FaultEvent`]):
//!
//! - [`PanicAt`](FaultEvent::PanicAt) — a trainer panics at the start of
//!   a given epoch, for the first `failures` attempts of the model (so a
//!   retry policy with more attempts than `failures` recovers it);
//! - [`StallFor`](FaultEvent::StallFor) — a trainer stalls (real wall
//!   time only; simulated durations are untouched, so results must not
//!   change);
//! - [`EngineDrop`](FaultEvent::EngineDrop) — the prediction engine
//!   crashes for one model from a given epoch on; training degrades to
//!   run-to-completion (standalone semantics) instead of deadlocking;
//! - [`SubscriberLag`](FaultEvent::SubscriberLag) — a slow lossy
//!   bus subscriber rides along (bus mode only); isolation demands it
//!   never perturbs results;
//! - [`WorkerDrop`](FaultEvent::WorkerDrop) — a remote worker drops its
//!   coordinator connection mid-job (socket mode only); the coordinator
//!   must requeue the job elsewhere with identical results;
//! - [`WorkerStall`](FaultEvent::WorkerStall) — a remote worker mutes
//!   its heartbeats past the coordinator's deadline (socket mode only).
//!
//! Plans are plain data (no clocks, no globals): injection sites query
//! the plan with `(model, epoch, attempt)` and the plan answers purely,
//! which is what makes a fault schedule replayable across orchestration
//! modes and across reruns.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The trainer of `model` panics when it reaches `epoch`, on every
    /// attempt up to and including `failures` (1-based attempts).
    PanicAt {
        /// Model id the fault targets.
        model: u64,
        /// 1-based epoch at which the panic fires (before training it).
        epoch: u32,
        /// Number of leading attempts that fail; attempt `failures + 1`
        /// proceeds normally.
        failures: u32,
    },
    /// The trainer of `model` sleeps `millis` of real time before
    /// training `epoch`. Wall-clock noise only — simulated durations and
    /// therefore all recorded results are unaffected.
    StallFor {
        /// Model id the fault targets.
        model: u64,
        /// 1-based epoch before which the stall happens.
        epoch: u32,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The prediction engine crashes for `model` at `epoch`: from that
    /// epoch on the model trains without an engine (no predictions, no
    /// early termination), with engine stats frozen at the crash point.
    EngineDrop {
        /// Model id the fault targets.
        model: u64,
        /// 1-based epoch from which the engine is gone.
        epoch: u32,
    },
    /// A slow, lossy subscriber (DropOldest with `capacity`, consuming
    /// one event per `delay_millis`) is attached to the bus for the whole
    /// run. Direct mode has no bus and ignores it; results must be
    /// identical either way.
    SubscriberLag {
        /// Queue capacity of the laggard's subscription.
        capacity: usize,
        /// Real milliseconds the laggard sleeps per consumed event.
        delay_millis: u64,
    },
    /// The worker process training `model` drops its coordinator
    /// connection when training reaches `epoch`, for the first `drops`
    /// *dispatch* attempts of the job (1-based). The coordinator must
    /// requeue the job onto another worker; in-process transports have
    /// no connection to drop and ignore it, so results are identical.
    WorkerDrop {
        /// Model id whose job triggers the drop.
        model: u64,
        /// 1-based epoch at which the connection drops.
        epoch: u32,
        /// Number of leading dispatch attempts that drop; dispatch
        /// attempt `drops + 1` trains through normally.
        drops: u32,
    },
    /// The worker process training `model` mutes its heartbeats for
    /// `millis` of real time when training reaches `epoch`, so a
    /// coordinator with a shorter heartbeat deadline declares it dead.
    /// Simulated durations are untouched; in-process transports have no
    /// heartbeats and ignore it.
    WorkerStall {
        /// Model id whose job triggers the stall.
        model: u64,
        /// 1-based epoch at which the heartbeat goes quiet.
        epoch: u32,
        /// Real milliseconds the worker stays silent.
        millis: u64,
    },
}

/// A deterministic schedule of faults for one workflow run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Parameters for [`FaultPlan::seeded`]: which fault classes to draw and
/// how aggressively.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Model-id range the plan may target (`0..models`).
    pub models: u64,
    /// Highest epoch a fault may be scheduled at (inclusive, ≥ 1).
    pub max_epoch: u32,
    /// Probability that a model gets a `PanicAt` fault.
    pub panic_rate: f64,
    /// Leading failures per `PanicAt` are drawn from `1..=max_failures`.
    pub max_failures: u32,
    /// Probability that a model gets a `StallFor` fault.
    pub stall_rate: f64,
    /// Probability that a model gets an `EngineDrop` fault.
    pub engine_drop_rate: f64,
    /// Whether to attach a `SubscriberLag` fault.
    pub subscriber_lag: bool,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            models: 16,
            max_epoch: 8,
            panic_rate: 0.25,
            max_failures: 2,
            stall_rate: 0.15,
            engine_drop_rate: 0.1,
            subscriber_lag: true,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no faults, byte-identical happy-path behaviour.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit fault list.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled faults.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Draw a random plan from `spec`, deterministically per `seed`.
    pub fn seeded(seed: u64, spec: &ChaosSpec) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let max_epoch = spec.max_epoch.max(1);
        for model in 0..spec.models {
            if spec.panic_rate > 0.0 && rng.gen_bool(spec.panic_rate) {
                events.push(FaultEvent::PanicAt {
                    model,
                    epoch: rng.gen_range(1..=max_epoch),
                    failures: rng.gen_range(1..=spec.max_failures.max(1)),
                });
            }
            if spec.stall_rate > 0.0 && rng.gen_bool(spec.stall_rate) {
                events.push(FaultEvent::StallFor {
                    model,
                    epoch: rng.gen_range(1..=max_epoch),
                    millis: rng.gen_range(1..=5u64),
                });
            }
            if spec.engine_drop_rate > 0.0 && rng.gen_bool(spec.engine_drop_rate) {
                events.push(FaultEvent::EngineDrop {
                    model,
                    epoch: rng.gen_range(1..=max_epoch),
                });
            }
        }
        if spec.subscriber_lag {
            events.push(FaultEvent::SubscriberLag {
                capacity: rng.gen_range(1..=4usize),
                delay_millis: 1,
            });
        }
        FaultPlan { events }
    }

    /// Should `model`'s `attempt` (1-based) panic at the start of
    /// `epoch`?
    pub fn panic_due(&self, model: u64, epoch: u32, attempt: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::PanicAt { model: m, epoch: ep, failures }
                if *m == model && *ep == epoch && attempt <= *failures)
        })
    }

    /// Total scheduled stall before `model`'s `epoch`, in milliseconds.
    pub fn stall_millis(&self, model: u64, epoch: u32) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::StallFor {
                    model: m,
                    epoch: ep,
                    millis,
                } if *m == model && *ep == epoch => Some(*millis),
                _ => None,
            })
            .sum()
    }

    /// Whether the engine is (injected-)crashed for `model` at `epoch`.
    pub fn engine_dropped(&self, model: u64, epoch: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::EngineDrop { model: m, epoch: ep }
                if *m == model && epoch >= *ep)
        })
    }

    /// Whether the plan schedules any engine crash at all.
    pub fn has_engine_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::EngineDrop { .. }))
    }

    /// The laggard-subscriber fault, if scheduled: `(capacity,
    /// delay_millis)`.
    pub fn subscriber_lag(&self) -> Option<(usize, u64)> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::SubscriberLag {
                capacity,
                delay_millis,
            } => Some((*capacity, *delay_millis)),
            _ => None,
        })
    }

    /// Highest attempt the plan can fail for any single `(model, epoch)`
    /// site — a retry policy needs strictly more attempts than this to
    /// guarantee every model survives.
    pub fn max_failures(&self) -> u32 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::PanicAt { failures, .. } => Some(*failures),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Should the worker drop its coordinator connection when `model`'s
    /// job (on dispatch `attempt`, 1-based) reaches `epoch`?
    pub fn worker_drop_due(&self, model: u64, epoch: u32, attempt: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::WorkerDrop { model: m, epoch: ep, drops }
                if *m == model && *ep == epoch && attempt <= *drops)
        })
    }

    /// Total scheduled heartbeat silence when `model` reaches `epoch`,
    /// in real milliseconds.
    pub fn worker_stall_millis(&self, model: u64, epoch: u32) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::WorkerStall {
                    model: m,
                    epoch: ep,
                    millis,
                } if *m == model && *ep == epoch => Some(*millis),
                _ => None,
            })
            .sum()
    }

    /// Whether the plan schedules any worker-side (connection/heartbeat)
    /// fault at all.
    pub fn has_worker_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::WorkerDrop { .. } | FaultEvent::WorkerStall { .. }
            )
        })
    }

    /// Highest dispatch attempt any single `WorkerDrop` site can kill —
    /// the coordinator needs strictly more dispatch attempts than this
    /// (plus a live worker) to guarantee the job completes somewhere.
    pub fn max_worker_drops(&self) -> u32 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::WorkerDrop { drops, .. } => Some(*drops),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.panic_due(0, 1, 1));
        assert_eq!(p.stall_millis(0, 1), 0);
        assert!(!p.engine_dropped(0, 25));
        assert!(p.subscriber_lag().is_none());
        assert_eq!(p.max_failures(), 0);
    }

    #[test]
    fn panic_gates_on_attempt_count() {
        let p = FaultPlan::new(vec![FaultEvent::PanicAt {
            model: 3,
            epoch: 5,
            failures: 2,
        }]);
        assert!(p.panic_due(3, 5, 1));
        assert!(p.panic_due(3, 5, 2));
        assert!(!p.panic_due(3, 5, 3));
        assert!(!p.panic_due(3, 4, 1));
        assert!(!p.panic_due(2, 5, 1));
        assert_eq!(p.max_failures(), 2);
    }

    #[test]
    fn engine_drop_is_sticky_from_its_epoch() {
        let p = FaultPlan::new(vec![FaultEvent::EngineDrop { model: 1, epoch: 4 }]);
        assert!(!p.engine_dropped(1, 3));
        assert!(p.engine_dropped(1, 4));
        assert!(p.engine_dropped(1, 25));
        assert!(!p.engine_dropped(2, 4));
        assert!(p.has_engine_faults());
    }

    #[test]
    fn stalls_sum_per_site() {
        let p = FaultPlan::new(vec![
            FaultEvent::StallFor {
                model: 0,
                epoch: 2,
                millis: 3,
            },
            FaultEvent::StallFor {
                model: 0,
                epoch: 2,
                millis: 4,
            },
        ]);
        assert_eq!(p.stall_millis(0, 2), 7);
        assert_eq!(p.stall_millis(0, 3), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let spec = ChaosSpec::default();
        let a = FaultPlan::seeded(2023, &spec);
        let b = FaultPlan::seeded(2023, &spec);
        let c = FaultPlan::seeded(7, &spec);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn seeded_plans_respect_the_spec_bounds() {
        let spec = ChaosSpec {
            models: 32,
            max_epoch: 6,
            max_failures: 3,
            ..ChaosSpec::default()
        };
        let p = FaultPlan::seeded(11, &spec);
        for e in p.events() {
            match e {
                FaultEvent::PanicAt {
                    model,
                    epoch,
                    failures,
                } => {
                    assert!(*model < 32);
                    assert!((1..=6).contains(epoch));
                    assert!((1..=3).contains(failures));
                }
                FaultEvent::StallFor { model, epoch, .. }
                | FaultEvent::EngineDrop { model, epoch } => {
                    assert!(*model < 32);
                    assert!((1..=6).contains(epoch));
                }
                FaultEvent::SubscriberLag { capacity, .. } => assert!(*capacity >= 1),
                FaultEvent::WorkerDrop { .. } | FaultEvent::WorkerStall { .. } => {
                    panic!("seeded plans never schedule worker-side faults")
                }
            }
        }
    }

    #[test]
    fn worker_drop_gates_on_dispatch_attempt() {
        let p = FaultPlan::new(vec![FaultEvent::WorkerDrop {
            model: 4,
            epoch: 3,
            drops: 2,
        }]);
        assert!(p.worker_drop_due(4, 3, 1));
        assert!(p.worker_drop_due(4, 3, 2));
        assert!(!p.worker_drop_due(4, 3, 3));
        assert!(!p.worker_drop_due(4, 2, 1));
        assert!(!p.worker_drop_due(5, 3, 1));
        assert!(p.has_worker_faults());
        assert_eq!(p.max_worker_drops(), 2);
        // Worker faults are invisible to the in-process injection sites.
        assert!(!p.panic_due(4, 3, 1));
        assert_eq!(p.stall_millis(4, 3), 0);
        assert_eq!(p.max_failures(), 0);
    }

    #[test]
    fn worker_stalls_sum_per_site() {
        let p = FaultPlan::new(vec![
            FaultEvent::WorkerStall {
                model: 1,
                epoch: 2,
                millis: 40,
            },
            FaultEvent::WorkerStall {
                model: 1,
                epoch: 2,
                millis: 60,
            },
        ]);
        assert_eq!(p.worker_stall_millis(1, 2), 100);
        assert_eq!(p.worker_stall_millis(1, 3), 0);
        assert!(p.has_worker_faults());
        assert_eq!(p.max_worker_drops(), 0);
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let p = FaultPlan::seeded(5, &ChaosSpec::default());
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
