//! # a4nn-xpsi — the XPSI baseline framework
//!
//! The paper's state-of-the-art comparator (§4.4) is XPSI (Olaya et al.,
//! e-Science 2022): a traditional machine-learning pipeline that extracts
//! features from diffraction patterns with an **autoencoder** and
//! classifies protein properties with **k-nearest neighbors** on the
//! latent codes. This crate reimplements that pipeline from scratch on the
//! `a4nn-nn` substrate so Table 3 (A4NN vs XPSI wall time and accuracy)
//! can be regenerated.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod autoencoder;
pub mod knn;
pub mod pipeline;

pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use knn::KnnClassifier;
pub use pipeline::{XpsiConfig, XpsiFramework, XpsiResult};
