//! The full XPSI pipeline: autoencoder training → latent encoding → kNN
//! classification, with wall-time measurement for Table 3.

use crate::autoencoder::{Autoencoder, AutoencoderConfig};
use crate::knn::KnnClassifier;
use a4nn_nn::tensor::Tensor2;
use a4nn_nn::Dataset;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct XpsiConfig {
    /// Autoencoder training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Neighbors for classification (XPSI uses a small odd k).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
    /// Autoencoder widths; `None` derives them from the image size.
    pub autoencoder: Option<AutoencoderConfig>,
}

impl Default for XpsiConfig {
    fn default() -> Self {
        XpsiConfig {
            epochs: 20,
            batch_size: 32,
            k: 5,
            seed: 0,
            autoencoder: None,
        }
    }
}

/// Outcome of one XPSI run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XpsiResult {
    /// Test classification accuracy (%).
    pub accuracy: f64,
    /// Training accuracy (%), for overfitting diagnostics.
    pub train_accuracy: f64,
    /// Measured wall seconds for the whole pipeline.
    pub wall_seconds: f64,
    /// Final mean reconstruction error of the autoencoder.
    pub reconstruction_error: f32,
    /// Latent dimensionality used.
    pub latent_dim: usize,
}

/// The framework object.
#[derive(Debug, Clone, Default)]
pub struct XpsiFramework {
    config: XpsiConfig,
}

fn dataset_as_matrix(d: &Dataset) -> Tensor2 {
    Tensor2::from_vec(d.len(), d.sample_stride(), d.images.clone())
}

impl XpsiFramework {
    /// New framework with the given configuration.
    pub fn new(config: XpsiConfig) -> Self {
        XpsiFramework { config }
    }

    /// Train on `train`, evaluate on `test`.
    pub fn run(&self, train: &Dataset, test: &Dataset) -> XpsiResult {
        assert!(!train.is_empty(), "XPSI needs training data");
        let t0 = Instant::now();
        let dim = train.sample_stride();
        let ae_config = self
            .config
            .autoencoder
            .unwrap_or_else(|| AutoencoderConfig::for_input(dim));
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut ae = Autoencoder::new(ae_config, &mut rng);

        // Unsupervised feature learning.
        for _ in 0..self.config.epochs {
            for (batch, _) in train.shuffled_batches(self.config.batch_size, &mut rng) {
                let flat = Tensor2::from_vec(batch.n, dim, batch.data().to_vec());
                let _ = ae.train_batch(&flat);
            }
        }
        let train_matrix = dataset_as_matrix(train);
        let reconstruction_error = ae.reconstruction_error(&train_matrix);

        // Encode and classify.
        let train_latent = ae.encode(&train_matrix);
        let knn = KnnClassifier::fit(
            self.config.k,
            ae_config.latent_dim,
            train_latent.data().to_vec(),
            train.labels.clone(),
        );
        let train_accuracy = knn.accuracy(train_latent.data(), &train.labels);
        let accuracy = if test.is_empty() {
            0.0
        } else {
            let test_latent = ae.encode(&dataset_as_matrix(test));
            knn.accuracy(test_latent.data(), &test.labels)
        };
        XpsiResult {
            accuracy,
            train_accuracy,
            wall_seconds: t0.elapsed().as_secs_f64(),
            reconstruction_error,
            latent_dim: ae_config.latent_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_xfel::{generate_split, BeamIntensity, XfelConfig};

    #[test]
    fn classifies_high_beam_diffraction_accurately() {
        let (train, test) = generate_split(&XfelConfig::default(), BeamIntensity::High, 150, 1);
        let result = XpsiFramework::new(XpsiConfig {
            epochs: 10,
            ..Default::default()
        })
        .run(&train, &test);
        assert!(
            result.accuracy > 72.0,
            "high-beam XPSI accuracy {}",
            result.accuracy
        );
        assert!(result.wall_seconds > 0.0);
        assert!(result.reconstruction_error.is_finite());
    }

    #[test]
    fn low_beam_is_harder_than_high_beam() {
        let cfg = XfelConfig::default();
        let run = |beam| {
            let (train, test) = generate_split(&cfg, beam, 60, 2);
            XpsiFramework::new(XpsiConfig {
                epochs: 10,
                ..Default::default()
            })
            .run(&train, &test)
            .accuracy
        };
        let low = run(BeamIntensity::Low);
        let high = run(BeamIntensity::High);
        assert!(
            low <= high + 5.0,
            "noise should not help kNN: low {low} vs high {high}"
        );
    }

    #[test]
    fn empty_test_set_reports_zero_accuracy() {
        let (train, _) = generate_split(&XfelConfig::default(), BeamIntensity::High, 10, 3);
        let empty = a4nn_nn::Dataset::empty(1, 16, 16);
        let result = XpsiFramework::new(XpsiConfig {
            epochs: 2,
            ..Default::default()
        })
        .run(&train, &empty);
        assert_eq!(result.accuracy, 0.0);
        assert!(result.train_accuracy > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (train, test) = generate_split(&XfelConfig::default(), BeamIntensity::Medium, 20, 4);
        let cfg = XpsiConfig {
            epochs: 3,
            seed: 9,
            ..Default::default()
        };
        let a = XpsiFramework::new(cfg).run(&train, &test);
        let b = XpsiFramework::new(cfg).run(&train, &test);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.reconstruction_error, b.reconstruction_error);
    }
}
