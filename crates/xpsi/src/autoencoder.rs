//! Dense autoencoder for feature extraction from diffraction patterns.
//!
//! XPSI compresses each image into a low-dimensional latent code with an
//! autoencoder trained to reconstruct its input; the latent codes feed the
//! kNN classifier. Architecture: `d → hidden → latent → hidden → d` with
//! ReLU on the hidden layers and an MSE reconstruction objective.

use a4nn_nn::layers::Dense;
use a4nn_nn::tensor::Tensor2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Autoencoder hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// Input dimensionality (flattened image size).
    pub input_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Latent (feature) width.
    pub latent_dim: usize,
    /// SGD learning rate.
    pub lr: f32,
}

impl AutoencoderConfig {
    /// Defaults scaled for `detector × detector` images.
    pub fn for_input(input_dim: usize) -> Self {
        AutoencoderConfig {
            input_dim,
            hidden_dim: (input_dim / 4).max(16),
            latent_dim: (input_dim / 16).max(8),
            lr: 0.05,
        }
    }
}

/// ReLU on 2-D activations with cached mask (the `a4nn-nn` ReLU is 4-D).
#[derive(Debug, Clone, Default)]
struct Relu2 {
    mask: Vec<bool>,
}

impl Relu2 {
    fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let mut out = x.clone();
        self.mask.clear();
        self.mask.reserve(out.len());
        for v in out.data_mut() {
            let on = *v > 0.0;
            self.mask.push(on);
            if !on {
                *v = 0.0;
            }
        }
        out
    }

    fn backward(&self, grad: &Tensor2) -> Tensor2 {
        let mut g = grad.clone();
        for (v, &on) in g.data_mut().iter_mut().zip(&self.mask) {
            if !on {
                *v = 0.0;
            }
        }
        g
    }
}

/// The trainable autoencoder.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    config: AutoencoderConfig,
    enc1: Dense,
    enc2: Dense,
    dec1: Dense,
    dec2: Dense,
    relu_e: Relu2,
    relu_d: Relu2,
}

impl Autoencoder {
    /// Seeded construction.
    pub fn new<R: Rng + ?Sized>(config: AutoencoderConfig, rng: &mut R) -> Self {
        Autoencoder {
            enc1: Dense::new(config.input_dim, config.hidden_dim, rng),
            enc2: Dense::new(config.hidden_dim, config.latent_dim, rng),
            dec1: Dense::new(config.latent_dim, config.hidden_dim, rng),
            dec2: Dense::new(config.hidden_dim, config.input_dim, rng),
            relu_e: Relu2::default(),
            relu_d: Relu2::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoencoderConfig {
        &self.config
    }

    /// Encode a batch of flattened images into latent codes (inference:
    /// no caches kept for backward).
    pub fn encode(&mut self, x: &Tensor2) -> Tensor2 {
        let h = self.relu_e.forward(&self.enc1.forward(x));
        self.enc2.forward(&h)
    }

    /// Full forward pass returning the reconstruction.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let z = self.encode(x);
        let h = self.relu_d.forward(&self.dec1.forward(&z));
        self.dec2.forward(&h)
    }

    /// One SGD step on a batch: returns the MSE reconstruction loss.
    pub fn train_batch(&mut self, x: &Tensor2) -> f32 {
        let recon = self.forward(x);
        let n = recon.len().max(1) as f32;
        let mut loss = 0.0f32;
        let mut grad = Tensor2::zeros(recon.rows, recon.cols);
        for i in 0..recon.len() {
            let d = recon.data()[i] - x.data()[i];
            loss += d * d;
            grad.data_mut()[i] = 2.0 * d / n;
        }
        loss /= n;
        // Backward through dec2 → ReLU → dec1 → enc2 → ReLU → enc1.
        let g = self.dec2.backward(&grad);
        let g = self.relu_d.backward(&g);
        let g = self.dec1.backward(&g);
        let g = self.enc2.backward(&g);
        let g = self.relu_e.backward(&g);
        let _ = self.enc1.backward(&g);
        let lr = self.config.lr;
        for layer in [
            &mut self.enc1,
            &mut self.enc2,
            &mut self.dec1,
            &mut self.dec2,
        ] {
            layer.visit_params(&mut |p, g| {
                for (pi, gi) in p.iter_mut().zip(g.iter_mut()) {
                    *pi -= lr * *gi;
                    *gi = 0.0;
                }
            });
        }
        loss
    }

    /// Mean reconstruction error on a batch (no training).
    pub fn reconstruction_error(&mut self, x: &Tensor2) -> f32 {
        let recon = self.forward(x);
        let n = recon.len().max(1) as f32;
        recon
            .data()
            .iter()
            .zip(x.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn toy_batch(n: usize, d: usize, seed: u64) -> Tensor2 {
        let mut r = rng(seed);
        let mut t = Tensor2::zeros(n, d);
        for v in t.data_mut() {
            *v = r.gen_range(0.0..1.0);
        }
        t
    }

    #[test]
    fn shapes_flow_through() {
        let cfg = AutoencoderConfig {
            input_dim: 64,
            hidden_dim: 16,
            latent_dim: 4,
            lr: 0.01,
        };
        let mut ae = Autoencoder::new(cfg, &mut rng(1));
        let x = toy_batch(5, 64, 2);
        let z = ae.encode(&x);
        assert_eq!((z.rows, z.cols), (5, 4));
        let recon = ae.forward(&x);
        assert_eq!((recon.rows, recon.cols), (5, 64));
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let cfg = AutoencoderConfig {
            input_dim: 16,
            hidden_dim: 12,
            latent_dim: 6,
            lr: 0.05,
        };
        let mut ae = Autoencoder::new(cfg, &mut rng(3));
        let x = toy_batch(32, 16, 4);
        let before = ae.reconstruction_error(&x);
        for _ in 0..400 {
            let _ = ae.train_batch(&x);
        }
        let after = ae.reconstruction_error(&x);
        assert!(
            after < before * 0.5,
            "reconstruction error {before} -> {after}"
        );
    }

    #[test]
    fn latent_codes_separate_distinct_clusters() {
        // Two well-separated input clusters should remain separated in
        // latent space after training.
        let cfg = AutoencoderConfig {
            input_dim: 8,
            hidden_dim: 8,
            latent_dim: 2,
            lr: 0.05,
        };
        let mut ae = Autoencoder::new(cfg, &mut rng(5));
        let mut x = Tensor2::zeros(16, 8);
        for i in 0..16 {
            for j in 0..8 {
                let base = if i % 2 == 0 { 0.9 } else { 0.1 };
                x.set(i, j, base + (i + j) as f32 * 1e-3);
            }
        }
        for _ in 0..300 {
            let _ = ae.train_batch(&x);
        }
        let z = ae.encode(&x);
        // Mean latent distance between classes exceeds within-class spread.
        let mut centroid = [vec![0.0f32; 2], vec![0.0f32; 2]];
        for i in 0..16 {
            for (j, c) in centroid[i % 2].iter_mut().enumerate() {
                *c += z.get(i, j) / 8.0;
            }
        }
        let between: f32 = (0..2)
            .map(|j| (centroid[0][j] - centroid[1][j]).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(between > 1e-3, "between-class latent distance {between}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AutoencoderConfig::for_input(32);
        let mut a = Autoencoder::new(cfg, &mut rng(6));
        let mut b = Autoencoder::new(cfg, &mut rng(6));
        let x = toy_batch(3, 32, 7);
        assert_eq!(a.encode(&x).data(), b.encode(&x).data());
    }

    #[test]
    fn config_defaults_scale_with_input() {
        let c = AutoencoderConfig::for_input(256);
        assert_eq!(c.hidden_dim, 64);
        assert_eq!(c.latent_dim, 16);
        let tiny = AutoencoderConfig::for_input(16);
        assert_eq!(tiny.hidden_dim, 16);
        assert_eq!(tiny.latent_dim, 8);
    }
}
