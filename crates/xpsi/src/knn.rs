//! k-nearest-neighbor classification on latent features.

use rayon::prelude::*;

/// A fitted kNN classifier (stores the training features verbatim, as kNN
/// does).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    dim: usize,
    features: Vec<f32>,
    labels: Vec<usize>,
}

impl KnnClassifier {
    /// Fit on row-major `features` (`n × dim`) with one label per row.
    pub fn fit(k: usize, dim: usize, features: Vec<f32>, labels: Vec<usize>) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(dim > 0, "features must have dimensions");
        assert_eq!(features.len(), labels.len() * dim, "feature matrix shape");
        assert!(!labels.is_empty(), "cannot fit on an empty training set");
        KnnClassifier {
            k,
            dim,
            features,
            labels,
        }
    }

    /// Number of stored neighbors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no training points are stored (unreachable via `fit`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Classify one query vector by majority vote among the k nearest
    /// training points (Euclidean distance; ties break toward the nearer
    /// neighbor's class).
    pub fn predict_one(&self, query: &[f32]) -> usize {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let k = self.k.min(self.labels.len());
        // (distance², label) of the best k so far, sorted ascending.
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        for (i, &label) in self.labels.iter().enumerate() {
            let row = &self.features[i * self.dim..(i + 1) * self.dim];
            let mut d = 0.0f32;
            for (a, b) in query.iter().zip(row) {
                let diff = a - b;
                d += diff * diff;
            }
            if best.len() < k || d < best[best.len() - 1].0 {
                let pos = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(pos, (d, label));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        // Majority vote; first-encountered (nearest) class wins ties.
        let mut counts: Vec<(usize, usize)> = Vec::new(); // (label, count)
        for &(_, label) in &best {
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, c)) => *c += 1,
                None => counts.push((label, 1)),
            }
        }
        // First-encountered class wins ties: `counts` is ordered by the
        // nearest occurrence of each class, so prefer strictly greater.
        let mut winner = counts[0];
        for &c in &counts[1..] {
            if c.1 > winner.1 {
                winner = c;
            }
        }
        winner.0
    }

    /// Classify a row-major batch in parallel.
    pub fn predict_batch(&self, queries: &[f32]) -> Vec<usize> {
        assert_eq!(queries.len() % self.dim, 0, "query matrix shape");
        queries
            .par_chunks(self.dim)
            .map(|q| self.predict_one(q))
            .collect()
    }

    /// Accuracy (%) on a labeled query batch.
    pub fn accuracy(&self, queries: &[f32], labels: &[usize]) -> f64 {
        let preds = self.predict_batch(queries);
        assert_eq!(preds.len(), labels.len(), "one label per query row");
        if labels.is_empty() {
            return 0.0;
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        100.0 * correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Vec<f32>, Vec<usize>) {
        // Class 0 near (0,0), class 1 near (10,10).
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            feats.extend_from_slice(&[0.1 * i as f32, 0.05 * i as f32]);
            labels.push(0);
            feats.extend_from_slice(&[10.0 + 0.1 * i as f32, 10.0 - 0.05 * i as f32]);
            labels.push(1);
        }
        (feats, labels)
    }

    #[test]
    fn separable_clusters_classify_perfectly() {
        let (f, l) = clusters();
        let knn = KnnClassifier::fit(3, 2, f, l);
        assert_eq!(knn.predict_one(&[0.2, 0.2]), 0);
        assert_eq!(knn.predict_one(&[9.5, 10.2]), 1);
        let acc = knn.accuracy(&[0.0, 0.0, 10.0, 10.0], &[0, 1]);
        assert_eq!(acc, 100.0);
    }

    #[test]
    fn k1_returns_nearest_label() {
        let knn = KnnClassifier::fit(1, 1, vec![0.0, 5.0, 10.0], vec![0, 1, 0]);
        assert_eq!(knn.predict_one(&[4.4]), 1);
        assert_eq!(knn.predict_one(&[9.0]), 0);
    }

    #[test]
    fn k_larger_than_train_set_is_clamped() {
        let knn = KnnClassifier::fit(99, 1, vec![0.0, 1.0, 2.0], vec![0, 0, 1]);
        // All 3 points vote: majority is 0.
        assert_eq!(knn.predict_one(&[1.5]), 0);
    }

    #[test]
    fn tie_breaks_toward_nearest_class() {
        // k=2 with one vote each: class of the nearer point wins.
        let knn = KnnClassifier::fit(2, 1, vec![1.0, 3.0], vec![7, 9]);
        assert_eq!(knn.predict_one(&[1.5]), 7);
        assert_eq!(knn.predict_one(&[2.9]), 9);
    }

    #[test]
    fn batch_matches_individual_predictions() {
        let (f, l) = clusters();
        let knn = KnnClassifier::fit(3, 2, f, l);
        let queries = vec![0.0, 0.0, 10.0, 10.0, 5.0, 5.1];
        let batch = knn.predict_batch(&queries);
        for (i, chunk) in queries.chunks(2).enumerate() {
            assert_eq!(batch[i], knn.predict_one(chunk));
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let _ = KnnClassifier::fit(1, 2, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let knn = KnnClassifier::fit(1, 2, vec![0.0, 0.0], vec![0]);
        let _ = knn.predict_one(&[1.0]);
    }
}
