//! # a4nn-metrics — structured run metrics
//!
//! The operability layer every transport of the evaluation pipeline
//! feeds: monotonic [`Counter`]s and mergeable fixed-bucket
//! [`Histogram`]s behind a thread-safe [`MetricsRegistry`], with a
//! serializable [`MetricsSnapshot`] for atomic persistence beside the
//! commons CSVs and a CSV/JSON export consumed by the `a4nn stats`
//! subcommand.
//!
//! Design constraints, in order:
//!
//! - **Exactness.** Counters and histogram totals are `u64` with
//!   saturating arithmetic, never floats, so merging is associative and
//!   commutative *exactly* (pinned by the property suite) and a
//!   snapshot/restore round trip is the identity.
//! - **Crash-consistency.** A registry restores from its own snapshot,
//!   which is what lets an interrupted search resume its metrics
//!   mid-run instead of under-counting the generations already paid for.
//! - **Non-perturbation.** Metrics record *measured wall time* and event
//!   counts; nothing in this crate feeds back into the search, so the
//!   reproducible byte stream (models.csv / epochs.csv / commons) is
//!   invariant to the metrics layer by construction.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use a4nn_error::A4nnError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A monotonic saturating counter.
///
/// `add` never decreases the value and saturates at `u64::MAX` instead
/// of wrapping, so a counter can never appear to move backwards — the
/// property suite pins both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increase by `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Fold another counter in (saturating).
    pub fn merge(&mut self, other: &Counter) {
        self.add(other.0);
    }
}

/// Default histogram bucket bounds: exponentially spaced microseconds
/// from 1 µs to ~17 s, apt for queue waits and transport round trips.
/// Values above the last bound land in the implicit overflow bucket.
pub fn default_time_bounds_us() -> Vec<u64> {
    (0..25).map(|i| 1u64 << i).collect()
}

/// A fixed-bucket histogram over `u64` samples (typically microseconds).
///
/// Bucket `i` counts samples `<= bounds[i]` (and greater than
/// `bounds[i-1]`); one implicit overflow bucket catches the rest. All
/// totals are saturating `u64`, so merging histograms with identical
/// bounds is exact, associative, and commutative.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Ascending inclusive upper bounds, one per explicit bucket.
    bounds: Vec<u64>,
    /// Per-bucket sample counts; `len() == bounds.len() + 1` (overflow
    /// bucket last).
    counts: Vec<u64>,
    /// Total samples observed (saturating).
    count: u64,
    /// Sum of all observed values (saturating).
    sum: u64,
    /// Smallest observed value; meaningless while `count == 0`.
    min: u64,
    /// Largest observed value; meaningless while `count == 0`.
    max: u64,
}

impl Histogram {
    /// A histogram over ascending inclusive `bounds`. Unsorted or
    /// duplicated bounds are rejected as a configuration error.
    pub fn new(bounds: Vec<u64>) -> Result<Self, A4nnError> {
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(A4nnError::Config(
                "histogram bounds must be strictly ascending".into(),
            ));
        }
        let buckets = bounds.len() + 1;
        Ok(Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        })
    }

    /// A histogram over [`default_time_bounds_us`].
    pub fn time_us() -> Self {
        // Bounds are ascending powers of two by construction.
        Histogram {
            counts: vec![0; default_time_bounds_us().len() + 1],
            bounds: default_time_bounds_us(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.counts.len() - 1);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (overflow bucket last).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold `other` into `self`. Exact (saturating integer adds and
    /// min/max folds), so the operation is associative and commutative.
    /// Fails when the bucket bounds differ — merging histograms of
    /// different shapes would silently misbin.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), A4nnError> {
        if self.bounds != other.bounds {
            return Err(A4nnError::Config(format!(
                "cannot merge histograms with different bounds ({} vs {} buckets)",
                self.bounds.len(),
                other.bounds.len()
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }
}

/// A point-in-time copy of a registry: plain serializable data, ordered
/// maps so serialization is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, Counter>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of one counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// One histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another snapshot in: counters add, histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), A4nnError> {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().merge(c);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h)?,
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Deterministic JSON encoding (pretty, ordered maps).
    pub fn to_json(&self) -> Result<Vec<u8>, A4nnError> {
        serde_json::to_vec_pretty(self)
            .map_err(|e| A4nnError::Internal(format!("serializing metrics snapshot: {e}")))
    }

    /// Decode a snapshot written by [`to_json`](Self::to_json).
    pub fn from_json(bytes: &[u8]) -> Result<Self, A4nnError> {
        serde_json::from_slice(bytes)
            .map_err(|e| A4nnError::Checkpoint(format!("decoding metrics snapshot: {e}")))
    }

    /// The CSV header matching [`to_csv`](Self::to_csv).
    pub const CSV_HEADER: &'static str = "name,kind,count,sum,min,max,mean";

    /// Flat CSV export: one row per counter (`kind=counter`, value in
    /// the `count` column) and one per histogram (`kind=histogram` with
    /// count/sum/min/max/mean). Loads directly into pandas/polars, like
    /// the commons CSVs.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for (name, c) in &self.counters {
            let _ = writeln!(out, "{name},counter,{},,,,", c.get());
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name},histogram,{},{},{},{},{}",
                h.count(),
                h.sum(),
                h.min().map(|v| v.to_string()).unwrap_or_default(),
                h.max().map(|v| v.to_string()).unwrap_or_default(),
                h.mean().map(|v| format!("{v:.3}")).unwrap_or_default(),
            );
        }
        out
    }
}

/// Thread-safe named counters and histograms — the live sink the
/// evaluation pipeline's transports record into.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry primed from a snapshot — the resume path: counters
    /// and histograms continue from the interrupted run's values.
    pub fn from_snapshot(snapshot: MetricsSnapshot) -> Self {
        MetricsRegistry {
            inner: Mutex::new(snapshot),
        }
    }

    /// Replace this registry's contents with `snapshot` — the in-place
    /// form of [`from_snapshot`](Self::from_snapshot) for registries
    /// already shared by reference.
    pub fn restore(&self, snapshot: MetricsSnapshot) {
        *self.inner.lock() = snapshot;
    }

    /// Increase counter `name` by `n` (created at zero on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(c) => c.add(n),
            None => {
                let mut c = Counter::new();
                c.add(n);
                inner.counters.insert(name.to_string(), c);
            }
        }
    }

    /// Record one sample into histogram `name` (created over the
    /// default time bounds on first use).
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::time_us();
                h.observe(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Record a wall-time duration in microseconds into histogram
    /// `name`.
    pub fn observe_duration(&self, name: &str, seconds: f64) {
        let us = (seconds * 1e6).clamp(0.0, u64::MAX as f64) as u64;
        self.observe(name, us);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().clone()
    }
}

/// Metric names the evaluation pipeline maintains — one place so the
/// pipeline, the CLI, and the stats reader agree on spelling.
pub mod names {
    /// Trainer jobs completed through the transport.
    pub const JOBS_DISPATCHED: &str = "jobs_dispatched";
    /// Extra attempts beyond the first, summed over all jobs.
    pub const RETRIES: &str = "retries";
    /// Training epochs actually run (the paper's Figure 7 currency).
    pub const EPOCHS_TRAINED: &str = "epochs_trained";
    /// Models the prediction engine terminated early.
    pub const EARLY_TERMINATIONS: &str = "early_terminations";
    /// Models that exhausted their retry budget.
    pub const MODELS_FAILED: &str = "models_failed";
    /// Generations evaluated end to end.
    pub const GENERATIONS: &str = "generations";
    /// Dispatch→outcome wall time per job, microseconds.
    pub const ROUND_TRIP_US: &str = "round_trip_us";
    /// Wall time a job waited for a free execution slot, microseconds.
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";

    // --- Inference server (`a4nn serve`) -------------------------------

    /// Classify requests admitted into the serve queue.
    pub const SERVE_REQUESTS: &str = "serve_requests";
    /// Classify requests refused because the admission queue was full.
    pub const SERVE_REJECTED: &str = "serve_rejected";
    /// Micro-batches executed by the serve batcher.
    pub const SERVE_BATCHES: &str = "serve_batches";
    /// Requests per executed micro-batch (histogram of batch sizes).
    pub const SERVE_BATCH_SIZE: &str = "serve_batch_size";
    /// Wall time a request waited in the admission queue, microseconds.
    pub const SERVE_QUEUE_WAIT_US: &str = "serve_queue_wait_us";
    /// Submit→response wall time per request, microseconds.
    pub const SERVE_LATENCY_US: &str = "serve_latency_us";
    /// Forward-pass wall time per micro-batch, microseconds.
    pub const SERVE_EVAL_US: &str = "serve_eval_us";
    /// High-water mark of bytes parked in the batcher's workspace pool
    /// (monotonic counter: updated by the delta since the last export).
    pub const SERVE_WS_PEAK_BYTES: &str = "serve_ws_peak_bytes";

    // --- Event-driven I/O reactor (`a4nn serve --io reactor`) -----------

    /// `epoll_wait` returns, including deadline-only wakeups.
    pub const REACTOR_WAKEUPS: &str = "reactor_wakeups";
    /// Ready events delivered per `epoll_wait` return (histogram) — the
    /// multiplexing ratio: how many sockets each wakeup services.
    pub const REACTOR_READY_EVENTS: &str = "reactor_ready_events";
    /// Connections the reactor accepted.
    pub const REACTOR_CONNS_OPENED: &str = "reactor_conns_opened";
    /// Connections the reactor closed (any reason).
    pub const REACTOR_CONNS_CLOSED: &str = "reactor_conns_closed";
    /// High-water mark of simultaneously live reactor connections
    /// (monotonic counter: updated by the delta since the last export).
    pub const REACTOR_CONNS_LIVE_PEAK: &str = "reactor_conns_live_peak";
    /// Connections closed by the idle/stall deadline.
    pub const REACTOR_IDLE_CLOSED: &str = "reactor_idle_closed";
    /// Accept→first-byte wall time per connection, microseconds.
    pub const REACTOR_ACCEPT_FIRST_BYTE_US: &str = "reactor_accept_first_byte_us";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_saturates() {
        let mut c = Counter::new();
        c.add(5);
        c.add(0);
        assert_eq!(c.get(), 5);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bins_and_stats() {
        let mut h = Histogram::new(vec![10, 100, 1000]).unwrap();
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5000));
        assert!((h.mean().unwrap() - 1024.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::time_us();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn unsorted_bounds_rejected() {
        assert!(Histogram::new(vec![5, 5]).is_err());
        assert!(Histogram::new(vec![9, 3]).is_err());
        assert!(Histogram::new(vec![]).is_ok());
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1, 2]).unwrap();
        let b = Histogram::new(vec![1, 3]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn registry_snapshot_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.add(names::EPOCHS_TRAINED, 42);
        reg.add(names::RETRIES, 3);
        reg.observe(names::ROUND_TRIP_US, 1500);
        reg.observe_duration(names::QUEUE_WAIT_US, 0.002);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::EPOCHS_TRAINED), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram(names::QUEUE_WAIT_US).unwrap().count(), 1);
        let restored = MetricsRegistry::from_snapshot(
            MetricsSnapshot::from_json(&snap.to_json().unwrap()).unwrap(),
        );
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn restored_registry_continues_counting() {
        let reg = MetricsRegistry::new();
        reg.add(names::EPOCHS_TRAINED, 10);
        let resumed = MetricsRegistry::from_snapshot(reg.snapshot());
        resumed.add(names::EPOCHS_TRAINED, 5);
        assert_eq!(resumed.snapshot().counter(names::EPOCHS_TRAINED), 15);
    }

    #[test]
    fn csv_export_shape() {
        let reg = MetricsRegistry::new();
        reg.add(names::EPOCHS_TRAINED, 7);
        reg.observe(names::ROUND_TRIP_US, 3);
        let csv = reg.snapshot().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(MetricsSnapshot::CSV_HEADER));
        assert_eq!(lines.next(), Some("epochs_trained,counter,7,,,,"));
        assert_eq!(lines.next(), Some("round_trip_us,histogram,1,3,3,3,3.000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", 10);
        let b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 4);
        b.observe("h", 20);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot()).unwrap();
        assert_eq!(merged.counter("x"), 3);
        assert_eq!(merged.counter("y"), 4);
        assert_eq!(merged.histogram("h").unwrap().count(), 2);
        assert_eq!(merged.histogram("h").unwrap().sum(), 30);
    }
}
