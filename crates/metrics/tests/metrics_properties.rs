//! Property suite for the metrics layer — the algebra the resume path
//! leans on. Merging is exact integer arithmetic, so:
//!
//! - histogram merge is associative and commutative (bucket counts,
//!   count, sum, min, max — all of it);
//! - counters are monotonic under any add sequence and saturate at
//!   `u64::MAX` instead of wrapping;
//! - a snapshot → JSON → restore round trip is the identity, which is
//!   what makes metrics continue exactly across a kill/resume;
//! - observing is order-independent: any permutation of the same
//!   samples yields the same histogram.

use a4nn_metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![0u64..10_000, Just(u64::MAX), Just(u64::MAX - 1)],
        0..40,
    )
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new(vec![10, 100, 1000, 100_000]).unwrap();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for histogram merge.
    #[test]
    fn histogram_merge_is_associative(
        a in samples(), b in samples(), c in samples(),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let mut left = ha.clone();
        left.merge(&hb).unwrap();
        left.merge(&hc).unwrap();
        let mut bc = hb.clone();
        bc.merge(&hc).unwrap();
        let mut right = ha.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// a ⊕ b == b ⊕ a for histogram merge.
    #[test]
    fn histogram_merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Merging equals observing the concatenation: the histogram is a
    /// homomorphism from sample multisets, independent of split point
    /// and of observation order.
    #[test]
    fn merge_equals_concatenated_observation(
        a in samples(), b in samples(),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b)).unwrap();
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        // Also permute: observation order must not matter.
        concat.reverse();
        prop_assert_eq!(merged, histogram_of(&concat));
    }

    /// Counters never decrease under any add sequence, and saturate.
    #[test]
    fn counter_is_monotonic_and_saturating(
        adds in proptest::collection::vec(
            prop_oneof![0u64..1_000, Just(u64::MAX / 2), Just(u64::MAX)],
            0..24,
        ),
    ) {
        let mut c = Counter::new();
        let mut prev = c.get();
        for &n in &adds {
            c.add(n);
            prop_assert!(c.get() >= prev, "counter moved backwards");
            prev = c.get();
        }
        let exact: u128 = adds.iter().map(|&n| n as u128).sum();
        if exact <= u64::MAX as u128 {
            prop_assert_eq!(c.get(), exact as u64);
        } else {
            prop_assert_eq!(c.get(), u64::MAX, "overflow must pin to u64::MAX");
        }
    }

    /// Snapshot → JSON → restore is the identity for any registry
    /// contents, and the restored registry keeps counting from there.
    #[test]
    fn snapshot_restore_roundtrip_identity(
        counts in proptest::collection::vec(0u64..1_000_000, 1..6),
        obs in samples(),
    ) {
        let reg = MetricsRegistry::new();
        for (i, &n) in counts.iter().enumerate() {
            reg.add(&format!("counter_{i}"), n);
        }
        for &v in &obs {
            reg.observe("latency_us", v);
        }
        let snap = reg.snapshot();
        let bytes = snap.to_json().unwrap();
        let restored = MetricsSnapshot::from_json(&bytes).unwrap();
        prop_assert_eq!(&restored, &snap);
        // Restored registries continue exactly where the snapshot left off.
        let resumed = MetricsRegistry::from_snapshot(restored);
        resumed.add("counter_0", 1);
        prop_assert_eq!(
            resumed.snapshot().counter("counter_0"),
            snap.counter("counter_0").saturating_add(1)
        );
    }

    /// Histogram totals saturate at `u64::MAX`: observing near-MAX
    /// values repeatedly pins `sum` to the ceiling without wrapping.
    #[test]
    fn histogram_sum_saturates(reps in 2usize..6) {
        let mut h = Histogram::new(vec![1_000]).unwrap();
        for _ in 0..reps {
            h.observe(u64::MAX - 1);
        }
        prop_assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        prop_assert_eq!(h.count(), reps as u64);
        prop_assert_eq!(h.max(), Some(u64::MAX - 1));
    }
}
