//! Workflow configuration: the paper's Tables 1 and 2 as data.

use crate::objectives::ObjectiveSet;
use a4nn_genome::SearchSpace;
use a4nn_nsga::NsgaConfig;
use a4nn_penguin::EngineConfig;
use a4nn_xfel::BeamIntensity;
use serde::{Deserialize, Serialize};

/// NSGA-Net settings (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NasSettings {
    /// Size of the starting population.
    pub population: usize,
    /// Number of nodes per phase in the macro search space.
    pub nodes_per_phase: usize,
    /// Offspring produced per generation.
    pub offspring: usize,
    /// Number of generations (the initial population is generation 0).
    pub generations: usize,
    /// Epoch budget per network.
    pub epochs: u32,
}

impl NasSettings {
    /// The paper's Table 2: population 10, 4 nodes/phase, 10 offspring,
    /// 10 generations, 25 epochs — 100 networks per test.
    pub fn paper_defaults() -> Self {
        NasSettings {
            population: 10,
            nodes_per_phase: 4,
            offspring: 10,
            generations: 10,
            epochs: 25,
        }
    }

    /// Total networks a run evaluates.
    pub fn total_models(&self) -> usize {
        self.population + self.offspring * self.generations.saturating_sub(1)
    }

    /// The equivalent engine configuration for `a4nn-nsga`.
    pub fn nsga_config(&self, seed: u64) -> NsgaConfig {
        NsgaConfig {
            population: self.population,
            offspring: self.offspring,
            generations: self.generations,
            seed,
        }
    }
}

impl Default for NasSettings {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Full workflow configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// NAS settings (Table 2).
    pub nas: NasSettings,
    /// Prediction-engine settings (Table 1); `None` runs the standalone
    /// NAS baseline in which every network trains the full epoch budget.
    pub engine: Option<EngineConfig>,
    /// Virtual GPUs available to the resource manager.
    pub gpus: usize,
    /// Beam intensity of the dataset the run targets (recorded in every
    /// record trail and used by the surrogate's noise model).
    pub beam: BeamIntensity,
    /// Master seed: search, initialization, and surrogate curves all
    /// derive from it.
    pub seed: u64,
    /// The named objective vector the NSGA engine minimizes
    /// ([`ObjectiveSet`]). Defaults to the paper's pair
    /// `(neg_fitness, flops)`; selected on the CLI via `--objectives`.
    /// Part of the resume config fingerprint: a snapshot taken under a
    /// different set is stale (exit 5).
    #[serde(default)]
    pub objectives: ObjectiveSet,
}

impl WorkflowConfig {
    /// Paper-defaults A4NN configuration for one beam intensity.
    pub fn a4nn(beam: BeamIntensity, gpus: usize, seed: u64) -> Self {
        WorkflowConfig {
            nas: NasSettings::paper_defaults(),
            engine: Some(EngineConfig::paper_defaults()),
            gpus,
            beam,
            seed,
            objectives: ObjectiveSet::default(),
        }
    }

    /// Paper-defaults standalone-NSGA-Net configuration (no engine,
    /// single GPU — the paper's baseline does not support multi-GPU).
    pub fn standalone(beam: BeamIntensity, seed: u64) -> Self {
        WorkflowConfig {
            nas: NasSettings::paper_defaults(),
            engine: None,
            gpus: 1,
            beam,
            seed,
            objectives: ObjectiveSet::default(),
        }
    }

    /// The macro search space implied by these settings.
    pub fn search_space(&self) -> SearchSpace {
        SearchSpace {
            nodes_per_phase: self.nas.nodes_per_phase,
            ..SearchSpace::paper_defaults()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_2() {
        let nas = NasSettings::paper_defaults();
        assert_eq!(nas.population, 10);
        assert_eq!(nas.nodes_per_phase, 4);
        assert_eq!(nas.offspring, 10);
        assert_eq!(nas.generations, 10);
        assert_eq!(nas.epochs, 25);
        assert_eq!(nas.total_models(), 100);
    }

    #[test]
    fn engine_defaults_match_table_1() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Low, 1, 0);
        let engine = cfg.engine.unwrap();
        assert_eq!(engine.c_min, 3);
        assert_eq!(engine.e_pred, 25);
        assert_eq!(engine.n_converge, 3);
        assert!((engine.r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standalone_has_no_engine_and_one_gpu() {
        let cfg = WorkflowConfig::standalone(BeamIntensity::High, 3);
        assert!(cfg.engine.is_none());
        assert_eq!(cfg.gpus, 1);
    }

    #[test]
    fn nsga_config_mapping() {
        let nas = NasSettings::paper_defaults();
        let nsga = nas.nsga_config(7);
        assert_eq!(nsga.total_evaluations(), 100);
        assert_eq!(nsga.seed, 7);
    }

    #[test]
    fn legacy_config_json_defaults_to_the_paper_pair() {
        // A config serialized before the objective registry existed has
        // no `objectives` key and must load as (neg_fitness, flops).
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Low, 2, 1);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace(",\"objectives\":[\"neg_fitness\",\"flops\"]", "");
        assert_ne!(json, stripped, "objectives key must serialize");
        let loaded: WorkflowConfig = serde_json::from_str(&stripped).unwrap();
        assert!(loaded.objectives.is_default());
    }

    #[test]
    fn search_space_uses_nodes_per_phase() {
        let mut cfg = WorkflowConfig::a4nn(BeamIntensity::Low, 1, 0);
        cfg.nas.nodes_per_phase = 5;
        assert_eq!(cfg.search_space().nodes_per_phase, 5);
    }
}
