//! The workflow orchestrator: NSGA-Net's generational loop with the
//! prediction engine in situ, FIFO multi-GPU scheduling per generation,
//! and full lineage recording.
//!
//! The loop reuses `a4nn-nsga`'s primitives (non-dominated sort, crowding,
//! tournament, environmental selection) but drives evaluation itself so a
//! whole generation can be trained concurrently across the virtual GPUs —
//! exactly the Ray-style resource management of §2.5.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::fault::{FaultStats, FaultTolerance};
use crate::pipeline::{
    engine_params_record, BatchResult, BusTransport, DirectTransport, EvalPipeline, Transport,
    TransportStats,
};
use crate::resume::{config_hash, RunControl, SearchSnapshot, SNAPSHOT_VERSION};
use crate::trainer::TrainerFactory;
use a4nn_bus::{
    BusRunStats, EngineFaultHook, Event, LineageRecorderService, Policy, PredictionEngineService,
    RunStatsAggregator, Topic,
};
use a4nn_error::A4nnError;
use a4nn_genome::{Genome, SearchSpace};
use a4nn_lineage::{DataCommons, ModelRecord};
use a4nn_metrics::MetricsSnapshot;
use a4nn_nsga::{
    crowding_distance, environmental_selection, fast_non_dominated_sort, ranks_from_fronts,
    tournament_select, Individual, Objectives, RankedIndividual,
};
use a4nn_sched::{GenerationSchedule, RetryEntry, RetryLedger, ScheduleResult};
use rand::SeedableRng;
use std::collections::HashSet;

/// How the workflow couples trainers, prediction engine, and lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Orchestration {
    /// In-process calls: trainers drive their own engine instance and
    /// the batch evaluator assembles record trails (the seed path).
    #[default]
    Direct,
    /// The a4nn-bus event bus: trainers publish per-epoch fitness, the
    /// engine/lineage/stats services run as subscribed threads (§2.2's
    /// in-situ task coupling). Produces identical record trails.
    Bus,
    /// TCP worker processes via the `a4nn-net` socket transport: the
    /// coordinator shards each generation's jobs across connected
    /// workers. The transport lives outside this crate, so socket runs
    /// go through [`A4nnWorkflow::try_run_transport`] with a constructed
    /// `SocketTransport`; this variant exists so the CLI can parse the
    /// mode uniformly. Produces identical record trails.
    Socket,
}

impl std::str::FromStr for Orchestration {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(Orchestration::Direct),
            "bus" => Ok(Orchestration::Bus),
            "socket" => Ok(Orchestration::Socket),
            other => Err(format!(
                "unknown orchestration {other:?} (expected direct|bus|socket)"
            )),
        }
    }
}

/// Everything a workflow run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The data commons: one record trail per evaluated model.
    pub commons: DataCommons,
    /// The simulated cluster schedule (per-generation, with barriers).
    pub schedule: GenerationSchedule,
    /// The configuration that produced this run.
    pub config: WorkflowConfig,
    /// Total seconds spent inside the prediction engine (overhead).
    pub engine_seconds: f64,
    /// Total engine interactions across all models.
    pub engine_interactions: u64,
    /// Bus-level counters, present when the run was bus-orchestrated.
    pub bus_stats: Option<BusRunStats>,
    /// Dispatch counters of the transport that trained the run: jobs,
    /// retries, round-trip and queue-wait wall times.
    pub transport_stats: TransportStats,
    /// Failure accounting: retries consumed, models failed/recovered,
    /// and the injected laggard's delivery counters. Quiet (all zero)
    /// on a fault-free run.
    pub fault_stats: FaultStats,
    /// Durable per-model attempt accounting, carried across resume.
    pub retry_ledger: RetryLedger,
    /// The structured metrics registry's final state: counters and
    /// histograms accumulated across the whole run (both halves, when
    /// the run was interrupted and resumed).
    pub metrics: MetricsSnapshot,
}

impl RunOutput {
    /// Total training epochs consumed (Figure 7's bars).
    pub fn total_epochs(&self) -> u64 {
        self.commons
            .records
            .iter()
            .map(|r| u64::from(r.epochs_trained()))
            .sum()
    }

    /// Simulated wall time of the whole run in seconds (Figure 9's bars).
    pub fn wall_time_s(&self) -> f64 {
        self.schedule.total_wall_time()
    }

    /// Percentage of epochs saved versus the full-budget baseline
    /// (`epochs × models`).
    pub fn epochs_saved_pct(&self) -> f64 {
        let budget = (self.config.nas.epochs as u64 * self.config.nas.total_models() as u64) as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.total_epochs() as f64 / budget)
    }

    /// Mean engine seconds per interaction (§4.3.1's 28 ms figure).
    pub fn engine_seconds_per_interaction(&self) -> f64 {
        if self.engine_interactions == 0 {
            0.0
        } else {
            self.engine_seconds / self.engine_interactions as f64
        }
    }
}

/// The A4NN workflow.
#[derive(Debug, Clone)]
pub struct A4nnWorkflow {
    config: WorkflowConfig,
    space: SearchSpace,
}

/// Retries against the duplicate-architecture filter.
const DUPLICATE_RETRIES: usize = 16;

impl A4nnWorkflow {
    /// Build a workflow from its configuration.
    pub fn new(config: WorkflowConfig) -> Self {
        assert!(config.gpus > 0, "need at least one GPU");
        assert!(config.nas.population > 0, "population must be positive");
        assert!(config.nas.generations > 0, "need at least one generation");
        let space = config.search_space();
        A4nnWorkflow { config, space }
    }

    /// The search space in use.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Run the complete search using trainers from `factory`.
    pub fn run(&self, factory: &dyn TrainerFactory) -> RunOutput {
        self.run_checkpointed_with(factory, None, Orchestration::Direct)
    }

    /// [`run`](Self::run) with an explicit coupling mode. `Bus` and
    /// `Direct` produce identical record trails per seed.
    pub fn run_with(
        &self,
        factory: &dyn TrainerFactory,
        orchestration: Orchestration,
    ) -> RunOutput {
        self.run_checkpointed_with(factory, None, orchestration)
    }

    /// [`run`](Self::run) that additionally checkpoints every model's
    /// per-epoch state into `checkpoints` when the trainer supports it
    /// (§2.2.2's "model can be loaded and re-evaluated from any point").
    pub fn run_checkpointed(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
    ) -> RunOutput {
        self.run_checkpointed_with(factory, checkpoints, Orchestration::Direct)
    }

    /// [`run_checkpointed`](Self::run_checkpointed) with an explicit
    /// coupling mode.
    pub fn run_checkpointed_with(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        orchestration: Orchestration,
    ) -> RunOutput {
        self.run_resilient(
            factory,
            checkpoints,
            orchestration,
            &FaultTolerance::default(),
        )
    }

    /// [`run_checkpointed_with`](Self::run_checkpointed_with) under an
    /// explicit [`FaultTolerance`]: panicked trainer attempts retry per
    /// the policy, injected faults replay deterministically from the
    /// plan, and models exhausting their budget survive the search as
    /// `Terminated::Failed` records. The default tolerance reproduces
    /// the fault-free run byte for byte in both coupling modes.
    ///
    /// Panics if the run's machinery breaks (bus closed mid-run, a
    /// crashed service thread); use
    /// [`try_run_resilient`](Self::try_run_resilient) to handle that as
    /// an error instead.
    pub fn run_resilient(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        orchestration: Orchestration,
        ft: &FaultTolerance,
    ) -> RunOutput {
        self.try_run_resilient(factory, checkpoints, orchestration, ft)
            .unwrap_or_else(|e| panic!("workflow failed: {e}"))
    }

    /// [`run_resilient`](Self::run_resilient) returning machinery
    /// failures as [`A4nnError`] instead of panicking. Trainer crashes
    /// are *not* errors — they flow through the retry budget into
    /// `Terminated::Failed` records; `Err` here means the run itself
    /// could not continue (closed bus, crashed service, poisoned pool).
    pub fn try_run_resilient(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        orchestration: Orchestration,
        ft: &FaultTolerance,
    ) -> Result<RunOutput, A4nnError> {
        self.try_run_resumable(
            factory,
            checkpoints,
            orchestration,
            ft,
            &RunControl::default(),
            None,
        )
    }

    /// [`try_run_resilient`](Self::try_run_resilient) under a
    /// [`RunControl`]: commit a full search-state snapshot at every
    /// generation boundary into `control.snapshot_dir`, optionally stop
    /// at a boundary via `control.cancel` (surfaced as
    /// [`A4nnError::Interrupted`]), and continue a prior run from
    /// `resume` — the snapshot a previous process committed before it
    /// was interrupted or killed. A resumed run reproduces the
    /// uninterrupted run's commons byte for byte on every transport.
    pub fn try_run_resumable(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        orchestration: Orchestration,
        ft: &FaultTolerance,
        control: &RunControl<'_>,
        resume: Option<SearchSnapshot>,
    ) -> Result<RunOutput, A4nnError> {
        let cfg = &self.config;
        let pipeline = EvalPipeline::new(cfg, &self.space, factory, checkpoints, ft);
        match orchestration {
            Orchestration::Direct => {
                let out = self.run_loop(
                    &pipeline,
                    &mut |genomes, generation, base_id| {
                        pipeline.run(&DirectTransport, genomes, generation, base_id)
                    },
                    control,
                    resume,
                )?;
                let fault_stats = FaultStats::from_records(&out.records);
                Ok(RunOutput {
                    commons: DataCommons::new(out.records),
                    schedule: GenerationSchedule {
                        generations: out.schedules,
                    },
                    config: cfg.clone(),
                    engine_seconds: out.engine_seconds,
                    engine_interactions: out.engine_interactions,
                    bus_stats: None,
                    transport_stats: pipeline.transport_stats(DirectTransport.name()),
                    fault_stats,
                    retry_ledger: out.retry_ledger,
                    metrics: pipeline.metrics_registry().snapshot(),
                })
            }
            Orchestration::Socket => Err(A4nnError::Config(
                "socket orchestration needs connected workers; construct a \
                 SocketTransport (a4nn-net) and call try_run_transport"
                    .into(),
            )),
            Orchestration::Bus => {
                // The recorder service only sees events from this
                // process; the generations completed before an
                // interruption are prepended from the snapshot.
                let prior_records: Vec<ModelRecord> = resume
                    .as_ref()
                    .map(|s| s.records.clone())
                    .unwrap_or_default();
                let topic: Topic<Event> = Topic::new("a4nn");
                let engine_service = cfg.engine.clone().map(|engine| {
                    // Injected engine crashes ride in through the service's
                    // fault hook, driven by the same deterministic plan the
                    // direct path consults inline.
                    let hook: Option<EngineFaultHook> = ft.plan.has_engine_faults().then(|| {
                        let plan = ft.plan.clone();
                        Box::new(move |model: u64, epoch: u32| plan.engine_dropped(model, epoch))
                            as EngineFaultHook
                    });
                    PredictionEngineService::spawn_hooked(&topic, engine, hook)
                });
                let recorder = LineageRecorderService::spawn(
                    &topic,
                    engine_params_record(cfg),
                    cfg.beam.label().to_string(),
                );
                let aggregator = RunStatsAggregator::spawn(&topic);
                // The plan's lagging subscriber: a slow, lossy consumer
                // that exercises backpressure isolation without being able
                // to perturb the run's results.
                let laggard = ft.plan.subscriber_lag().map(|(capacity, delay_millis)| {
                    let inbox = topic.subscribe(Policy::DropOldest { capacity });
                    std::thread::spawn(move || {
                        while inbox.recv().is_ok() {
                            std::thread::sleep(std::time::Duration::from_millis(delay_millis));
                        }
                        inbox.stats()
                    })
                });
                let transport = BusTransport::new(&topic);
                let loop_result = self.run_loop(
                    &pipeline,
                    &mut |genomes, generation, base_id| {
                        pipeline.run(&transport, genomes, generation, base_id)
                    },
                    control,
                    resume,
                );
                // Always close and drain the services — even when the
                // loop failed — so no thread is left blocked; then
                // surface the loop's error ahead of any join error.
                topic.close();
                let engine_join = engine_service.map(|service| service.join()).transpose();
                let records = recorder.join();
                let bus_stats = aggregator.join();
                let out = loop_result?;
                engine_join?;
                let records = {
                    let mut all = prior_records;
                    all.extend(records?);
                    all
                };
                let bus_stats = bus_stats?;
                let mut fault_stats = FaultStats::from_records(&records);
                fault_stats.laggard = match laggard {
                    Some(handle) => Some(handle.join().map_err(|_| {
                        A4nnError::Internal("laggard subscriber thread panicked".into())
                    })?),
                    None => None,
                };
                Ok(RunOutput {
                    commons: DataCommons::new(records),
                    schedule: GenerationSchedule {
                        generations: out.schedules,
                    },
                    config: cfg.clone(),
                    engine_seconds: out.engine_seconds,
                    engine_interactions: out.engine_interactions,
                    bus_stats: Some(bus_stats),
                    transport_stats: pipeline.transport_stats(transport.name()),
                    fault_stats,
                    retry_ledger: out.retry_ledger,
                    metrics: pipeline.metrics_registry().snapshot(),
                })
            }
        }
    }

    /// Run the search through an externally constructed [`Transport`] —
    /// the entry point for transports that live outside this crate, such
    /// as `a4nn-net`'s `SocketTransport`. The transport must assemble
    /// record trails inline (like `DirectTransport`); transports that
    /// delegate recording to bus services go through
    /// [`try_run_resilient`](Self::try_run_resilient) instead, which
    /// owns the service lifecycle.
    pub fn try_run_transport(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        transport: &dyn Transport,
        ft: &FaultTolerance,
    ) -> Result<RunOutput, A4nnError> {
        self.try_run_transport_resumable(
            factory,
            checkpoints,
            transport,
            ft,
            &RunControl::default(),
            None,
        )
    }

    /// [`try_run_transport`](Self::try_run_transport) under a
    /// [`RunControl`]: boundary snapshots, optional cancellation, and
    /// continuation from a prior snapshot — the socket-transport
    /// counterpart of [`try_run_resumable`](Self::try_run_resumable).
    pub fn try_run_transport_resumable(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
        transport: &dyn Transport,
        ft: &FaultTolerance,
        control: &RunControl<'_>,
        resume: Option<SearchSnapshot>,
    ) -> Result<RunOutput, A4nnError> {
        if !transport.assembles_records() {
            return Err(A4nnError::Config(format!(
                "transport {:?} delegates record assembly to bus services; \
                 run it through try_run_resilient",
                transport.name()
            )));
        }
        let cfg = &self.config;
        let pipeline = EvalPipeline::new(cfg, &self.space, factory, checkpoints, ft);
        let out = self.run_loop(
            &pipeline,
            &mut |genomes, generation, base_id| {
                pipeline.run(transport, genomes, generation, base_id)
            },
            control,
            resume,
        )?;
        let fault_stats = FaultStats::from_records(&out.records);
        Ok(RunOutput {
            commons: DataCommons::new(out.records),
            schedule: GenerationSchedule {
                generations: out.schedules,
            },
            config: cfg.clone(),
            engine_seconds: out.engine_seconds,
            engine_interactions: out.engine_interactions,
            bus_stats: None,
            transport_stats: pipeline.transport_stats(transport.name()),
            fault_stats,
            retry_ledger: out.retry_ledger,
            metrics: pipeline.metrics_registry().snapshot(),
        })
    }

    /// The shared NSGA-Net generational loop; `evaluate` trains one
    /// generation batch through the pipeline (on any transport).
    ///
    /// With a `resume` snapshot, the loop reconstructs every piece of
    /// state the snapshot's boundary committed — RNG stream, archive,
    /// survivors, duplicate filter, cursors, ledgers — and continues
    /// from the next generation; the remaining trajectory is bit-exact
    /// because nothing outside the snapshot crosses a boundary. With a
    /// `control.snapshot_dir`, the state is committed (manifest-last)
    /// after every generation, then the cancel hook may stop the run.
    fn run_loop(
        &self,
        pipeline: &EvalPipeline<'_>,
        evaluate: &mut GenerationEvaluator<'_>,
        control: &RunControl<'_>,
        resume: Option<SearchSnapshot>,
    ) -> Result<LoopOutput, A4nnError> {
        let cfg = &self.config;
        let snapshotting = control.snapshot_dir.is_some();
        let cfg_hash = if snapshotting || resume.is_some() {
            Some(config_hash(cfg)?)
        } else {
            None
        };

        let mut rng;
        let mut records: Vec<ModelRecord>;
        let mut archive: Vec<Individual<Genome>>;
        let mut schedules: Vec<ScheduleResult>;
        let mut seen: HashSet<String>;
        let mut engine_seconds;
        let mut engine_interactions;
        let mut next_id;
        let mut parents: Vec<usize>;
        let mut ledger: RetryLedger;
        let mut genomes: Vec<Genome>;
        let start_generation;

        match resume {
            Some(snap) => {
                // `SearchSnapshot::load` verifies version and config
                // hash; re-check here so directly constructed snapshots
                // cannot silently resume a different search.
                if let Some(expected) = cfg_hash {
                    if snap.config_hash != expected {
                        return Err(A4nnError::Checkpoint(format!(
                            "stale snapshot: state was produced by config {:016x} but this \
                             run's configuration hashes to {:016x}",
                            snap.config_hash, expected
                        )));
                    }
                }
                if snap.generations_done == 0 || snap.generations_done > cfg.nas.generations {
                    return Err(A4nnError::Checkpoint(format!(
                        "snapshot claims {} completed generation(s) of a {}-generation run",
                        snap.generations_done, cfg.nas.generations
                    )));
                }
                // A snapshot from a run searched under different
                // objectives is stale — its archive lives in a different
                // objective space. Pre-registry snapshots carry no names
                // (serde default: empty) and are validated by dimension
                // alone.
                if !snap.objective_names.is_empty() {
                    cfg.objectives
                        .check_snapshot_names(&snap.objective_names, "the snapshot")?;
                }
                if let Some(ind) = snap
                    .archive
                    .iter()
                    .find(|ind| ind.objectives.len() != cfg.objectives.len())
                {
                    return Err(A4nnError::Checkpoint(format!(
                        "stale snapshot: archived model {} carries {} objective value(s) but \
                         this run is configured for {} ({})",
                        ind.id,
                        ind.objectives.len(),
                        cfg.objectives.len(),
                        cfg.objectives
                    )));
                }
                pipeline.restore_metrics(snap.metrics);
                rng = rand::rngs::StdRng::from_state(snap.rng_state);
                records = snap.records;
                archive = snap.archive;
                schedules = snap.schedules;
                seen = snap.seen.into_iter().collect();
                engine_seconds = snap.engine_seconds;
                engine_interactions = snap.engine_interactions;
                next_id = snap.next_id;
                parents = snap.parents;
                ledger = snap.retries;
                // Offspring are regenerated from the archive inside the
                // loop; generation 0's pre-drawn population is only
                // needed on a fresh start.
                genomes = Vec::new();
                start_generation = snap.generations_done;
            }
            None => {
                rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
                records = Vec::with_capacity(cfg.nas.total_models());
                archive = Vec::with_capacity(cfg.nas.total_models());
                schedules = Vec::with_capacity(cfg.nas.generations);
                seen = HashSet::new();
                engine_seconds = 0.0f64;
                engine_interactions = 0u64;
                next_id = 0u64;
                ledger = RetryLedger::new();
                // Generation 0: random initial population.
                genomes = (0..cfg.nas.population)
                    .map(|_| self.space.random_genome(&mut rng))
                    .collect();
                for g in &genomes {
                    seen.insert(g.to_compact_string());
                }
                parents = Vec::new();
                start_generation = 0;
            }
        }

        for generation in start_generation..cfg.nas.generations {
            if generation > 0 {
                // Rank current parents and vary into offspring.
                let parent_objs: Vec<Objectives> = parents
                    .iter()
                    .map(|&i| archive[i].objectives.clone())
                    .collect();
                let fronts = fast_non_dominated_sort(&parent_objs);
                let ranks = ranks_from_fronts(&fronts, parents.len());
                let mut crowding = vec![0.0f64; parents.len()];
                for front in &fronts {
                    for (&i, &d) in front
                        .iter()
                        .zip(crowding_distance(&parent_objs, front).iter())
                    {
                        crowding[i] = d;
                    }
                }
                let ranked: Vec<RankedIndividual> = ranks
                    .iter()
                    .zip(&crowding)
                    .map(|(&rank, &crowding)| RankedIndividual { rank, crowding })
                    .collect();
                genomes = (0..cfg.nas.offspring)
                    .map(|_| {
                        let pa = &archive[parents[tournament_select(&ranked, &mut rng)]].genome;
                        let pb = &archive[parents[tournament_select(&ranked, &mut rng)]].genome;
                        let mut child = self.space.vary(pa, pb, &mut rng);
                        for _ in 0..DUPLICATE_RETRIES {
                            if !seen.contains(&child.to_compact_string()) {
                                break;
                            }
                            child = self.space.vary(pa, pb, &mut rng);
                        }
                        seen.insert(child.to_compact_string());
                        child
                    })
                    .collect();
            }

            // Train the whole generation on the configured evaluator.
            let base_id = next_id;
            let batch = evaluate(&genomes, generation, base_id)?;
            let mut generation_indices = Vec::with_capacity(genomes.len());
            for (k, genome) in genomes.iter().enumerate() {
                let model_id = base_id + k as u64;
                let (outcome, cost) = &batch.outcomes[k];
                engine_seconds += outcome.engine_seconds;
                engine_interactions += outcome.engine_interactions;
                ledger.push(RetryEntry {
                    model_id,
                    generation,
                    attempts: outcome.attempts,
                    failed: outcome.failed,
                });
                archive.push(Individual {
                    id: model_id,
                    generation,
                    genome: genome.clone(),
                    objectives: cfg.objectives.vector(outcome, cost),
                });
                generation_indices.push(archive.len() - 1);
            }
            if snapshotting && batch.records.is_empty() {
                // Bus transports delegate record assembly to the
                // recorder service, which only materializes trails at
                // end of run. A snapshot must carry this generation's
                // trails now, so assemble them inline — valid on any
                // transport by the transport-equivalence contract.
                records.extend(pipeline.assemble_records(
                    &genomes,
                    generation,
                    base_id,
                    &batch.outcomes,
                    &batch.schedule,
                ));
            } else {
                records.extend(batch.records);
            }
            let schedule = batch.schedule;
            next_id += genomes.len() as u64;
            schedules.push(schedule);

            // Elitist environmental selection (μ+λ).
            if generation == 0 {
                parents = generation_indices;
            } else {
                let mut pool = parents.clone();
                pool.extend_from_slice(&generation_indices);
                parents = environmental_selection(&archive, &pool, cfg.nas.population);
            }

            // Generation boundary: commit the full search state
            // (state file first, manifest last — see resume.rs), then
            // honor a cancellation request. A kill at any instant
            // leaves either the previous committed pair or this one.
            if let Some(dir) = &control.snapshot_dir {
                let mut seen_sorted: Vec<String> = seen.iter().cloned().collect();
                seen_sorted.sort_unstable();
                let snap = SearchSnapshot {
                    version: SNAPSHOT_VERSION,
                    config_hash: cfg_hash.unwrap_or_default(),
                    objective_names: cfg.objectives.names(),
                    generations_done: generation + 1,
                    rng_state: rng.state(),
                    next_id,
                    archive: archive.clone(),
                    parents: parents.clone(),
                    seen: seen_sorted,
                    records: records.clone(),
                    schedules: schedules.clone(),
                    engine_seconds,
                    engine_interactions,
                    retries: ledger.clone(),
                    metrics: pipeline.metrics_registry().snapshot(),
                };
                snap.save(dir)?;
            }
            if let Some(cancel) = control.cancel {
                if cancel(generation + 1) {
                    return Err(A4nnError::Interrupted(format!(
                        "search stopped at the generation-{} boundary ({} of {} done); \
                         resume from the snapshot directory to continue",
                        generation + 1,
                        generation + 1,
                        cfg.nas.generations
                    )));
                }
            }
        }

        Ok(LoopOutput {
            records,
            schedules,
            engine_seconds,
            engine_interactions,
            retry_ledger: ledger,
        })
    }
}

/// Closure handed to [`A4nnWorkflow::run_loop`]: trains one generation
/// batch `(genomes, generation, base_id)` through the pipeline.
type GenerationEvaluator<'a> =
    dyn FnMut(&[Genome], usize, u64) -> Result<BatchResult, A4nnError> + 'a;

/// What the shared generational loop accumulates.
struct LoopOutput {
    records: Vec<ModelRecord>,
    schedules: Vec<ScheduleResult>,
    engine_seconds: f64,
    engine_interactions: u64,
    retry_ledger: RetryLedger,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NasSettings;
    use crate::surrogate::{SurrogateFactory, SurrogateParams};
    use a4nn_lineage::Analyzer;
    use a4nn_penguin::EngineConfig;
    use a4nn_xfel::BeamIntensity;

    fn small_config(engine: bool, gpus: usize, seed: u64) -> WorkflowConfig {
        WorkflowConfig {
            nas: NasSettings {
                population: 6,
                offspring: 6,
                generations: 4,
                ..NasSettings::paper_defaults()
            },
            engine: engine.then(EngineConfig::paper_defaults),
            gpus,
            beam: BeamIntensity::Medium,
            seed,
            objectives: crate::objectives::ObjectiveSet::default(),
        }
    }

    fn run(engine: bool, gpus: usize, seed: u64) -> RunOutput {
        let config = small_config(engine, gpus, seed);
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        A4nnWorkflow::new(config).run(&factory)
    }

    fn run_bus(engine: bool, gpus: usize, seed: u64) -> RunOutput {
        let config = small_config(engine, gpus, seed);
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        A4nnWorkflow::new(config).run_with(&factory, Orchestration::Bus)
    }

    #[test]
    fn bus_orchestration_reproduces_direct_commons() {
        let direct = run(true, 2, 11);
        let bus = run_bus(true, 2, 11);
        assert_eq!(direct.commons, bus.commons);
        assert_eq!(direct.engine_interactions, bus.engine_interactions);
        assert_eq!(
            direct.schedule.total_wall_time(),
            bus.schedule.total_wall_time()
        );
        let stats = bus.bus_stats.clone().expect("bus run reports stats");
        assert_eq!(stats.epochs_observed, bus.total_epochs());
        assert_eq!(stats.engine_interactions, bus.engine_interactions);
        assert_eq!(stats.models_completed as usize, bus.commons.len());
        assert_eq!(stats.generations_scheduled, 4);
        assert_eq!(stats.subscriber.dropped, 0);
        assert_eq!(stats.gpu_busy_seconds.len(), 2);
    }

    #[test]
    fn bus_without_engine_reproduces_standalone() {
        let direct = run(false, 1, 12);
        let bus = run_bus(false, 1, 12);
        assert_eq!(direct.commons, bus.commons);
        let stats = bus.bus_stats.expect("bus run reports stats");
        assert_eq!(stats.engine_interactions, 0);
        assert_eq!(stats.terminations_advised, 0);
    }

    #[test]
    fn evaluates_expected_model_count() {
        let out = run(true, 2, 1);
        assert_eq!(out.commons.len(), 6 + 6 * 3);
        // Model ids sequential.
        for (k, r) in out.commons.records.iter().enumerate() {
            assert_eq!(r.model_id as usize, k);
        }
        assert_eq!(out.schedule.generations.len(), 4);
    }

    #[test]
    fn engine_saves_epochs_versus_standalone() {
        let with_engine = run(true, 1, 2);
        let standalone = run(false, 1, 2);
        assert_eq!(
            standalone.total_epochs(),
            24 * 25,
            "standalone always trains the full budget"
        );
        assert!(
            with_engine.total_epochs() < standalone.total_epochs(),
            "{} vs {}",
            with_engine.total_epochs(),
            standalone.total_epochs()
        );
        assert!(with_engine.epochs_saved_pct() > 0.0);
        assert!(with_engine.wall_time_s() < standalone.wall_time_s());
    }

    #[test]
    fn multi_gpu_reduces_wall_time_not_epochs_much() {
        let one = run(true, 1, 3);
        let four = run(true, 4, 3);
        // Same seed ⇒ same search ⇒ same epochs.
        assert_eq!(one.total_epochs(), four.total_epochs());
        let speedup = one.wall_time_s() / four.wall_time_s();
        assert!(
            speedup > 2.0,
            "expected near-linear speedup, got {speedup:.2}x"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(true, 2, 5);
        let b = run(true, 2, 5);
        assert_eq!(a.commons, b.commons);
        assert_eq!(a.total_epochs(), b.total_epochs());
        let c = run(true, 2, 6);
        assert_ne!(a.commons, c.commons);
    }

    #[test]
    fn records_carry_engine_params_and_gpu() {
        let out = run(true, 2, 7);
        for r in &out.commons.records {
            let e = r.engine.as_ref().expect("engine attached");
            assert_eq!(e.function, "exp-base");
            assert_eq!(e.e_pred, 25);
            assert!(r.gpu.unwrap() < 2);
            assert_eq!(r.beam, "medium");
            assert!(!r.epochs.is_empty());
        }
        assert!(out.engine_interactions >= out.total_epochs());
    }

    #[test]
    fn standalone_records_have_no_engine_or_predictions() {
        let out = run(false, 1, 8);
        for r in &out.commons.records {
            assert!(r.engine.is_none());
            assert!(r.predicted_fitness.is_none());
            assert!(!r.terminated_early());
            assert_eq!(r.epochs_trained(), 25);
        }
        assert_eq!(out.engine_interactions, 0);
        assert_eq!(out.engine_seconds, 0.0);
    }

    #[test]
    fn search_improves_over_random_initialization() {
        let out = run(true, 2, 9);
        let analyzer = Analyzer::new(&out.commons);
        let gen0_best = out
            .commons
            .records
            .iter()
            .filter(|r| r.generation == 0)
            .map(|r| r.final_fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        let overall_best = analyzer.best_by_fitness().unwrap().final_fitness;
        assert!(overall_best >= gen0_best);
    }

    #[test]
    fn hardware_objectives_thread_into_archive_and_records() {
        let mut config = small_config(true, 2, 13);
        config.objectives =
            crate::objectives::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        let out = A4nnWorkflow::new(config).run(&factory);
        for r in &out.commons.records {
            assert_eq!(
                r.objective_names,
                vec!["neg_fitness", "flops", "peak_ws_bytes"]
            );
            assert_eq!(r.objective_values.len(), 3);
            assert_eq!(r.objective_values[0], -r.final_fitness);
            assert_eq!(r.objective_values[1], r.flops);
            assert!(r.objective_values[2] > 0.0, "surrogate peak ws is positive");
        }
        // The bus transport reproduces the 3-objective run byte for byte.
        let config3 = {
            let mut c = small_config(true, 2, 13);
            c.objectives =
                crate::objectives::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
            c
        };
        let factory3 = SurrogateFactory::new(&config3, SurrogateParams::for_beam(config3.beam));
        let bus = A4nnWorkflow::new(config3).run_with(&factory3, Orchestration::Bus);
        assert_eq!(out.commons, bus.commons);
    }

    #[test]
    fn engine_overhead_is_small_but_nonzero() {
        let out = run(true, 1, 10);
        assert!(out.engine_seconds > 0.0);
        // Way below one simulated epoch per interaction.
        assert!(out.engine_seconds_per_interaction() < 0.1);
    }
}
