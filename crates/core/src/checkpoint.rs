//! Per-epoch model-state checkpointing.
//!
//! §2.2.2: "At the end of each training epoch, the workflow orchestrator
//! writes the partially trained NN's state to memory, such that each model
//! can be loaded and re-evaluated from any point in the training phase."
//! The paper's Dataverse deposit ships 25,790 such per-epoch models.
//!
//! [`CheckpointStore`] is the thread-safe sink the workflow writes into:
//! in memory during the run, with an on-disk binary layout
//! (`model_<id>_epoch_<e>.a4nn`) for persistence. Trainers opt in by
//! implementing [`Trainer::snapshot`](crate::trainer::Trainer::snapshot) —
//! the real CPU trainer captures its network; the surrogate has no weights
//! and returns `None`.

use a4nn_error::A4nnError;
use a4nn_nn::ModelState;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;

/// Thread-safe store of per-epoch model states, keyed `(model_id, epoch)`.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    inner: Mutex<BTreeMap<(u64, u32), ModelState>>,
}

impl CheckpointStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the state of `model_id` after `epoch`.
    pub fn put(&self, model_id: u64, epoch: u32, state: ModelState) {
        self.inner.lock().insert((model_id, epoch), state);
    }

    /// Fetch one checkpoint.
    pub fn get(&self, model_id: u64, epoch: u32) -> Option<ModelState> {
        self.inner.lock().get(&(model_id, epoch)).cloned()
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no checkpoints are held.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Epochs checkpointed for one model, ascending.
    pub fn epochs_for(&self, model_id: u64) -> Vec<u32> {
        self.inner
            .lock()
            .range((model_id, 0)..=(model_id, u32::MAX))
            .map(|((_, e), _)| *e)
            .collect()
    }

    /// Write every checkpoint to `dir` in the compact binary format.
    ///
    /// Each file goes through an atomic tmp + rename, so a crash
    /// mid-checkpoint never truncates a previously saved snapshot;
    /// [`load_dir`](Self::load_dir) only considers `.a4nn` names and thus
    /// skips any stale `.tmp` residue from an interrupted save.
    pub fn save_dir(&self, dir: &Path) -> Result<(), A4nnError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| A4nnError::io(format!("creating checkpoint dir {}", dir.display()), e))?;
        for ((model, epoch), state) in self.inner.lock().iter() {
            let path = dir.join(format!("model_{model:05}_epoch_{epoch:03}.a4nn"));
            a4nn_lineage::write_atomic(&path, &state.to_bytes())?;
        }
        Ok(())
    }

    /// Load every `.a4nn` checkpoint from `dir`.
    pub fn load_dir(dir: &Path) -> Result<Self, A4nnError> {
        let store = CheckpointStore::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| A4nnError::io(format!("reading checkpoint dir {}", dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                A4nnError::io(format!("reading checkpoint dir {}", dir.display()), e)
            })?;
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) if n.ends_with(".a4nn") => n.to_string(),
                _ => continue,
            };
            // model_<id>_epoch_<e>.a4nn
            let parts: Vec<&str> = name.trim_end_matches(".a4nn").split('_').collect();
            let (model, epoch) = match parts.as_slice() {
                ["model", id, "epoch", e] => (
                    id.parse::<u64>()
                        .map_err(|_| A4nnError::Checkpoint(format!("bad model id in {name:?}")))?,
                    e.parse::<u32>()
                        .map_err(|_| A4nnError::Checkpoint(format!("bad epoch in {name:?}")))?,
                ),
                _ => continue,
            };
            let bytes = bytes::Bytes::from(
                std::fs::read(&path)
                    .map_err(|e| A4nnError::io(format!("reading {}", path.display()), e))?,
            );
            let state = ModelState::from_bytes(bytes)
                .map_err(|e| A4nnError::Checkpoint(format!("decoding {}: {e}", path.display())))?;
            store.put(model, epoch, state);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_nn::{NetSpec, Network, PhaseNetSpec};
    use rand::SeedableRng;

    fn state(seed: u64, epoch: u32) -> ModelState {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec::degenerate(4, 3)],
            num_classes: 2,
        };
        let mut net = Network::new(&spec, &mut rand::rngs::StdRng::seed_from_u64(seed));
        ModelState::capture(&mut net, epoch)
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CheckpointStore::new();
        store.put(3, 1, state(1, 1));
        store.put(3, 2, state(1, 2));
        store.put(7, 1, state(2, 1));
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(3, 2).unwrap().epoch, 2);
        assert!(store.get(3, 9).is_none());
        assert_eq!(store.epochs_for(3), vec![1, 2]);
        assert_eq!(store.epochs_for(7), vec![1]);
        assert!(store.epochs_for(42).is_empty());
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let store = std::sync::Arc::new(CheckpointStore::new());
        let mut handles = Vec::new();
        for m in 0..4u64 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for e in 1..=5u32 {
                    s.put(m, e, state(m, e));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 20);
    }

    #[test]
    fn disk_roundtrip() {
        let store = CheckpointStore::new();
        store.put(0, 1, state(5, 1));
        store.put(0, 2, state(5, 2));
        let dir = std::env::temp_dir().join(format!("a4nn-ckpt-{}", std::process::id()));
        store.save_dir(&dir).unwrap();
        let loaded = CheckpointStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(0, 2).unwrap(), store.get(0, 2).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_leaves_prior_snapshot_loadable() {
        let store = CheckpointStore::new();
        store.put(0, 1, state(5, 1));
        let dir = std::env::temp_dir().join(format!("a4nn-ckpt-torn-{}", std::process::id()));
        store.save_dir(&dir).unwrap();
        // No tmp residue after a clean save.
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .all(|e| !e.file_name().to_string_lossy().ends_with(".tmp")),
            "clean save left tmp files behind"
        );
        // Simulate a crash mid-way through a later save: a torn tmp for
        // epoch 2 next to the intact epoch-1 snapshot.
        std::fs::write(dir.join("model_00000_epoch_002.a4nn.tmp"), [0u8; 3]).unwrap();
        let loaded = CheckpointStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(0, 1).unwrap(), store.get(0, 1).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restored_checkpoint_reproduces_outputs() {
        use a4nn_nn::Tensor4;
        let s = state(9, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let mut original = s.restore(&mut rng);
        let store = CheckpointStore::new();
        store.put(1, 4, s);
        let mut restored = store.get(1, 4).unwrap().restore(&mut rng);
        let x = Tensor4::zeros(1, 1, 8, 8);
        assert_eq!(
            original.forward(&x, false).data(),
            restored.forward(&x, false).data()
        );
    }
}
