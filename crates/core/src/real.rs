//! The real trainer: genome → network → SGD training on an XFEL dataset
//! using the `a4nn-nn` CPU substrate, with measured wall times.

use crate::bridge::netspec_from_arch;
use crate::objectives::ModelCost;
use crate::trainer::{EpochResult, Trainer, TrainerFactory};
use a4nn_genome::{estimate_macs, estimate_params_bytes, Genome, SearchSpace};
use a4nn_nn::{train_epoch_ws, ConvImpl, Dataset, DenseImpl, Network, Sgd, Workspace};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Hyperparameters of the real training loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainingHyperparams {
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Convolution backend for every network this loop trains.
    #[serde(default)]
    pub conv_impl: ConvImpl,
    /// Dense (classifier) backend for every network this loop trains.
    #[serde(default)]
    pub dense_impl: DenseImpl,
    /// Validation is evaluated in chunks of this many samples, bounding
    /// peak activation memory on large validation sets.
    #[serde(default = "default_eval_chunk")]
    pub eval_chunk: usize,
}

fn default_eval_chunk() -> usize {
    a4nn_nn::graph::DEFAULT_EVAL_CHUNK
}

impl Default for TrainingHyperparams {
    fn default() -> Self {
        TrainingHyperparams {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 32,
            conv_impl: ConvImpl::default(),
            dense_impl: DenseImpl::default(),
            eval_chunk: default_eval_chunk(),
        }
    }
}

/// Trains one network on shared train/validation datasets.
pub struct RealTrainer {
    net: Network,
    opt: Sgd,
    train: Arc<Dataset>,
    val: Arc<Dataset>,
    hyper: TrainingHyperparams,
    /// Genome-derived cost components (flops, params, MACs); the
    /// workspace peak is measured live in [`Trainer::cost`].
    static_cost: ModelCost,
    rng: rand::rngs::StdRng,
    /// Scratch arena shared across this trainer's epochs: after the first
    /// batch, steady-state training and evaluation allocate nothing.
    ws: Workspace,
}

impl Trainer for RealTrainer {
    fn train_epoch(&mut self, _epoch: u32) -> EpochResult {
        let t0 = Instant::now();
        let (_, train_acc) = train_epoch_ws(
            &mut self.net,
            &mut self.opt,
            &self.train,
            self.hyper.batch_size,
            &mut self.rng,
            &mut self.ws,
        );
        let val_acc = self
            .net
            .evaluate_dataset(&self.val, self.hyper.eval_chunk, &mut self.ws);
        EpochResult {
            train_acc: f64::from(train_acc),
            val_acc: f64::from(val_acc),
            duration_s: t0.elapsed().as_secs_f64(),
        }
    }

    fn flops(&self) -> f64 {
        self.static_cost.flops
    }

    fn cost(&self) -> ModelCost {
        // The workspace pool's lifetime high-water mark is the measured
        // `peak_ws_bytes` objective — read after training completes.
        ModelCost {
            peak_ws_bytes: self.ws.peak_pooled_bytes() as f64,
            ..self.static_cost
        }
    }

    fn snapshot(&mut self, epoch: u32) -> Option<a4nn_nn::ModelState> {
        Some(a4nn_nn::ModelState::capture(&mut self.net, epoch))
    }
}

impl RealTrainer {
    /// Access the trained network (for checkpointing into the commons).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }
}

/// Factory building [`RealTrainer`]s over shared datasets.
pub struct RealTrainerFactory {
    space: SearchSpace,
    train: Arc<Dataset>,
    val: Arc<Dataset>,
    hyper: TrainingHyperparams,
}

impl RealTrainerFactory {
    /// Build a factory; datasets are shared (not copied) across trainers.
    pub fn new(
        space: SearchSpace,
        train: Arc<Dataset>,
        val: Arc<Dataset>,
        hyper: TrainingHyperparams,
    ) -> Self {
        assert!(!train.is_empty(), "training dataset is empty");
        RealTrainerFactory {
            space,
            train,
            val,
            hyper,
        }
    }
}

impl TrainerFactory for RealTrainerFactory {
    fn make(&self, genome: &Genome, model_id: u64, seed: u64) -> Box<dyn Trainer> {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ model_id.wrapping_mul(0xD134_2543_DE82_EF95));
        let arch = self.space.decode(genome);
        let spec = netspec_from_arch(&arch);
        let mut net = Network::new(&spec, &mut rng);
        net.set_conv_impl(self.hyper.conv_impl);
        net.set_dense_impl(self.hyper.dense_impl);
        let hw = (self.train.height, self.train.width);
        let static_cost = ModelCost {
            flops: net.flops(hw) / 1e6,
            params_bytes: estimate_params_bytes(&arch),
            macs: estimate_macs(&arch, hw),
            peak_ws_bytes: 0.0,
        };
        Box::new(RealTrainer {
            net,
            opt: Sgd::new(self.hyper.lr, self.hyper.momentum, self.hyper.weight_decay),
            train: self.train.clone(),
            val: self.val.clone(),
            hyper: self.hyper,
            static_cost,
            rng,
            ws: Workspace::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_xfel::{generate_split, BeamIntensity, XfelConfig};

    fn factory() -> RealTrainerFactory {
        let (train, val) = generate_split(&XfelConfig::default(), BeamIntensity::High, 40, 1);
        RealTrainerFactory::new(
            SearchSpace::paper_defaults(),
            Arc::new(train),
            Arc::new(val),
            TrainingHyperparams::default(),
        )
    }

    fn genome(seed: u64) -> Genome {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SearchSpace::paper_defaults().random_genome(&mut rng)
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
    fn real_training_learns_above_chance() {
        let f = factory();
        let mut t = f.make(&genome(2), 0, 9);
        let mut last = EpochResult {
            train_acc: 0.0,
            val_acc: 0.0,
            duration_s: 0.0,
        };
        for e in 1..=4 {
            last = t.train_epoch(e);
            assert!(last.duration_s > 0.0);
        }
        assert!(
            last.train_acc > 55.0,
            "train accuracy after 4 epochs: {}",
            last.train_acc
        );
        assert!(t.flops() > 0.0);
        let cost = t.cost();
        assert!(cost.params_bytes > 0.0);
        assert!(cost.macs > 0.0);
        assert!(
            cost.peak_ws_bytes > 0.0,
            "training must leave a workspace high-water mark"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
    fn snapshots_capture_training_progress() {
        let f = factory();
        let mut t = f.make(&genome(5), 2, 9);
        let s0 = t.snapshot(0).expect("real trainer snapshots");
        let _ = t.train_epoch(1);
        let s1 = t.snapshot(1).expect("real trainer snapshots");
        assert_eq!(s0.epoch, 0);
        assert_eq!(s1.epoch, 1);
        assert_ne!(s0.params, s1.params, "training must change the weights");
    }

    #[test]
    fn trainers_for_same_model_are_deterministic_in_structure() {
        let f = factory();
        let a = f.make(&genome(3), 1, 9).flops();
        let b = f.make(&genome(3), 1, 9).flops();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "training dataset is empty")]
    fn empty_dataset_rejected() {
        let empty = Arc::new(Dataset::empty(1, 16, 16));
        let _ = RealTrainerFactory::new(
            SearchSpace::paper_defaults(),
            empty.clone(),
            empty,
            TrainingHyperparams::default(),
        );
    }
}
