//! Decoded-genome → trainable-network bridge.
//!
//! `a4nn-genome` and `a4nn-nn` are deliberately decoupled (the genome
//! crate describes architectures, the NN crate trains them); this module
//! converts an [`ArchSpec`] into the [`NetSpec`] the substrate builds,
//! compacting inactive nodes out of each phase DAG.

use a4nn_genome::{ArchSpec, NodeOp};
use a4nn_nn::{NetSpec, PhaseNetSpec};

/// Convert a decoded architecture into a buildable network spec.
///
/// Inactive genome nodes are dropped and the remaining nodes reindexed;
/// degenerate (all-inactive) phases become a stem + single default conv,
/// matching the decoder's documented semantics.
pub fn netspec_from_arch(arch: &ArchSpec) -> NetSpec {
    let phases = arch
        .phases
        .iter()
        .map(|p| {
            let NodeOp::ConvBnRelu { kernel } = p.op;
            if p.is_degenerate() {
                return PhaseNetSpec::degenerate(p.out_channels, kernel);
            }
            // Reindex active nodes densely.
            let mut dense_index = vec![usize::MAX; p.nodes];
            let mut next = 0usize;
            for (slot, &active) in dense_index.iter_mut().zip(&p.active) {
                if active {
                    *slot = next;
                    next += 1;
                }
            }
            let node_inputs: Vec<Vec<usize>> = (0..p.nodes)
                .filter(|&i| p.active[i])
                .map(|i| p.inputs[i].iter().map(|&j| dense_index[j]).collect())
                .collect();
            let leaves: Vec<usize> = p.leaves.iter().map(|&l| dense_index[l]).collect();
            PhaseNetSpec {
                out_channels: p.out_channels,
                kernel,
                node_inputs,
                leaves,
                skip: p.skip,
            }
        })
        .collect();
    NetSpec {
        input_channels: arch.input_channels,
        phases,
        num_classes: arch.num_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_genome::{Genome, SearchSpace};
    use a4nn_nn::Network;
    use a4nn_nn::Tensor4;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::paper_defaults()
    }

    #[test]
    fn every_random_genome_builds_and_runs() {
        let s = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..24 {
            let genome = s.random_genome(&mut rng);
            let spec = netspec_from_arch(&s.decode(&genome));
            let mut net = Network::new(&spec, &mut rng);
            let x = Tensor4::zeros(2, 1, 16, 16);
            let logits = net.forward(&x, true);
            assert_eq!((logits.rows, logits.cols), (2, 2));
        }
    }

    #[test]
    fn all_zero_genome_becomes_degenerate_phases() {
        let s = space();
        let genome = Genome::from_compact_string("0000000-0000000-0000000").unwrap();
        let spec = netspec_from_arch(&s.decode(&genome));
        for p in &spec.phases {
            assert_eq!(p.node_inputs.len(), 1);
            assert_eq!(p.leaves, vec![0]);
            assert!(!p.skip);
        }
    }

    #[test]
    fn compaction_preserves_edge_structure() {
        // Phase with only edge 0→2 active (nodes 1,3 isolated): compacted
        // to nodes [0,2] → dense [0,1], edge 0→1, leaf 1.
        let s = space();
        let mut bits = vec![false; 7];
        bits[a4nn_genome::PhaseGenome::edge_bit_index(0, 2)] = true;
        let genome = Genome {
            phases: vec![
                a4nn_genome::PhaseGenome::new(4, bits),
                a4nn_genome::PhaseGenome::zeros(4),
                a4nn_genome::PhaseGenome::zeros(4),
            ],
        };
        let spec = netspec_from_arch(&s.decode(&genome));
        assert_eq!(spec.phases[0].node_inputs, vec![vec![], vec![0]]);
        assert_eq!(spec.phases[0].leaves, vec![1]);
    }

    #[test]
    fn flops_estimate_tracks_exact_network_flops() {
        // The genome-level estimator and the layer-exact network count
        // agree within the bookkeeping terms (pooling/joins ~ few %).
        let s = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..8 {
            let genome = s.random_genome(&mut rng);
            let arch = s.decode(&genome);
            let estimate = a4nn_genome::estimate_flops(&arch, (16, 16));
            let net = Network::new(&netspec_from_arch(&arch), &mut rng);
            let exact = net.flops((16, 16));
            let rel = (estimate - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "estimate {estimate} vs exact {exact} (rel {rel})"
            );
        }
    }
}
