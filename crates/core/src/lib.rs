//! # a4nn-core — the A4NN composable workflow
//!
//! This crate assembles the full workflow of the paper (Figure 1):
//!
//! - the **NAS** — NSGA-Net, realized as NSGA-II (`a4nn-nsga`) over the
//!   macro search space (`a4nn-genome`);
//! - the **parametric prediction engine** (`a4nn-penguin`), attached in
//!   situ to every network's training loop (Algorithm 1, [`training`]);
//! - the **workflow orchestrator** ([`workflow`]) moving fitness histories
//!   to the engine and predictions back to the NAS, while checkpointing
//!   model state and record trails;
//! - the **evaluation pipeline** ([`pipeline`]): the one generation loop
//!   every driver trains through, generic over a pluggable
//!   [`Transport`] (in-process [`DirectTransport`] or the `a4nn-bus`
//!   event bus via [`BusTransport`]) with fault tolerance always on;
//! - the **lineage tracker / data commons** (`a4nn-lineage`);
//! - the **resource manager** (`a4nn-sched`): FIFO dynamic scheduling of
//!   models onto virtual GPUs within each generation;
//! - two **trainers** behind one [`trainer::Trainer`] abstraction: a real
//!   CPU trainer over the `a4nn-nn` substrate and XFEL datasets
//!   ([`real`]), and a calibrated **surrogate trainer** ([`surrogate`])
//!   standing in for the paper's GPU fleet (see DESIGN.md §3 for the
//!   substitution argument) so the paper-scale experiments (100 models ×
//!   25 epochs × 3 beams × 2 modes) run in seconds.
//!
//! ## Running a search
//!
//! ```
//! use a4nn_core::prelude::*;
//!
//! let config = WorkflowConfig {
//!     nas: NasSettings { population: 4, offspring: 4, generations: 3, ..NasSettings::paper_defaults() },
//!     engine: Some(EngineConfig::paper_defaults()),
//!     gpus: 2,
//!     beam: BeamIntensity::Medium,
//!     seed: 42,
//!     objectives: ObjectiveSet::default(),
//! };
//! let workflow = A4nnWorkflow::new(config.clone());
//! let surrogate = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
//! let output = workflow.run(&surrogate);
//! assert_eq!(output.commons.len(), 12); // 4 + 4×2 models evaluated
//! assert!(output.total_epochs() > 0);
//! ```

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod bridge;
pub mod checkpoint;
pub mod config;
pub mod drivers;
pub mod fault;
pub mod micro;
pub mod objectives;
pub mod pipeline;
pub mod real;
pub mod resume;
pub mod surrogate;
pub mod trainer;
pub mod training;
pub mod workflow;

pub use a4nn_error::A4nnError;
pub use bridge::netspec_from_arch;
pub use checkpoint::CheckpointStore;
pub use config::{NasSettings, WorkflowConfig};
pub use drivers::{AgingEvolutionWorkflow, RandomSearchWorkflow};
pub use fault::{FaultStats, FaultTolerance};
pub use micro::{micro_netspec, micro_random_search, MicroTrainerFactory};
pub use objectives::{ModelCost, ObjectiveKind, ObjectiveSet};
pub use pipeline::{
    train_resilient_direct, BatchResult, BusTransport, DirectTransport, EvalPipeline, Transport,
    TransportStats,
};
pub use real::{RealTrainerFactory, TrainingHyperparams};
pub use resume::{config_hash, RunControl, SearchSnapshot, SNAPSHOT_VERSION};
pub use surrogate::{SurrogateFactory, SurrogateParams};
pub use trainer::{EpochResult, Trainer, TrainerFactory};
pub use training::{
    train_with_engine, train_with_engine_checkpointed, train_with_engine_fallible, AttemptProgress,
    TrainingOutcome,
};
pub use workflow::{A4nnWorkflow, Orchestration, RunOutput};

/// Convenience re-exports, including the satellite crates' key types.
pub mod prelude {
    pub use crate::{
        netspec_from_arch, train_with_engine, A4nnError, A4nnWorkflow, CheckpointStore,
        EpochResult, EvalPipeline, FaultStats, FaultTolerance, ModelCost, NasSettings,
        ObjectiveKind, ObjectiveSet, Orchestration, RealTrainerFactory, RunControl, RunOutput,
        SearchSnapshot, SurrogateFactory, SurrogateParams, Trainer, TrainerFactory,
        TrainingHyperparams, TrainingOutcome, Transport, TransportStats, WorkflowConfig,
    };
    pub use a4nn_faults::{ChaosSpec, FaultEvent, FaultPlan};
    pub use a4nn_genome::{Genome, SearchSpace};
    pub use a4nn_lineage::{Analyzer, DataCommons, ModelRecord, Terminated};
    pub use a4nn_metrics::{MetricsRegistry, MetricsSnapshot};
    pub use a4nn_penguin::{CurveFamily, EngineConfig, PredictionEngine};
    pub use a4nn_sched::RetryPolicy;
    pub use a4nn_xfel::{BeamIntensity, XfelConfig};
}
