//! Micro-search-space integration: genome → cell network bridge, a real
//! trainer over `a4nn-nn`'s `MicroNetwork`, and a compact engine-augmented
//! random search — the paper's composability story extended to NSGA-Net's
//! *other* search space.

use crate::config::WorkflowConfig;
use crate::trainer::{EpochResult, Trainer};
use crate::training::train_with_engine;
use a4nn_genome::{MicroGenome, MicroSearchSpace};
use a4nn_lineage::{DataCommons, ModelRecord};
use a4nn_nn::{cross_entropy, CellNodeSpec, CellOp, CellSpec, Dataset, MicroNetSpec, MicroNetwork};
use a4nn_sched::{schedule_fifo, GenerationSchedule, Task, TaskOrdering};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Convert a micro genome into the substrate's network spec.
pub fn micro_netspec(genome: &MicroGenome, space: &MicroSearchSpace) -> MicroNetSpec {
    if let Err(e) = genome.validate() {
        panic!("genome must be valid: {e}");
    }
    let nodes = genome
        .nodes
        .iter()
        .map(|g| CellNodeSpec {
            in1: usize::from(g.in1),
            op1: CellOp::ALL[usize::from(g.op1)],
            in2: usize::from(g.in2),
            op2: CellOp::ALL[usize::from(g.op2)],
        })
        .collect();
    MicroNetSpec {
        input_channels: space.input_channels,
        stage_channels: space.stage_channels.clone(),
        cells_per_stage: space.cells_per_stage,
        cell: CellSpec { nodes },
        num_classes: space.num_classes,
    }
}

/// A real trainer over a cell network (SGD via the parameter visitor).
pub struct MicroRealTrainer {
    net: MicroNetwork,
    train: Arc<Dataset>,
    val: Arc<Dataset>,
    lr: f32,
    batch_size: usize,
    flops: f64,
    rng: rand::rngs::StdRng,
}

impl Trainer for MicroRealTrainer {
    fn train_epoch(&mut self, _epoch: u32) -> EpochResult {
        let t0 = Instant::now();
        let mut correct = 0usize;
        let mut seen = 0usize;
        for (images, labels) in self.train.shuffled_batches(self.batch_size, &mut self.rng) {
            let logits = self.net.forward(&images, true);
            let out = cross_entropy(&logits, &labels);
            correct += out.correct;
            seen += labels.len();
            self.net.backward(&out.dlogits);
            let lr = self.lr;
            self.net.visit_params(&mut |p, g| {
                for (pi, gi) in p.iter_mut().zip(g.iter_mut()) {
                    *pi -= lr * *gi;
                    *gi = 0.0;
                }
            });
        }
        let train_acc = if seen == 0 {
            0.0
        } else {
            100.0 * correct as f64 / seen as f64
        };
        let (images, labels) = self.val.as_tensor();
        let val_acc = f64::from(self.net.evaluate(&images, labels));
        EpochResult {
            train_acc,
            val_acc,
            duration_s: t0.elapsed().as_secs_f64(),
        }
    }

    fn flops(&self) -> f64 {
        self.flops
    }
}

/// Factory for micro-cell trainers over shared datasets.
pub struct MicroTrainerFactory {
    space: MicroSearchSpace,
    train: Arc<Dataset>,
    val: Arc<Dataset>,
    /// SGD learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl MicroTrainerFactory {
    /// Build a factory; datasets are shared across trainers.
    pub fn new(space: MicroSearchSpace, train: Arc<Dataset>, val: Arc<Dataset>) -> Self {
        assert!(!train.is_empty(), "training dataset is empty");
        MicroTrainerFactory {
            space,
            train,
            val,
            lr: 0.05,
            batch_size: 32,
        }
    }

    /// Build a trainer for one micro genome.
    pub fn make(&self, genome: &MicroGenome, model_id: u64, seed: u64) -> MicroRealTrainer {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ model_id.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let spec = micro_netspec(genome, &self.space);
        let net = MicroNetwork::new(&spec, &mut rng);
        let flops = net.flops((self.train.height, self.train.width)) / 1e6;
        MicroRealTrainer {
            net,
            train: self.train.clone(),
            val: self.val.clone(),
            lr: self.lr,
            batch_size: self.batch_size,
            flops,
            rng,
        }
    }
}

/// Engine-augmented random search over the micro space: evaluates
/// `budget` random cells (each trained for real with Algorithm 1) and
/// returns the usual [`RunOutput`](crate::workflow::RunOutput)-style
/// artifacts via a commons + schedule pair.
pub fn micro_random_search(
    cfg: &WorkflowConfig,
    space: &MicroSearchSpace,
    factory: &MicroTrainerFactory,
    budget: usize,
) -> (DataCommons, GenerationSchedule) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut records = Vec::with_capacity(budget);
    let mut tasks = Vec::with_capacity(budget);
    // Record the micro genome through the compact-string bridge so the
    // macro-genome commons schema stays unchanged.
    let Ok(placeholder_genome) = a4nn_genome::Genome::from_compact_string("0000000") else {
        unreachable!("placeholder genome literal is valid")
    };
    for model_id in 0..budget as u64 {
        let genome = space.random_genome(&mut rng);
        let mut trainer = factory.make(&genome, model_id, cfg.seed);
        let outcome = train_with_engine(&mut trainer, cfg.engine.as_ref(), cfg.nas.epochs);
        tasks.push(Task {
            id: model_id,
            duration: outcome.train_seconds,
        });
        records.push(ModelRecord {
            model_id,
            generation: 0,
            gpu: None,
            genome: placeholder_genome.clone(),
            arch_summary: format!("micro cell {}", genome.to_compact_string()),
            flops: trainer.flops(),
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: None,
            epochs: outcome.epochs.clone(),
            final_fitness: outcome.final_fitness,
            predicted_fitness: outcome.predicted_fitness,
            termination: outcome.termination(),
            attempts: outcome.attempts,
            beam: cfg.beam.label().to_string(),
            wall_time_s: outcome.train_seconds,
        });
    }
    let schedule = schedule_fifo(cfg.gpus, &tasks, TaskOrdering::Fifo);
    // Backfill GPU placements.
    for r in &mut records {
        r.gpu = schedule
            .assignments
            .iter()
            .find(|a| a.task_id == r.model_id)
            .map(|a| a.gpu);
    }
    (
        DataCommons::new(records),
        GenerationSchedule {
            generations: vec![schedule],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_genome::MicroGene;
    use a4nn_xfel::{generate_split, BeamIntensity, XfelConfig};

    fn datasets() -> (Arc<Dataset>, Arc<Dataset>) {
        let (train, val) = generate_split(&XfelConfig::default(), BeamIntensity::High, 80, 2);
        (Arc::new(train), Arc::new(val))
    }

    #[test]
    fn bridge_maps_ops_by_index() {
        let genome = MicroGenome {
            nodes: vec![
                MicroGene {
                    in1: 0,
                    op1: 0,
                    in2: 0,
                    op2: 4,
                },
                MicroGene {
                    in1: 1,
                    op1: 2,
                    in2: 0,
                    op2: 3,
                },
            ],
        };
        let space = MicroSearchSpace::reduced_defaults();
        let spec = micro_netspec(&genome, &space);
        assert_eq!(spec.cell.nodes[0].op1, CellOp::Conv3);
        assert_eq!(spec.cell.nodes[0].op2, CellOp::Identity);
        assert_eq!(spec.cell.nodes[1].op1, CellOp::MaxPool3);
        assert_eq!(spec.cell.nodes[1].op2, CellOp::AvgPool3);
        assert_eq!(spec.stage_channels, vec![8, 16]);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
    fn micro_trainer_learns_above_chance() {
        let (train, val) = datasets();
        let space = MicroSearchSpace::reduced_defaults();
        let factory = MicroTrainerFactory::new(space, train, val);
        // A conv-bearing chain cell (random cells can be all-pooling,
        // which learn only through the stage transitions).
        let genome = MicroGenome {
            nodes: vec![
                MicroGene {
                    in1: 0,
                    op1: 0,
                    in2: 0,
                    op2: 4,
                },
                MicroGene {
                    in1: 1,
                    op1: 0,
                    in2: 0,
                    op2: 2,
                },
                MicroGene {
                    in1: 2,
                    op1: 4,
                    in2: 1,
                    op2: 3,
                },
                MicroGene {
                    in1: 3,
                    op1: 0,
                    in2: 2,
                    op2: 4,
                },
            ],
        };
        let mut trainer = factory.make(&genome, 0, 7);
        let mut best = 0.0f64;
        for e in 1..=6 {
            best = best.max(trainer.train_epoch(e).train_acc);
        }
        assert!(best > 60.0, "micro cell failed to learn: best {best}%");
        assert!(trainer.flops() > 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "real CNN training; run with --release")]
    fn micro_random_search_produces_commons() {
        let (train, val) = datasets();
        let space = MicroSearchSpace::reduced_defaults();
        let factory = MicroTrainerFactory::new(space.clone(), train, val);
        let mut cfg = WorkflowConfig::a4nn(BeamIntensity::High, 2, 11);
        cfg.nas.epochs = 2;
        if let Some(e) = cfg.engine.as_mut() {
            e.e_pred = 2;
        }
        let (commons, schedule) = micro_random_search(&cfg, &space, &factory, 3);
        assert_eq!(commons.len(), 3);
        assert_eq!(schedule.generations.len(), 1);
        for r in &commons.records {
            assert!(r.arch_summary.starts_with("micro cell"));
            assert!(r.gpu.unwrap() < 2);
            assert!(r.epochs_trained() <= 2);
        }
    }
}
