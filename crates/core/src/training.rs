//! Algorithm 1: the training loop with the in-situ prediction engine.
//!
//! After every epoch the measured validation fitness `h_e` is appended to
//! the fitness history `H` and handed to the engine, which fits the
//! parametric curve, extrapolates the fitness at `e_pred`, appends to the
//! prediction history `P`, and checks convergence. On convergence the loop
//! breaks and `P[-1]` becomes the network's fitness; otherwise training
//! runs to the epoch budget and the last measured `h_e` is used.

use crate::checkpoint::CheckpointStore;
use crate::trainer::Trainer;
use a4nn_faults::FaultPlan;
use a4nn_lineage::{EpochRecord, Terminated};
use a4nn_penguin::{EngineConfig, PredictionEngine};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything Algorithm 1 produces for one network.
///
/// Serializable so a remote worker can ship the outcome back to the
/// coordinator over the wire (`a4nn-net`) byte-for-byte intact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingOutcome {
    /// Per-epoch records (fitness history + prediction history merged).
    pub epochs: Vec<EpochRecord>,
    /// The fitness the NAS uses: `P[-1]` if converged, else the last
    /// measured `h_e`.
    pub final_fitness: f64,
    /// The converged prediction, when training stopped early.
    pub predicted_fitness: Option<f64>,
    /// Whether the engine terminated training early.
    pub terminated_early: bool,
    /// Whether the model exhausted its retry budget; `epochs` then holds
    /// the final attempt's partial trail and `final_fitness` is 0.
    pub failed: bool,
    /// Training attempts consumed (1 = no retries were needed).
    pub attempts: u32,
    /// Simulated seconds of every attempt before the final one, in
    /// order — what the retry-aware scheduler charges to the GPUs.
    pub failed_attempt_seconds: Vec<f64>,
    /// Sum of epoch durations of the final attempt (training cost in
    /// seconds).
    pub train_seconds: f64,
    /// Wall seconds spent inside the prediction engine (its overhead,
    /// §4.3.1).
    pub engine_seconds: f64,
    /// Engine interactions performed (one per trained epoch).
    pub engine_interactions: u64,
}

impl TrainingOutcome {
    /// Epochs actually trained.
    pub fn epochs_trained(&self) -> u32 {
        self.epochs.len() as u32
    }

    /// How this training ended, as the lineage record trail reports it.
    pub fn termination(&self) -> Terminated {
        if self.failed {
            Terminated::Failed
        } else if self.terminated_early {
            Terminated::Early
        } else {
            Terminated::Completed
        }
    }
}

/// Mutable progress of one training attempt, owned by the caller so a
/// caught panic leaves the partial epoch trail and its accumulated
/// simulated seconds behind for the retry/failure bookkeeping.
#[derive(Debug, Default)]
pub struct AttemptProgress {
    /// Epoch records completed before the attempt ended (or died).
    pub epochs: Vec<EpochRecord>,
    /// Simulated seconds accumulated by those epochs.
    pub train_seconds: f64,
}

/// Run Algorithm 1 over `trainer` for at most `max_epochs` epochs.
/// `engine_config = None` reproduces the standalone NAS (built-in
/// truncated training: always the full budget).
pub fn train_with_engine(
    trainer: &mut dyn Trainer,
    engine_config: Option<&EngineConfig>,
    max_epochs: u32,
) -> TrainingOutcome {
    train_with_engine_checkpointed(trainer, engine_config, max_epochs, None)
}

/// [`train_with_engine`] that additionally writes the trainer's per-epoch
/// state into a [`CheckpointStore`] under `model_id` (§2.2.2). Trainers
/// that cannot snapshot (the surrogate) simply contribute nothing.
pub fn train_with_engine_checkpointed(
    trainer: &mut dyn Trainer,
    engine_config: Option<&EngineConfig>,
    max_epochs: u32,
    checkpoints: Option<(&CheckpointStore, u64)>,
) -> TrainingOutcome {
    let mut progress = AttemptProgress::default();
    train_with_engine_fallible(
        trainer,
        engine_config,
        max_epochs,
        checkpoints,
        None,
        &mut progress,
    )
}

/// One fallible attempt of Algorithm 1 with fault injection.
///
/// `faults = Some((plan, model_id, attempt))` arms the plan's injection
/// sites for this model/attempt; `None` (or an empty plan) runs the exact
/// happy-path loop of [`train_with_engine_checkpointed`]. An injected
/// trainer fault panics out of this function after `progress` has been
/// updated, so the caller's `catch_unwind` still sees the partial trail.
/// An injected engine crash is caught *here*: the engine is dropped with
/// its stats frozen at the previous epoch and training degrades to
/// run-to-completion — the same protocol the bus engine service follows.
pub fn train_with_engine_fallible(
    trainer: &mut dyn Trainer,
    engine_config: Option<&EngineConfig>,
    max_epochs: u32,
    checkpoints: Option<(&CheckpointStore, u64)>,
    faults: Option<(&FaultPlan, u64, u32)>,
    progress: &mut AttemptProgress,
) -> TrainingOutcome {
    let mut engine = engine_config.map(|cfg| PredictionEngine::new(cfg.clone()));
    let mut frozen = (0.0, 0u64);
    let mut final_fitness = 0.0;
    let mut predicted_fitness = None;
    let mut terminated_early = false;

    for e in 1..=max_epochs {
        if let Some((plan, model_id, attempt)) = faults {
            let stall = plan.stall_millis(model_id, e);
            if stall > 0 {
                std::thread::sleep(std::time::Duration::from_millis(stall));
            }
            if plan.panic_due(model_id, e, attempt) {
                panic!("injected trainer fault: model {model_id} epoch {e} attempt {attempt}");
            }
        }
        let result = trainer.train_epoch(e);
        if let Some((store, model_id)) = checkpoints {
            if let Some(state) = trainer.snapshot(e) {
                store.put(model_id, e, state);
            }
        }
        progress.train_seconds += result.duration_s;
        final_fitness = result.val_acc;
        let mut prediction = None;
        let mut converged = None;
        if let Some(mut eng) = engine.take() {
            let crash = faults.is_some_and(|(plan, model_id, _)| plan.engine_dropped(model_id, e));
            let interaction = catch_unwind(AssertUnwindSafe(|| {
                assert!(!crash, "injected engine fault");
                eng.observe(e, result.val_acc);
                let converged = eng.step();
                let prediction = eng.predictions().last().copied().flatten();
                (converged, prediction)
            }));
            match interaction {
                Ok((c, p)) => {
                    converged = c;
                    prediction = p;
                    engine = Some(eng);
                }
                Err(_) => {
                    // Engine crashed before observing epoch `e`: freeze
                    // its stats there and fall back to run-to-completion
                    // training — exactly what the bus trainer does on a
                    // retired verdict.
                    let stats = eng.stats();
                    frozen = (stats.total_seconds, stats.interactions);
                }
            }
        }
        progress.epochs.push(EpochRecord {
            epoch: e,
            train_acc: result.train_acc,
            val_acc: result.val_acc,
            duration_s: result.duration_s,
            prediction,
        });
        if let Some(p) = converged {
            final_fitness = p;
            predicted_fitness = Some(p);
            terminated_early = true;
            break;
        }
    }
    let (engine_seconds, engine_interactions) = engine
        .map(|e| (e.stats().total_seconds, e.stats().interactions))
        .unwrap_or(frozen);
    TrainingOutcome {
        epochs: std::mem::take(&mut progress.epochs),
        final_fitness,
        predicted_fitness,
        terminated_early,
        // A training that produced a NaN fitness (diverged loss, bad
        // engine extrapolation) is a failure: the record keeps the NaN
        // so the selection layer can exercise its NaN-worst ordering,
        // but the trail reports `Terminated::Failed`.
        failed: final_fitness.is_nan(),
        attempts: 1,
        failed_attempt_seconds: Vec::new(),
        train_seconds: progress.train_seconds,
        engine_seconds,
        engine_interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::EpochResult;
    use a4nn_penguin::EngineConfig;

    /// A trainer replaying a fixed learning curve.
    struct CurveTrainer {
        curve: Box<dyn Fn(u32) -> f64 + Send>,
        flops: f64,
    }

    impl Trainer for CurveTrainer {
        fn train_epoch(&mut self, epoch: u32) -> EpochResult {
            let v = (self.curve)(epoch);
            EpochResult {
                train_acc: (v + 2.0).min(100.0),
                val_acc: v,
                duration_s: 10.0,
            }
        }
        fn flops(&self) -> f64 {
            self.flops
        }
    }

    fn saturating(a: f64, rho: f64, scale: f64) -> CurveTrainer {
        CurveTrainer {
            curve: Box::new(move |e| a - scale * rho.powi(e as i32)),
            flops: 100.0,
        }
    }

    #[test]
    fn engine_terminates_well_behaved_curve_early() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        assert!(out.terminated_early);
        assert!(out.epochs_trained() < 25);
        assert!((out.final_fitness - 95.0).abs() < 1.5);
        assert_eq!(out.predicted_fitness, Some(out.final_fitness));
        assert_eq!(out.engine_interactions, u64::from(out.epochs_trained()));
        assert!((out.train_seconds - 10.0 * f64::from(out.epochs_trained())).abs() < 1e-9);
    }

    #[test]
    fn standalone_trains_full_budget() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, None, 25);
        assert!(!out.terminated_early);
        assert_eq!(out.epochs_trained(), 25);
        assert!(out.predicted_fitness.is_none());
        assert_eq!(out.engine_interactions, 0);
        assert_eq!(out.engine_seconds, 0.0);
        // Final fitness is the measured h_25.
        assert!((out.final_fitness - (95.0 - 50.0 * 0.65f64.powi(25))).abs() < 1e-9);
    }

    #[test]
    fn non_converging_curve_exhausts_budget_with_engine() {
        let mut t = CurveTrainer {
            curve: Box::new(|e| 0.14 * f64::from(e) * f64::from(e)),
            flops: 1.0,
        };
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        assert!(!out.terminated_early);
        assert_eq!(out.epochs_trained(), 25);
    }

    #[test]
    fn epoch_records_carry_predictions_once_available() {
        let mut t = saturating(92.0, 0.7, 45.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        // Before C_min = 3 points: no predictions.
        assert!(out.epochs[0].prediction.is_none());
        assert!(out.epochs[1].prediction.is_none());
        // After: predictions recorded.
        assert!(out.epochs.last().unwrap().prediction.is_some());
    }

    #[test]
    fn zero_epoch_budget_is_degenerate_but_safe() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 0);
        assert_eq!(out.epochs_trained(), 0);
        assert!(!out.terminated_early);
        assert_eq!(out.final_fitness, 0.0);
    }
}
