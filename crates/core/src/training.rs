//! Algorithm 1: the training loop with the in-situ prediction engine.
//!
//! After every epoch the measured validation fitness `h_e` is appended to
//! the fitness history `H` and handed to the engine, which fits the
//! parametric curve, extrapolates the fitness at `e_pred`, appends to the
//! prediction history `P`, and checks convergence. On convergence the loop
//! breaks and `P[-1]` becomes the network's fitness; otherwise training
//! runs to the epoch budget and the last measured `h_e` is used.

use crate::checkpoint::CheckpointStore;
use crate::trainer::Trainer;
use a4nn_lineage::EpochRecord;
use a4nn_penguin::{EngineConfig, PredictionEngine};

/// Everything Algorithm 1 produces for one network.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// Per-epoch records (fitness history + prediction history merged).
    pub epochs: Vec<EpochRecord>,
    /// The fitness the NAS uses: `P[-1]` if converged, else the last
    /// measured `h_e`.
    pub final_fitness: f64,
    /// The converged prediction, when training stopped early.
    pub predicted_fitness: Option<f64>,
    /// Whether the engine terminated training early.
    pub terminated_early: bool,
    /// Sum of epoch durations (training cost in seconds).
    pub train_seconds: f64,
    /// Wall seconds spent inside the prediction engine (its overhead,
    /// §4.3.1).
    pub engine_seconds: f64,
    /// Engine interactions performed (one per trained epoch).
    pub engine_interactions: u64,
}

impl TrainingOutcome {
    /// Epochs actually trained.
    pub fn epochs_trained(&self) -> u32 {
        self.epochs.len() as u32
    }
}

/// Run Algorithm 1 over `trainer` for at most `max_epochs` epochs.
/// `engine_config = None` reproduces the standalone NAS (built-in
/// truncated training: always the full budget).
pub fn train_with_engine(
    trainer: &mut dyn Trainer,
    engine_config: Option<&EngineConfig>,
    max_epochs: u32,
) -> TrainingOutcome {
    train_with_engine_checkpointed(trainer, engine_config, max_epochs, None)
}

/// [`train_with_engine`] that additionally writes the trainer's per-epoch
/// state into a [`CheckpointStore`] under `model_id` (§2.2.2). Trainers
/// that cannot snapshot (the surrogate) simply contribute nothing.
pub fn train_with_engine_checkpointed(
    trainer: &mut dyn Trainer,
    engine_config: Option<&EngineConfig>,
    max_epochs: u32,
    checkpoints: Option<(&CheckpointStore, u64)>,
) -> TrainingOutcome {
    let mut engine = engine_config.map(|cfg| PredictionEngine::new(cfg.clone()));
    let mut epochs = Vec::with_capacity(max_epochs as usize);
    let mut train_seconds = 0.0;
    let mut final_fitness = 0.0;
    let mut predicted_fitness = None;
    let mut terminated_early = false;

    for e in 1..=max_epochs {
        let result = trainer.train_epoch(e);
        if let Some((store, model_id)) = checkpoints {
            if let Some(state) = trainer.snapshot(e) {
                store.put(model_id, e, state);
            }
        }
        train_seconds += result.duration_s;
        final_fitness = result.val_acc;
        let mut prediction = None;
        let mut converged = None;
        if let Some(engine) = engine.as_mut() {
            engine.observe(e, result.val_acc);
            converged = engine.step();
            prediction = engine.predictions().last().copied().flatten();
        }
        epochs.push(EpochRecord {
            epoch: e,
            train_acc: result.train_acc,
            val_acc: result.val_acc,
            duration_s: result.duration_s,
            prediction,
        });
        if let Some(p) = converged {
            final_fitness = p;
            predicted_fitness = Some(p);
            terminated_early = true;
            break;
        }
    }
    let (engine_seconds, engine_interactions) = engine
        .map(|e| (e.stats().total_seconds, e.stats().interactions))
        .unwrap_or((0.0, 0));
    TrainingOutcome {
        epochs,
        final_fitness,
        predicted_fitness,
        terminated_early,
        train_seconds,
        engine_seconds,
        engine_interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::EpochResult;
    use a4nn_penguin::EngineConfig;

    /// A trainer replaying a fixed learning curve.
    struct CurveTrainer {
        curve: Box<dyn Fn(u32) -> f64 + Send>,
        flops: f64,
    }

    impl Trainer for CurveTrainer {
        fn train_epoch(&mut self, epoch: u32) -> EpochResult {
            let v = (self.curve)(epoch);
            EpochResult {
                train_acc: (v + 2.0).min(100.0),
                val_acc: v,
                duration_s: 10.0,
            }
        }
        fn flops(&self) -> f64 {
            self.flops
        }
    }

    fn saturating(a: f64, rho: f64, scale: f64) -> CurveTrainer {
        CurveTrainer {
            curve: Box::new(move |e| a - scale * rho.powi(e as i32)),
            flops: 100.0,
        }
    }

    #[test]
    fn engine_terminates_well_behaved_curve_early() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        assert!(out.terminated_early);
        assert!(out.epochs_trained() < 25);
        assert!((out.final_fitness - 95.0).abs() < 1.5);
        assert_eq!(out.predicted_fitness, Some(out.final_fitness));
        assert_eq!(out.engine_interactions, u64::from(out.epochs_trained()));
        assert!((out.train_seconds - 10.0 * f64::from(out.epochs_trained())).abs() < 1e-9);
    }

    #[test]
    fn standalone_trains_full_budget() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, None, 25);
        assert!(!out.terminated_early);
        assert_eq!(out.epochs_trained(), 25);
        assert!(out.predicted_fitness.is_none());
        assert_eq!(out.engine_interactions, 0);
        assert_eq!(out.engine_seconds, 0.0);
        // Final fitness is the measured h_25.
        assert!((out.final_fitness - (95.0 - 50.0 * 0.65f64.powi(25))).abs() < 1e-9);
    }

    #[test]
    fn non_converging_curve_exhausts_budget_with_engine() {
        let mut t = CurveTrainer {
            curve: Box::new(|e| 0.14 * f64::from(e) * f64::from(e)),
            flops: 1.0,
        };
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        assert!(!out.terminated_early);
        assert_eq!(out.epochs_trained(), 25);
    }

    #[test]
    fn epoch_records_carry_predictions_once_available() {
        let mut t = saturating(92.0, 0.7, 45.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 25);
        // Before C_min = 3 points: no predictions.
        assert!(out.epochs[0].prediction.is_none());
        assert!(out.epochs[1].prediction.is_none());
        // After: predictions recorded.
        assert!(out.epochs.last().unwrap().prediction.is_some());
    }

    #[test]
    fn zero_epoch_budget_is_degenerate_but_safe() {
        let mut t = saturating(95.0, 0.65, 50.0);
        let out = train_with_engine(&mut t, Some(&EngineConfig::paper_defaults()), 0);
        assert_eq!(out.epochs_trained(), 0);
        assert!(!out.terminated_early);
        assert_eq!(out.final_fitness, 0.0);
    }
}
