//! Full search-state persistence: everything [`A4nnWorkflow::run_loop`]
//! accumulates, snapshotted at each generation boundary so a killed
//! search continues bit-for-bit from the last committed boundary.
//!
//! [`A4nnWorkflow::run_loop`]: crate::workflow::A4nnWorkflow
//!
//! ## Crash-consistency protocol (manifest-last)
//!
//! A snapshot is two files in the run directory, committed in order:
//!
//! 1. `search_state_g<NNNN>.json` — the full state after generation
//!    `NNNN` completed, written via `write_atomic` under a *new* name;
//! 2. `resume_manifest.json` — version, config hash, and the state
//!    file's name, written via `write_atomic` *last*.
//!
//! The manifest is the single commit point. A crash anywhere before
//! step 2's rename leaves the previous manifest intact and pointing at
//! the previous (still present) state file, so a loader always sees a
//! consistent boundary — at worst one generation older than the crash.
//! Stale state files are pruned only *after* the manifest commits.
//!
//! ## What makes the continuation bit-exact
//!
//! The snapshot carries the raw xoshiro256** state words, so offspring
//! variation resumes mid-stream; the NSGA-II archive with objectives,
//! the survivor (parent) indices, the duplicate-architecture filter,
//! the generation cursor, and the id counter reconstruct selection
//! exactly; completed records, schedules, engine counters, the retry
//! ledger, and the metrics snapshot restore everything the remaining
//! generations append to. Because each model trains independently and
//! every stochastic stream is keyed on `(seed, model_id)`, no state
//! outside this struct crosses a generation boundary.

use crate::config::WorkflowConfig;
use a4nn_error::A4nnError;
use a4nn_genome::Genome;
use a4nn_lineage::{write_atomic, ModelRecord};
use a4nn_metrics::MetricsSnapshot;
use a4nn_nsga::Individual;
use a4nn_sched::{RetryLedger, ScheduleResult};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Schema version of [`SearchSnapshot`]; bump on any breaking change so
/// old snapshots fail loudly instead of resuming wrongly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Name of the commit-point manifest inside a run directory.
pub const MANIFEST_FILE: &str = "resume_manifest.json";

/// FNV-1a 64 over the config's canonical JSON: the fingerprint that
/// pins a snapshot to the exact configuration that produced it.
pub fn config_hash(cfg: &WorkflowConfig) -> Result<u64, A4nnError> {
    let bytes = serde_json::to_vec(cfg)
        .map_err(|e| A4nnError::Internal(format!("serializing config for hashing: {e}")))?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(hash)
}

/// The commit-point record: written last, read first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeManifest {
    /// Snapshot schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// [`config_hash`] of the configuration that produced the snapshot.
    pub config_hash: u64,
    /// Generations fully completed at the snapshot boundary.
    pub generations_done: usize,
    /// Name of the committed state file inside the same directory.
    pub state_file: String,
}

/// Everything the generational loop owns at a generation boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSnapshot {
    /// Snapshot schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// [`config_hash`] of the run's configuration.
    pub config_hash: u64,
    /// Names of the objective set the archive's vectors were measured
    /// under, in objective order. Empty on snapshots written before the
    /// objective registry existed (those are validated by archive
    /// dimension alone).
    #[serde(default)]
    pub objective_names: Vec<String>,
    /// Generations fully completed (the next one to run).
    pub generations_done: usize,
    /// Raw xoshiro256** state words of the search RNG, captured after
    /// the boundary's last draw.
    pub rng_state: [u64; 4],
    /// Next model id to assign.
    pub next_id: u64,
    /// The NSGA-II archive: every evaluated individual with objectives.
    pub archive: Vec<Individual<Genome>>,
    /// Indices into `archive` of the current survivor population.
    pub parents: Vec<usize>,
    /// Compact strings of every architecture evaluated or generated —
    /// the duplicate filter, sorted for deterministic serialization.
    pub seen: Vec<String>,
    /// Completed record trails, in evaluation order.
    pub records: Vec<ModelRecord>,
    /// Per-generation cluster schedules.
    pub schedules: Vec<ScheduleResult>,
    /// Accumulated prediction-engine overhead (measured wall seconds).
    pub engine_seconds: f64,
    /// Accumulated engine interactions.
    pub engine_interactions: u64,
    /// Per-model attempt accounting.
    pub retries: RetryLedger,
    /// The metrics registry's state at the boundary.
    pub metrics: MetricsSnapshot,
}

impl SearchSnapshot {
    /// Name of this snapshot's state file.
    fn state_file_name(&self) -> String {
        format!("search_state_g{:04}.json", self.generations_done)
    }

    /// Commit this snapshot into `dir` under the manifest-last protocol
    /// described in the module docs, then prune superseded state files.
    pub fn save(&self, dir: &Path) -> Result<(), A4nnError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| A4nnError::io(format!("creating run dir {}", dir.display()), e))?;
        let state_file = self.state_file_name();
        let state_json = serde_json::to_vec_pretty(self)
            .map_err(|e| A4nnError::Internal(format!("serializing search snapshot: {e}")))?;
        write_atomic(&dir.join(&state_file), &state_json)?;
        let manifest = ResumeManifest {
            version: self.version,
            config_hash: self.config_hash,
            generations_done: self.generations_done,
            state_file: state_file.clone(),
        };
        let manifest_json = serde_json::to_vec_pretty(&manifest)
            .map_err(|e| A4nnError::Internal(format!("serializing resume manifest: {e}")))?;
        write_atomic(&dir.join(MANIFEST_FILE), &manifest_json)?;
        // The manifest has committed; older state files are unreachable
        // and a failed unlink is harmless residue, not an error.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("search_state_g") && name != state_file {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Load the committed snapshot from `dir` and verify it belongs to
    /// `cfg`: schema version and config hash must both match, otherwise
    /// the snapshot is stale and resuming would silently diverge — that
    /// is an [`A4nnError::Checkpoint`] naming both fingerprints.
    pub fn load(dir: &Path, cfg: &WorkflowConfig) -> Result<SearchSnapshot, A4nnError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path).map_err(|e| {
            A4nnError::Checkpoint(format!(
                "no resumable search in {}: reading {}: {e}",
                dir.display(),
                manifest_path.display()
            ))
        })?;
        let manifest: ResumeManifest = serde_json::from_slice(&bytes).map_err(|e| {
            A4nnError::Checkpoint(format!("parsing {}: {e}", manifest_path.display()))
        })?;
        if manifest.version != SNAPSHOT_VERSION {
            return Err(A4nnError::Checkpoint(format!(
                "snapshot schema version {} does not match this binary's version {}",
                manifest.version, SNAPSHOT_VERSION
            )));
        }
        let expected = config_hash(cfg)?;
        if manifest.config_hash != expected {
            return Err(A4nnError::Checkpoint(format!(
                "stale snapshot: run directory was produced by config {:016x} but the \
                 requested configuration hashes to {:016x}; rerun with the original flags \
                 or start a fresh run directory",
                manifest.config_hash, expected
            )));
        }
        let state_path = dir.join(&manifest.state_file);
        let bytes = std::fs::read(&state_path)
            .map_err(|e| A4nnError::Checkpoint(format!("reading {}: {e}", state_path.display())))?;
        let state: SearchSnapshot = serde_json::from_slice(&bytes)
            .map_err(|e| A4nnError::Checkpoint(format!("parsing {}: {e}", state_path.display())))?;
        if state.generations_done != manifest.generations_done
            || state.config_hash != manifest.config_hash
        {
            return Err(A4nnError::Checkpoint(format!(
                "torn snapshot: manifest points at generation {} of config {:016x} but {} \
                 holds generation {} of config {:016x}",
                manifest.generations_done,
                manifest.config_hash,
                manifest.state_file,
                state.generations_done,
                state.config_hash
            )));
        }
        Ok(state)
    }
}

/// A cancellation hook consulted after each generation boundary commits:
/// return `true` to stop the search there (it exits as
/// [`A4nnError::Interrupted`], resumable from the committed snapshot).
pub type CancelHook<'a> = dyn Fn(usize) -> bool + Sync + 'a;

/// How a run interacts with the resume machinery: where (and whether) to
/// commit boundary snapshots, and an optional cancellation hook — the
/// in-process analogue of SIGKILL that the crash-determinism harness
/// drives.
#[derive(Default)]
pub struct RunControl<'a> {
    /// Directory boundary snapshots commit into; `None` disables
    /// snapshotting entirely (the zero-overhead default).
    pub snapshot_dir: Option<PathBuf>,
    /// Consulted with the number of completed generations after each
    /// boundary snapshot commits; `true` interrupts the search.
    pub cancel: Option<&'a CancelHook<'a>>,
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("snapshot_dir", &self.snapshot_dir)
            .field("cancel", &self.cancel.map(|_| "<hook>"))
            .finish()
    }
}

impl<'a> RunControl<'a> {
    /// Snapshot every generation boundary into `dir`, no cancel hook.
    pub fn snapshot_into(dir: impl Into<PathBuf>) -> Self {
        RunControl {
            snapshot_dir: Some(dir.into()),
            cancel: None,
        }
    }

    /// Attach a cancellation hook.
    pub fn with_cancel(mut self, hook: &'a CancelHook<'a>) -> Self {
        self.cancel = Some(hook);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_xfel::BeamIntensity;

    fn snapshot(cfg: &WorkflowConfig, generations_done: usize) -> SearchSnapshot {
        SearchSnapshot {
            version: SNAPSHOT_VERSION,
            config_hash: config_hash(cfg).unwrap(),
            objective_names: cfg.objectives.names(),
            generations_done,
            rng_state: [1, 2, 3, 4],
            next_id: 10,
            archive: Vec::new(),
            parents: Vec::new(),
            seen: vec!["0000000".into()],
            records: Vec::new(),
            schedules: Vec::new(),
            engine_seconds: 0.25,
            engine_interactions: 7,
            retries: RetryLedger::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("a4nn-resume-{tag}-{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_preserves_state() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("roundtrip");
        let snap = snapshot(&cfg, 3);
        snap.save(&dir).unwrap();
        let loaded = SearchSnapshot::load(&dir, &cfg).unwrap();
        assert_eq!(loaded.generations_done, 3);
        assert_eq!(loaded.rng_state, [1, 2, 3, 4]);
        assert_eq!(loaded.next_id, 10);
        assert_eq!(loaded.seen, vec!["0000000".to_string()]);
        assert_eq!(loaded.engine_seconds, 0.25);
        assert_eq!(loaded.engine_interactions, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn superseded_state_files_are_pruned_after_commit() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("prune");
        snapshot(&cfg, 1).save(&dir).unwrap();
        snapshot(&cfg, 2).save(&dir).unwrap();
        let states: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("search_state_g"))
            .collect();
        assert_eq!(states, vec!["search_state_g0002.json".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_a_checkpoint_error_naming_both_hashes() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("mismatch");
        snapshot(&cfg, 1).save(&dir).unwrap();
        let mut other = cfg.clone();
        other.seed = 6;
        let err = SearchSnapshot::load(&dir, &other).unwrap_err();
        assert_eq!(err.exit_code(), 5, "stale snapshots map to exit 5");
        let msg = err.to_string();
        let a = format!("{:016x}", config_hash(&cfg).unwrap());
        let b = format!("{:016x}", config_hash(&other).unwrap());
        assert!(msg.contains(&a) && msg.contains(&b), "got: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_objectives_make_the_snapshot_stale() {
        // `objectives` is part of the serialized config, so resuming
        // under a different --objectives set fails the fingerprint check
        // — the existing exit-5 stale-snapshot path.
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("objset");
        snapshot(&cfg, 1).save(&dir).unwrap();
        let mut other = cfg;
        other.objectives =
            crate::objectives::ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
        let err = SearchSnapshot::load(&dir, &other).unwrap_err();
        assert_eq!(err.exit_code(), 5, "changed objectives must exit 5");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("version");
        let mut snap = snapshot(&cfg, 1);
        snap.version = SNAPSHOT_VERSION + 1;
        snap.save(&dir).unwrap();
        let err = SearchSnapshot::load(&dir, &cfg).unwrap_err();
        assert!(matches!(err, A4nnError::Checkpoint(_)), "got {err}");
        assert!(err.to_string().contains("schema version"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_checkpoint_error() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = SearchSnapshot::load(&dir, &cfg).unwrap_err();
        assert!(matches!(err, A4nnError::Checkpoint(_)), "got {err}");
        assert!(err.to_string().contains("no resumable search"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_state_detected_via_manifest_cross_check() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let dir = tmp("torn");
        snapshot(&cfg, 2).save(&dir).unwrap();
        // Corrupt the committed state file to claim a different boundary.
        let state_path = dir.join("search_state_g0002.json");
        let mut tampered = snapshot(&cfg, 1);
        tampered.config_hash = config_hash(&cfg).unwrap();
        std::fs::write(&state_path, serde_json::to_vec_pretty(&tampered).unwrap()).unwrap();
        let err = SearchSnapshot::load(&dir, &cfg).unwrap_err();
        assert!(err.to_string().contains("torn snapshot"), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        assert_eq!(config_hash(&cfg).unwrap(), config_hash(&cfg).unwrap());
        let mut other = cfg.clone();
        other.nas.generations += 1;
        assert_ne!(config_hash(&cfg).unwrap(), config_hash(&other).unwrap());
    }
}
