//! Shared generation evaluation: train a batch of genomes (in parallel,
//! with the engine in situ), FIFO-schedule it on the virtual cluster, and
//! produce record trails — the machinery every NAS driver plugs into,
//! which is the concrete form of the paper's composability claim.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::fault::{generation_schedule, train_resilient_direct, FaultTolerance};
use crate::trainer::TrainerFactory;
use crate::training::TrainingOutcome;
use a4nn_genome::{Genome, SearchSpace};
use a4nn_lineage::{EngineParamsRecord, ModelRecord};
use a4nn_penguin::ParametricCurve;
use a4nn_sched::ScheduleResult;
use rayon::prelude::*;

/// Result of evaluating one generation batch.
pub struct BatchResult {
    /// Per-genome training outcomes, in submission order.
    pub outcomes: Vec<(TrainingOutcome, f64)>,
    /// The generation's cluster schedule.
    pub schedule: ScheduleResult,
    /// Completed record trails, in submission order.
    pub records: Vec<ModelRecord>,
}

/// The engine-parameters stamp attached to every record trail of a run
/// (Table 1), or `None` for standalone-NAS runs.
pub fn engine_params_record(cfg: &WorkflowConfig) -> Option<EngineParamsRecord> {
    cfg.engine.as_ref().map(|e| EngineParamsRecord {
        function: e.family.name().to_string(),
        c_min: e.c_min,
        e_pred: e.e_pred,
        n: e.n_converge,
        r: e.r,
    })
}

/// Train `genomes` as one generation: data-parallel training (each model's
/// stochasticity keyed to its id, so the parallelism is deterministic),
/// FIFO scheduling onto `cfg.gpus` virtual GPUs, and lineage recording.
pub fn evaluate_generation(
    cfg: &WorkflowConfig,
    space: &SearchSpace,
    factory: &dyn TrainerFactory,
    genomes: &[Genome],
    generation: usize,
    base_id: u64,
    checkpoints: Option<&CheckpointStore>,
) -> BatchResult {
    evaluate_generation_resilient(
        cfg,
        space,
        factory,
        genomes,
        generation,
        base_id,
        checkpoints,
        &FaultTolerance::default(),
    )
}

/// [`evaluate_generation`] under a [`FaultTolerance`]: each model trains
/// under `catch_unwind` with the retry policy's attempt budget, injected
/// faults come from the deterministic plan, and failed models survive as
/// `Terminated::Failed` records instead of poisoning the batch.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_generation_resilient(
    cfg: &WorkflowConfig,
    space: &SearchSpace,
    factory: &dyn TrainerFactory,
    genomes: &[Genome],
    generation: usize,
    base_id: u64,
    checkpoints: Option<&CheckpointStore>,
    ft: &FaultTolerance,
) -> BatchResult {
    // Divide the cores between the generation's concurrent trainers and
    // each trainer's GEMM kernels: `gpus` models train at once, so each
    // gets `cores / gpus` intra-op threads (results are bitwise
    // independent of this budget; it only affects wall time).
    a4nn_nn::gemm::set_thread_budget(a4nn_sched::intra_op_threads(cfg.gpus));
    let outcomes: Vec<(TrainingOutcome, f64)> = genomes
        .par_iter()
        .enumerate()
        .map(|(k, genome)| {
            let model_id = base_id + k as u64;
            train_resilient_direct(cfg, factory, genome, model_id, checkpoints, ft)
        })
        .collect();

    // Engine overhead is measured wall time and reported separately
    // (§4.3.1 finds it negligible); folding it into simulated durations
    // would make runs non-reproducible. Failed attempts, on the other
    // hand, are simulated time and are charged to the GPUs.
    let schedule = generation_schedule(cfg.gpus, base_id, &outcomes, &ft.retry);

    let engine_record = engine_params_record(cfg);
    let records: Vec<ModelRecord> = genomes
        .iter()
        .zip(&outcomes)
        .enumerate()
        .map(|(k, (genome, (outcome, flops)))| {
            let model_id = base_id + k as u64;
            // With retries the schedule holds one slot per attempt; the
            // model's placement is its final attempt's GPU.
            let gpu = schedule
                .assignments
                .iter()
                .rev()
                .find(|a| a.task_id == model_id)
                .map(|a| a.gpu);
            let arch = space.decode(genome);
            ModelRecord {
                model_id,
                generation,
                gpu,
                genome: genome.clone(),
                arch_summary: arch.summary(),
                flops: *flops,
                engine: engine_record.clone(),
                epochs: outcome.epochs.clone(),
                final_fitness: outcome.final_fitness,
                predicted_fitness: outcome.predicted_fitness,
                termination: outcome.termination(),
                attempts: outcome.attempts,
                beam: cfg.beam.label().to_string(),
                wall_time_s: outcome.train_seconds,
            }
        })
        .collect();

    BatchResult {
        outcomes,
        schedule,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::{SurrogateFactory, SurrogateParams};
    use a4nn_xfel::BeamIntensity;
    use rand::SeedableRng;

    #[test]
    fn batch_evaluation_is_complete_and_consistent() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let space = cfg.search_space();
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let genomes: Vec<_> = (0..5).map(|_| space.random_genome(&mut rng)).collect();
        let batch = evaluate_generation(&cfg, &space, &factory, &genomes, 3, 10, None);
        assert_eq!(batch.outcomes.len(), 5);
        assert_eq!(batch.records.len(), 5);
        assert_eq!(batch.schedule.assignments.len(), 5);
        for (k, r) in batch.records.iter().enumerate() {
            assert_eq!(r.model_id, 10 + k as u64);
            assert_eq!(r.generation, 3);
            assert!(r.gpu.unwrap() < 2);
            assert!((r.wall_time_s - batch.outcomes[k].0.train_seconds).abs() < 1e-12);
        }
    }
}
