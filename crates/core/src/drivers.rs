//! Alternative NAS drivers behind the same workflow plumbing.
//!
//! The paper's composability claim (§2, §6) is that A4NN "can be
//! generalized to other datasets and NAS implementations than NSGA-Net".
//! This module makes that concrete: two more search drivers — pure
//! **random search** and **regularized (aging) evolution** (Real et al.,
//! 2019) — run against the *same* trainer factories, prediction engine,
//! scheduler, and lineage tracker as the NSGA-Net workflow, producing the
//! same [`RunOutput`]. Nothing in the engine or the orchestration layer
//! changes; only the proposal/selection policy does.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::fault::{FaultStats, FaultTolerance};
use crate::pipeline::{DirectTransport, EvalPipeline, Transport};
use crate::trainer::TrainerFactory;
use crate::workflow::RunOutput;
use a4nn_error::A4nnError;
use a4nn_genome::Genome;
use a4nn_lineage::DataCommons;
use a4nn_sched::GenerationSchedule;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Pure random search: every generation is a fresh random batch. The
/// weakest sensible baseline — the engine still saves its epochs.
#[derive(Debug, Clone)]
pub struct RandomSearchWorkflow {
    config: WorkflowConfig,
}

impl RandomSearchWorkflow {
    /// Build a random-search driver.
    pub fn new(config: WorkflowConfig) -> Self {
        assert!(config.gpus > 0, "need at least one GPU");
        assert!(config.nas.population > 0, "population must be positive");
        RandomSearchWorkflow { config }
    }

    /// Run the search; evaluates the same `population +
    /// offspring × (generations − 1)` budget as the NSGA-Net driver.
    pub fn run(&self, factory: &dyn TrainerFactory) -> RunOutput {
        self.run_checkpointed(factory, None)
    }

    /// [`run`](Self::run) with per-epoch checkpointing. Panics on a
    /// machinery failure; see
    /// [`try_run_checkpointed`](Self::try_run_checkpointed).
    pub fn run_checkpointed(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
    ) -> RunOutput {
        self.try_run_checkpointed(factory, checkpoints)
            .unwrap_or_else(|e| panic!("random search failed: {e}"))
    }

    /// [`run_checkpointed`](Self::run_checkpointed) returning machinery
    /// failures as [`A4nnError`] instead of panicking.
    pub fn try_run_checkpointed(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
    ) -> Result<RunOutput, A4nnError> {
        let cfg = &self.config;
        let space = cfg.search_space();
        let ft = FaultTolerance::default();
        let pipeline = EvalPipeline::new(cfg, &space, factory, checkpoints, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut records = Vec::with_capacity(cfg.nas.total_models());
        let mut schedules = Vec::with_capacity(cfg.nas.generations);
        let mut engine_seconds = 0.0;
        let mut engine_interactions = 0;
        let mut next_id = 0u64;
        for generation in 0..cfg.nas.generations {
            let count = if generation == 0 {
                cfg.nas.population
            } else {
                cfg.nas.offspring
            };
            let genomes: Vec<Genome> = (0..count).map(|_| space.random_genome(&mut rng)).collect();
            let batch = pipeline.run(&DirectTransport, &genomes, generation, next_id)?;
            for (outcome, _) in &batch.outcomes {
                engine_seconds += outcome.engine_seconds;
                engine_interactions += outcome.engine_interactions;
            }
            records.extend(batch.records);
            schedules.push(batch.schedule);
            next_id += count as u64;
        }
        let fault_stats = FaultStats::from_records(&records);
        Ok(RunOutput {
            commons: DataCommons::new(records),
            schedule: GenerationSchedule {
                generations: schedules,
            },
            config: cfg.clone(),
            engine_seconds,
            engine_interactions,
            bus_stats: None,
            transport_stats: pipeline.transport_stats(DirectTransport.name()),
            fault_stats,
            retry_ledger: a4nn_sched::RetryLedger::new(),
            metrics: pipeline.metrics_registry().snapshot(),
        })
    }
}

/// Regularized (aging) evolution, Real et al. 2019: a FIFO population
/// queue; each step mutates the fittest member of a random sample and
/// retires the oldest member. Single-objective on validation fitness (the
/// original algorithm's form); FLOPs are still recorded in the trails.
#[derive(Debug, Clone)]
pub struct AgingEvolutionWorkflow {
    config: WorkflowConfig,
    /// Tournament sample size `S` (Real et al. use ~25 at population 100;
    /// scaled down for Table-2-sized populations).
    pub sample_size: usize,
}

impl AgingEvolutionWorkflow {
    /// Build an aging-evolution driver with sample size `S`.
    pub fn new(config: WorkflowConfig, sample_size: usize) -> Self {
        assert!(config.gpus > 0, "need at least one GPU");
        assert!(config.nas.population > 0, "population must be positive");
        assert!(sample_size >= 1, "sample size must be at least 1");
        AgingEvolutionWorkflow {
            config,
            sample_size,
        }
    }

    /// Run the search with the standard budget.
    pub fn run(&self, factory: &dyn TrainerFactory) -> RunOutput {
        self.run_checkpointed(factory, None)
    }

    /// [`run`](Self::run) with per-epoch checkpointing. Panics on a
    /// machinery failure; see
    /// [`try_run_checkpointed`](Self::try_run_checkpointed).
    pub fn run_checkpointed(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
    ) -> RunOutput {
        self.try_run_checkpointed(factory, checkpoints)
            .unwrap_or_else(|e| panic!("aging evolution failed: {e}"))
    }

    /// [`run_checkpointed`](Self::run_checkpointed) returning machinery
    /// failures as [`A4nnError`] instead of panicking.
    pub fn try_run_checkpointed(
        &self,
        factory: &dyn TrainerFactory,
        checkpoints: Option<&CheckpointStore>,
    ) -> Result<RunOutput, A4nnError> {
        let cfg = &self.config;
        let space = cfg.search_space();
        let ft = FaultTolerance::default();
        let pipeline = EvalPipeline::new(cfg, &space, factory, checkpoints, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut records = Vec::with_capacity(cfg.nas.total_models());
        let mut schedules = Vec::with_capacity(cfg.nas.generations);
        let mut engine_seconds = 0.0;
        let mut engine_interactions = 0;
        let mut next_id = 0u64;
        // The aging queue: (genome, fitness), oldest at the front.
        let mut population: VecDeque<(Genome, f64)> = VecDeque::with_capacity(cfg.nas.population);

        for generation in 0..cfg.nas.generations {
            let genomes: Vec<Genome> = if generation == 0 {
                (0..cfg.nas.population)
                    .map(|_| space.random_genome(&mut rng))
                    .collect()
            } else {
                (0..cfg.nas.offspring)
                    .map(|_| {
                        // Tournament: best of S uniform samples.
                        let sample = self.sample_size.min(population.len());
                        let Some(parent) = (0..sample)
                            .map(|_| rng.gen_range(0..population.len()))
                            .max_by(|&a, &b| {
                                a4nn_lineage::fitness_cmp(population[a].1, population[b].1)
                            })
                        else {
                            // `sample_size >= 1` is asserted and the
                            // population is non-empty past generation 0.
                            unreachable!("tournament sample is non-empty")
                        };
                        let mut child = population[parent].0.clone();
                        space.mutate(&mut child, &mut rng);
                        child
                    })
                    .collect()
            };
            let batch = pipeline.run(&DirectTransport, &genomes, generation, next_id)?;
            for (genome, (outcome, _)) in genomes.iter().zip(&batch.outcomes) {
                engine_seconds += outcome.engine_seconds;
                engine_interactions += outcome.engine_interactions;
                // Age out the oldest member once the queue is full.
                if population.len() == cfg.nas.population {
                    population.pop_front();
                }
                population.push_back((genome.clone(), outcome.final_fitness));
            }
            records.extend(batch.records);
            schedules.push(batch.schedule);
            next_id += genomes.len() as u64;
        }
        let fault_stats = FaultStats::from_records(&records);
        Ok(RunOutput {
            commons: DataCommons::new(records),
            schedule: GenerationSchedule {
                generations: schedules,
            },
            config: cfg.clone(),
            engine_seconds,
            engine_interactions,
            bus_stats: None,
            transport_stats: pipeline.transport_stats(DirectTransport.name()),
            fault_stats,
            retry_ledger: a4nn_sched::RetryLedger::new(),
            metrics: pipeline.metrics_registry().snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NasSettings;
    use crate::surrogate::{SurrogateFactory, SurrogateParams};
    use a4nn_lineage::Analyzer;
    use a4nn_penguin::EngineConfig;
    use a4nn_xfel::BeamIntensity;

    fn config(engine: bool, seed: u64) -> WorkflowConfig {
        WorkflowConfig {
            nas: NasSettings {
                population: 8,
                offspring: 8,
                generations: 5,
                ..NasSettings::paper_defaults()
            },
            engine: engine.then(EngineConfig::paper_defaults),
            gpus: 2,
            beam: BeamIntensity::Medium,
            seed,
            objectives: crate::objectives::ObjectiveSet::default(),
        }
    }

    fn factory(cfg: &WorkflowConfig) -> SurrogateFactory {
        SurrogateFactory::new(cfg, SurrogateParams::for_beam(cfg.beam))
    }

    #[test]
    fn random_search_evaluates_full_budget() {
        let cfg = config(true, 3);
        let out = RandomSearchWorkflow::new(cfg.clone()).run(&factory(&cfg));
        assert_eq!(out.commons.len(), cfg.nas.total_models());
        assert!(out.total_epochs() > 0);
        assert!(
            out.epochs_saved_pct() > 0.0,
            "engine must still save epochs"
        );
    }

    #[test]
    fn aging_evolution_evaluates_full_budget_and_improves() {
        let cfg = config(true, 4);
        let out = AgingEvolutionWorkflow::new(cfg.clone(), 3).run(&factory(&cfg));
        assert_eq!(out.commons.len(), cfg.nas.total_models());
        // Mean fitness of late generations should not be worse than the
        // random initial generation (selection pressure works).
        let mean_of = |gen: usize| {
            let rs: Vec<f64> = out
                .commons
                .records
                .iter()
                .filter(|r| r.generation == gen)
                .map(|r| r.final_fitness)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        assert!(
            mean_of(4) + 8.0 > mean_of(0),
            "late-generation fitness collapsed: {} vs {}",
            mean_of(4),
            mean_of(0)
        );
    }

    #[test]
    fn drivers_are_deterministic_and_distinct() {
        let cfg = config(true, 5);
        let f = factory(&cfg);
        let r1 = RandomSearchWorkflow::new(cfg.clone()).run(&f);
        let r2 = RandomSearchWorkflow::new(cfg.clone()).run(&f);
        assert_eq!(r1.commons, r2.commons);
        let a1 = AgingEvolutionWorkflow::new(cfg, 3).run(&f);
        assert_ne!(
            r1.commons, a1.commons,
            "different drivers, different searches"
        );
    }

    #[test]
    fn standalone_drivers_train_full_budget() {
        let cfg = config(false, 6);
        let f = factory(&cfg);
        let out = RandomSearchWorkflow::new(cfg.clone()).run(&f);
        assert_eq!(
            out.total_epochs(),
            u64::from(cfg.nas.epochs) * cfg.nas.total_models() as u64
        );
        let out = AgingEvolutionWorkflow::new(cfg, 3).run(&f);
        assert_eq!(out.total_epochs(), 25 * 40);
    }

    #[test]
    fn nsga_beats_or_matches_random_search_on_pareto_quality() {
        // The multi-objective search should dominate random search on the
        // FLOPs-efficiency axis at comparable accuracy.
        use crate::workflow::A4nnWorkflow;
        let cfg = config(true, 7);
        let f = factory(&cfg);
        let nsga = A4nnWorkflow::new(cfg.clone()).run(&f);
        let random = RandomSearchWorkflow::new(cfg).run(&f);
        let best = |out: &RunOutput| {
            Analyzer::new(&out.commons)
                .best_by_fitness()
                .unwrap()
                .final_fitness
        };
        assert!(best(&nsga) >= best(&random) - 3.0);
    }
}
