//! Bus-orchestrated generation evaluation.
//!
//! The streaming counterpart of [`crate::eval::evaluate_generation`]:
//! trainers run as jobs on the sched thread pool ([`GpuPool`]) and
//! publish per-epoch fitness onto the bus instead of calling the
//! prediction engine inline. The [`a4nn_bus::PredictionEngineService`]
//! answers each `EpochCompleted` with an `EngineVerdict` the trainer
//! blocks on — the same synchronous per-epoch hand-off as Algorithm 1,
//! just routed through communicators — so the search trajectory and the
//! record trails are identical to the direct path.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::trainer::TrainerFactory;
use crate::training::TrainingOutcome;
use a4nn_bus::{
    EpochCompleted, Event, GenerationScheduled, GpuSlot, ModelCompleted, Policy, Topic,
};
use a4nn_genome::{Genome, SearchSpace};
use a4nn_lineage::EpochRecord;
use a4nn_sched::{schedule_fifo, GpuPool, ScheduleResult, Task, TaskOrdering};

/// Result of evaluating one generation over the bus. Record trails are
/// not assembled here — the lineage recorder service folds them from
/// the event stream at end of run.
pub struct BusBatchResult {
    /// Per-genome training outcomes, in submission order.
    pub outcomes: Vec<(TrainingOutcome, f64)>,
    /// The generation's cluster schedule.
    pub schedule: ScheduleResult,
}

/// Train `genomes` as one generation with every trainer publishing to
/// `topic`. Requires the engine service (when `cfg.engine` is set), the
/// lineage recorder, and any stats services to already be subscribed.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_generation_bus(
    cfg: &WorkflowConfig,
    space: &SearchSpace,
    factory: &dyn TrainerFactory,
    genomes: &[Genome],
    generation: usize,
    base_id: u64,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
) -> BusBatchResult {
    let engine_enabled = cfg.engine.is_some();
    let jobs: Vec<_> = genomes
        .iter()
        .enumerate()
        .map(|(k, genome)| {
            let model_id = base_id + k as u64;
            let topic = topic.clone();
            move |_worker: usize| {
                train_over_bus(
                    cfg,
                    factory,
                    genome,
                    model_id,
                    generation,
                    engine_enabled,
                    checkpoints,
                    &topic,
                )
            }
        })
        .collect();
    let (outcomes, _reports) = GpuPool::new(cfg.gpus).run_batch(jobs);

    // Post-hoc discrete-event schedule over simulated durations, exactly
    // as in the direct path (engine wall overhead stays out of it).
    let tasks: Vec<Task> = outcomes
        .iter()
        .enumerate()
        .map(|(k, (outcome, _))| Task {
            id: base_id + k as u64,
            duration: outcome.train_seconds,
        })
        .collect();
    let schedule = schedule_fifo(cfg.gpus, &tasks, TaskOrdering::Fifo);

    for (k, (genome, (outcome, flops))) in genomes.iter().zip(&outcomes).enumerate() {
        let event = Event::ModelCompleted(ModelCompleted {
            model_id: base_id + k as u64,
            generation,
            genome: genome.clone(),
            arch_summary: space.decode(genome).summary(),
            flops: *flops,
            final_fitness: outcome.final_fitness,
            predicted_fitness: outcome.predicted_fitness,
            terminated_early: outcome.terminated_early,
            train_seconds: outcome.train_seconds,
        });
        topic.publish(event).expect("bus closed mid-run");
    }
    topic
        .publish(Event::GenerationScheduled(GenerationScheduled {
            generation,
            assignments: schedule
                .assignments
                .iter()
                .map(|a| GpuSlot {
                    model_id: a.task_id,
                    gpu: a.gpu,
                    start_s: a.start,
                    end_s: a.end,
                })
                .collect(),
        }))
        .expect("bus closed mid-run");

    BusBatchResult { outcomes, schedule }
}

/// Algorithm 1 with the engine across the bus: publish the epoch, block
/// on the engine service's verdict, terminate early on convergence.
#[allow(clippy::too_many_arguments)]
fn train_over_bus(
    cfg: &WorkflowConfig,
    factory: &dyn TrainerFactory,
    genome: &Genome,
    model_id: u64,
    generation: usize,
    engine_enabled: bool,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
) -> (TrainingOutcome, f64) {
    // Subscribe to this model's verdicts before the first publish so no
    // reply can be missed. Capacity 1 suffices: the hand-off is
    // strictly request/reply, one verdict in flight per model.
    let verdicts = engine_enabled.then(|| {
        topic.subscribe_filtered(
            Policy::Block { capacity: 1 },
            move |event| matches!(event, Event::EngineVerdict(v) if v.model_id == model_id),
        )
    });
    let mut trainer = factory.make(genome, model_id, cfg.seed);
    let max_epochs = cfg.nas.epochs;
    let mut epochs = Vec::with_capacity(max_epochs as usize);
    let mut train_seconds = 0.0;
    let mut final_fitness = 0.0;
    let mut predicted_fitness = None;
    let mut terminated_early = false;
    let mut engine_seconds = 0.0;
    let mut engine_interactions = 0u64;

    for e in 1..=max_epochs {
        let result = trainer.train_epoch(e);
        if let Some(store) = checkpoints {
            if let Some(state) = trainer.snapshot(e) {
                store.put(model_id, e, state);
            }
        }
        train_seconds += result.duration_s;
        final_fitness = result.val_acc;
        topic
            .publish(Event::EpochCompleted(EpochCompleted {
                model_id,
                generation,
                epoch: e,
                train_acc: result.train_acc,
                val_acc: result.val_acc,
                duration_s: result.duration_s,
            }))
            .expect("bus closed mid-run");
        let mut prediction = None;
        let mut converged = None;
        if let Some(verdicts) = &verdicts {
            let Ok(Event::EngineVerdict(v)) = verdicts.recv() else {
                panic!("engine service went away mid-run");
            };
            prediction = v.prediction;
            converged = v.converged;
            engine_seconds = v.engine_seconds;
            engine_interactions = v.engine_interactions;
        }
        epochs.push(EpochRecord {
            epoch: e,
            train_acc: result.train_acc,
            val_acc: result.val_acc,
            duration_s: result.duration_s,
            prediction,
        });
        if let Some(p) = converged {
            final_fitness = p;
            predicted_fitness = Some(p);
            terminated_early = true;
            break;
        }
    }
    let flops = trainer.flops();
    (
        TrainingOutcome {
            epochs,
            final_fitness,
            predicted_fitness,
            terminated_early,
            train_seconds,
            engine_seconds,
            engine_interactions,
        },
        flops,
    )
}
