//! Bus-orchestrated generation evaluation.
//!
//! The streaming counterpart of [`crate::eval::evaluate_generation`]:
//! trainers run as jobs on the sched thread pool ([`GpuPool`]) and
//! publish per-epoch fitness onto the bus instead of calling the
//! prediction engine inline. The [`a4nn_bus::PredictionEngineService`]
//! answers each `EpochCompleted` with an `EngineVerdict` the trainer
//! blocks on — the same synchronous per-epoch hand-off as Algorithm 1,
//! just routed through communicators — so the search trajectory and the
//! record trails are identical to the direct path.
//!
//! Fault tolerance: attempts run under the pool's `catch_unwind`; a
//! dying attempt publishes [`TrainingFailed`] *before* it unwinds, so
//! the engine and recorder services discard its partial state ahead of
//! any retry's events. A trainer that receives a `retired` verdict (the
//! engine crashed for its model) — or whose verdict subscription dies
//! outright — degrades to run-to-completion training instead of
//! deadlocking.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::fault::{generation_schedule, FaultTolerance};
use crate::trainer::TrainerFactory;
use crate::training::TrainingOutcome;
use a4nn_bus::{
    EpochCompleted, Event, GenerationScheduled, GpuSlot, ModelCompleted, Policy, Topic,
    TrainingFailed,
};
use a4nn_genome::{Genome, SearchSpace};
use a4nn_lineage::EpochRecord;
use a4nn_sched::{GpuPool, ScheduleResult};
use std::collections::HashMap;
use std::sync::Mutex;

/// Result of evaluating one generation over the bus. Record trails are
/// not assembled here — the lineage recorder service folds them from
/// the event stream at end of run.
pub struct BusBatchResult {
    /// Per-genome training outcomes, in submission order.
    pub outcomes: Vec<(TrainingOutcome, f64)>,
    /// The generation's cluster schedule.
    pub schedule: ScheduleResult,
}

/// What a dying or dead attempt leaves behind for the failure
/// bookkeeping: the final attempt's partial trail plus the simulated
/// seconds every failed attempt consumed.
#[derive(Debug, Default)]
struct Partial {
    epochs: Vec<EpochRecord>,
    train_seconds: f64,
    flops: f64,
    failed_attempt_seconds: Vec<f64>,
}

/// Train `genomes` as one generation with every trainer publishing to
/// `topic`. Requires the engine service (when `cfg.engine` is set), the
/// lineage recorder, and any stats services to already be subscribed.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_generation_bus(
    cfg: &WorkflowConfig,
    space: &SearchSpace,
    factory: &dyn TrainerFactory,
    genomes: &[Genome],
    generation: usize,
    base_id: u64,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
) -> BusBatchResult {
    evaluate_generation_bus_resilient(
        cfg,
        space,
        factory,
        genomes,
        generation,
        base_id,
        checkpoints,
        topic,
        &FaultTolerance::default(),
    )
}

/// [`evaluate_generation_bus`] under a [`FaultTolerance`]: the pool
/// requeues panicked attempts per the retry policy, and models that
/// exhaust their budget surface as failed outcomes (and failed
/// `ModelCompleted` events) carrying their final partial trail.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_generation_bus_resilient(
    cfg: &WorkflowConfig,
    space: &SearchSpace,
    factory: &dyn TrainerFactory,
    genomes: &[Genome],
    generation: usize,
    base_id: u64,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
    ft: &FaultTolerance,
) -> BusBatchResult {
    let engine_enabled = cfg.engine.is_some();
    // Same core split as the direct path: `gpus` concurrent trainers,
    // each with `cores / gpus` intra-op GEMM threads.
    a4nn_nn::gemm::set_thread_budget(a4nn_sched::intra_op_threads(cfg.gpus));
    let partials: Mutex<HashMap<u64, Partial>> = Mutex::new(HashMap::new());
    let jobs: Vec<_> = genomes
        .iter()
        .enumerate()
        .map(|(k, genome)| {
            let model_id = base_id + k as u64;
            let topic = topic.clone();
            let partials = &partials;
            move |_worker: usize, attempt: u32| {
                train_over_bus(
                    cfg,
                    factory,
                    genome,
                    model_id,
                    generation,
                    engine_enabled,
                    checkpoints,
                    &topic,
                    ft,
                    attempt,
                    partials,
                )
            }
        })
        .collect();
    let batch = GpuPool::new(cfg.gpus).run_batch_retry(jobs, &ft.retry);

    let mut partials = partials.into_inner().expect("no poisoned partials");
    let outcomes: Vec<(TrainingOutcome, f64)> = batch
        .outputs
        .into_iter()
        .enumerate()
        .map(|(k, output)| {
            let model_id = base_id + k as u64;
            let attempts = batch.reports[k].attempts;
            let partial = partials.remove(&model_id).unwrap_or_default();
            match output {
                Some((mut outcome, flops)) => {
                    outcome.attempts = attempts;
                    outcome.failed_attempt_seconds = partial.failed_attempt_seconds;
                    (outcome, flops)
                }
                None => {
                    // Every attempt died: a failed outcome from the final
                    // attempt's partial trail, mirroring the direct path.
                    let outcome = TrainingOutcome {
                        epochs: partial.epochs,
                        final_fitness: 0.0,
                        predicted_fitness: None,
                        terminated_early: false,
                        failed: true,
                        attempts,
                        failed_attempt_seconds: partial.failed_attempt_seconds,
                        train_seconds: partial.train_seconds,
                        engine_seconds: 0.0,
                        engine_interactions: 0,
                    };
                    (outcome, partial.flops)
                }
            }
        })
        .collect();

    // Post-hoc discrete-event schedule over simulated durations, exactly
    // as in the direct path (engine wall overhead stays out of it;
    // failed attempts are charged to the GPUs).
    let schedule = generation_schedule(cfg.gpus, base_id, &outcomes, &ft.retry);

    for (k, (genome, (outcome, flops))) in genomes.iter().zip(&outcomes).enumerate() {
        let event = Event::ModelCompleted(ModelCompleted {
            model_id: base_id + k as u64,
            generation,
            genome: genome.clone(),
            arch_summary: space.decode(genome).summary(),
            flops: *flops,
            final_fitness: outcome.final_fitness,
            predicted_fitness: outcome.predicted_fitness,
            terminated_early: outcome.terminated_early,
            failed: outcome.failed,
            attempts: outcome.attempts,
            train_seconds: outcome.train_seconds,
        });
        topic.publish(event).expect("bus closed mid-run");
    }
    topic
        .publish(Event::GenerationScheduled(GenerationScheduled {
            generation,
            assignments: schedule
                .assignments
                .iter()
                .map(|a| GpuSlot {
                    model_id: a.task_id,
                    gpu: a.gpu,
                    start_s: a.start,
                    end_s: a.end,
                })
                .collect(),
        }))
        .expect("bus closed mid-run");

    BusBatchResult { outcomes, schedule }
}

/// One attempt of Algorithm 1 with the engine across the bus: publish
/// the epoch, block on the engine service's verdict, terminate early on
/// convergence. Injected trainer faults record their partial progress
/// and announce [`TrainingFailed`] before panicking out to the pool; a
/// `retired` verdict (or a dead verdict stream) degrades the rest of the
/// attempt to run-to-completion training.
#[allow(clippy::too_many_arguments)]
fn train_over_bus(
    cfg: &WorkflowConfig,
    factory: &dyn TrainerFactory,
    genome: &Genome,
    model_id: u64,
    generation: usize,
    engine_enabled: bool,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
    ft: &FaultTolerance,
    attempt: u32,
    partials: &Mutex<HashMap<u64, Partial>>,
) -> (TrainingOutcome, f64) {
    // Subscribe to this model's verdicts before the first publish so no
    // reply can be missed. Capacity 1 suffices: the hand-off is
    // strictly request/reply, one verdict in flight per model.
    let mut verdicts = engine_enabled.then(|| {
        topic.subscribe_filtered(
            Policy::Block { capacity: 1 },
            move |event| matches!(event, Event::EngineVerdict(v) if v.model_id == model_id),
        )
    });
    let mut trainer = factory.make(genome, model_id, cfg.seed);
    let flops = trainer.flops();
    let max_epochs = cfg.nas.epochs;
    let mut epochs = Vec::with_capacity(max_epochs as usize);
    let mut train_seconds = 0.0;
    let mut final_fitness = 0.0;
    let mut predicted_fitness = None;
    let mut terminated_early = false;
    let mut engine_seconds = 0.0;
    let mut engine_interactions = 0u64;

    for e in 1..=max_epochs {
        let stall = ft.plan.stall_millis(model_id, e);
        if stall > 0 {
            std::thread::sleep(std::time::Duration::from_millis(stall));
        }
        if ft.plan.panic_due(model_id, e, attempt) {
            let will_retry = attempt < ft.retry.max_attempts.max(1);
            {
                let mut map = partials.lock().expect("no poisoned partials");
                let partial = map.entry(model_id).or_default();
                partial.flops = flops;
                if will_retry {
                    partial.failed_attempt_seconds.push(train_seconds);
                } else {
                    partial.epochs = std::mem::take(&mut epochs);
                    partial.train_seconds = train_seconds;
                }
            }
            // Announce the failure before unwinding so every subscriber
            // sees it ahead of any retry's events.
            topic
                .publish(Event::TrainingFailed(TrainingFailed {
                    model_id,
                    generation,
                    epoch_reached: e - 1,
                    attempt,
                    will_retry,
                }))
                .expect("bus closed mid-run");
            panic!("injected trainer fault: model {model_id} epoch {e} attempt {attempt}");
        }
        let result = trainer.train_epoch(e);
        if let Some(store) = checkpoints {
            if let Some(state) = trainer.snapshot(e) {
                store.put(model_id, e, state);
            }
        }
        train_seconds += result.duration_s;
        final_fitness = result.val_acc;
        topic
            .publish(Event::EpochCompleted(EpochCompleted {
                model_id,
                generation,
                epoch: e,
                train_acc: result.train_acc,
                val_acc: result.val_acc,
                duration_s: result.duration_s,
            }))
            .expect("bus closed mid-run");
        let mut prediction = None;
        let mut converged = None;
        if let Some(stream) = verdicts.take() {
            match stream.recv() {
                Ok(Event::EngineVerdict(v)) if v.retired => {
                    // The engine crashed for this model; keep its frozen
                    // stats and run the remaining epochs without it.
                    engine_seconds = v.engine_seconds;
                    engine_interactions = v.engine_interactions;
                }
                Ok(Event::EngineVerdict(v)) => {
                    prediction = v.prediction;
                    converged = v.converged;
                    engine_seconds = v.engine_seconds;
                    engine_interactions = v.engine_interactions;
                    verdicts = Some(stream);
                }
                // The engine service itself died: degrade to
                // run-to-completion instead of deadlocking.
                _ => {}
            }
        }
        epochs.push(EpochRecord {
            epoch: e,
            train_acc: result.train_acc,
            val_acc: result.val_acc,
            duration_s: result.duration_s,
            prediction,
        });
        if let Some(p) = converged {
            final_fitness = p;
            predicted_fitness = Some(p);
            terminated_early = true;
            break;
        }
    }
    (
        TrainingOutcome {
            epochs,
            final_fitness,
            predicted_fitness,
            terminated_early,
            // NaN fitness classifies as failed, exactly as in the direct
            // path (`train_with_engine_fallible`) — the two orchestration
            // modes must stay byte-identical.
            failed: final_fitness.is_nan(),
            attempts: attempt,
            failed_attempt_seconds: Vec::new(),
            train_seconds,
            engine_seconds,
            engine_interactions,
        },
        flops,
    )
}
