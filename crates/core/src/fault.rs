//! Fault-tolerant execution: retry policies, deterministic fault
//! injection, and failure accounting shared by both coupling modes.
//!
//! A [`FaultTolerance`] bundles the per-job [`RetryPolicy`] with an
//! [`a4nn_faults::FaultPlan`] — a pure, seeded schedule of injected
//! faults. Both orchestration modes consult the same plan at the same
//! `(model, epoch, attempt)` sites, so a run under faults is as
//! reproducible as a clean one and `Direct`/`Bus` keep producing
//! identical record trails. The default value injects nothing and
//! leaves every happy-path byte unchanged.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::trainer::TrainerFactory;
use crate::training::{train_with_engine_fallible, AttemptProgress, TrainingOutcome};
use a4nn_bus::SubscriberStats;
use a4nn_faults::FaultPlan;
use a4nn_genome::Genome;
use a4nn_lineage::ModelRecord;
use a4nn_sched::{
    schedule_fifo, schedule_fifo_retry, RetryPolicy, RetryTask, ScheduleResult, Task, TaskOrdering,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a run tolerates (and, in tests, provokes) failures.
#[derive(Debug, Clone, Default)]
pub struct FaultTolerance {
    /// Attempts per model and the backoff between them.
    pub retry: RetryPolicy,
    /// Deterministic injection schedule; empty means no faults.
    pub plan: FaultPlan,
}

impl FaultTolerance {
    /// Tolerance with the default retry policy and no injected faults —
    /// byte-identical to a run without the fault layer.
    pub fn none() -> Self {
        FaultTolerance::default()
    }

    /// Tolerance from an explicit policy and plan.
    pub fn new(retry: RetryPolicy, plan: FaultPlan) -> Self {
        FaultTolerance { retry, plan }
    }
}

/// Failure accounting for one run, derived from its record trails.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Models that exhausted their retry budget (recorded as
    /// `Terminated::Failed`).
    pub models_failed: u64,
    /// Models that needed at least one retry but ultimately completed.
    pub models_recovered: u64,
    /// Total retries consumed across all models.
    pub retries: u64,
    /// Delivery counters of the injected lagging subscriber, when the
    /// plan attached one (bus mode only).
    pub laggard: Option<SubscriberStats>,
}

impl FaultStats {
    /// Derive the counters from a run's record trails.
    pub fn from_records(records: &[ModelRecord]) -> Self {
        let mut stats = FaultStats::default();
        for r in records {
            if r.failed() {
                stats.models_failed += 1;
            } else if r.attempts > 1 {
                stats.models_recovered += 1;
            }
            stats.retries += u64::from(r.attempts.saturating_sub(1));
        }
        stats
    }

    /// Whether the run saw no failures at all.
    pub fn is_quiet(&self) -> bool {
        self.models_failed == 0 && self.retries == 0
    }
}

/// The generation's discrete-event schedule, retry-aware.
///
/// When no model needed a retry this is exactly the seed's
/// `schedule_fifo` (bitwise happy-path identity); otherwise every
/// attempt — failed ones included — is charged to the virtual GPUs via
/// `schedule_fifo_retry`, with the policy's backoff between attempts.
pub(crate) fn generation_schedule(
    gpus: usize,
    base_id: u64,
    outcomes: &[(TrainingOutcome, f64)],
    policy: &RetryPolicy,
) -> ScheduleResult {
    if outcomes.iter().all(|(o, _)| o.attempts == 1) {
        let tasks: Vec<Task> = outcomes
            .iter()
            .enumerate()
            .map(|(k, (outcome, _))| Task {
                id: base_id + k as u64,
                duration: outcome.train_seconds,
            })
            .collect();
        schedule_fifo(gpus, &tasks, TaskOrdering::Fifo)
    } else {
        let tasks: Vec<RetryTask> = outcomes
            .iter()
            .enumerate()
            .map(|(k, (outcome, _))| RetryTask {
                id: base_id + k as u64,
                attempt_durations: outcome
                    .failed_attempt_seconds
                    .iter()
                    .copied()
                    .chain([outcome.train_seconds])
                    .collect(),
            })
            .collect();
        schedule_fifo_retry(gpus, &tasks, policy)
    }
}

/// Train one model in direct mode with retries: each attempt runs under
/// `catch_unwind` with a fresh trainer (deterministic replay of the
/// same stochastic stream), and a model that exhausts its budget
/// returns a `failed` outcome carrying the final attempt's partial
/// trail instead of poisoning the generation.
pub(crate) fn train_resilient_direct(
    cfg: &WorkflowConfig,
    factory: &dyn TrainerFactory,
    genome: &Genome,
    model_id: u64,
    checkpoints: Option<&CheckpointStore>,
    ft: &FaultTolerance,
) -> (TrainingOutcome, f64) {
    let mut failed_attempt_seconds = Vec::new();
    let mut attempt = 1u32;
    loop {
        let mut trainer = factory.make(genome, model_id, cfg.seed);
        let flops = trainer.flops();
        let mut progress = AttemptProgress::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            train_with_engine_fallible(
                trainer.as_mut(),
                cfg.engine.as_ref(),
                cfg.nas.epochs,
                checkpoints.map(|store| (store, model_id)),
                Some((&ft.plan, model_id, attempt)),
                &mut progress,
            )
        }));
        match result {
            Ok(mut outcome) => {
                outcome.attempts = attempt;
                outcome.failed_attempt_seconds = failed_attempt_seconds;
                return (outcome, flops);
            }
            Err(_) if attempt < ft.retry.max_attempts.max(1) => {
                failed_attempt_seconds.push(progress.train_seconds);
                attempt += 1;
            }
            Err(_) => {
                // Retry budget exhausted: surface the partial trail as a
                // Terminated::Failed record with fitness 0, which NSGA-II
                // treats as dominated.
                let outcome = TrainingOutcome {
                    epochs: progress.epochs,
                    final_fitness: 0.0,
                    predicted_fitness: None,
                    terminated_early: false,
                    failed: true,
                    attempts: attempt,
                    failed_attempt_seconds,
                    train_seconds: progress.train_seconds,
                    engine_seconds: 0.0,
                    engine_interactions: 0,
                };
                return (outcome, flops);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_lineage::Terminated;

    fn record(termination: Terminated, attempts: u32) -> ModelRecord {
        ModelRecord {
            model_id: 0,
            generation: 0,
            gpu: None,
            genome: a4nn_genome::Genome::from_compact_string("1011010-0110101-0000001")
                .expect("valid genome"),
            arch_summary: String::new(),
            flops: 1.0,
            engine: None,
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            termination,
            attempts,
            beam: "medium".to_string(),
            wall_time_s: 0.0,
        }
    }

    #[test]
    fn stats_derive_from_records() {
        let records = vec![
            record(Terminated::Completed, 1),
            record(Terminated::Completed, 3),
            record(Terminated::Early, 2),
            record(Terminated::Failed, 3),
        ];
        let stats = FaultStats::from_records(&records);
        assert_eq!(stats.models_failed, 1);
        assert_eq!(stats.models_recovered, 2);
        assert_eq!(stats.retries, 2 + 1 + 2);
        assert!(!stats.is_quiet());
        assert!(FaultStats::from_records(&[record(Terminated::Completed, 1)]).is_quiet());
    }

    #[test]
    fn clean_outcomes_schedule_exactly_like_the_seed() {
        let outcome = |s: f64| TrainingOutcome {
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            terminated_early: false,
            failed: false,
            attempts: 1,
            failed_attempt_seconds: Vec::new(),
            train_seconds: s,
            engine_seconds: 0.0,
            engine_interactions: 0,
        };
        let outcomes = vec![(outcome(30.0), 1.0), (outcome(10.0), 1.0)];
        let tasks = vec![
            Task {
                id: 5,
                duration: 30.0,
            },
            Task {
                id: 6,
                duration: 10.0,
            },
        ];
        let plain = schedule_fifo(2, &tasks, TaskOrdering::Fifo);
        let routed = generation_schedule(2, 5, &outcomes, &RetryPolicy::default());
        assert_eq!(plain.assignments, routed.assignments);
    }

    #[test]
    fn retried_outcomes_charge_failed_attempts_to_the_gpus() {
        let mut retried = TrainingOutcome {
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            terminated_early: false,
            failed: false,
            attempts: 2,
            failed_attempt_seconds: vec![20.0],
            train_seconds: 50.0,
            engine_seconds: 0.0,
            engine_interactions: 0,
        };
        retried.attempts = 2;
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
        };
        let schedule = generation_schedule(1, 0, &[(retried, 1.0)], &policy);
        // Failed 20 s attempt + 1 s backoff + 50 s success.
        assert_eq!(schedule.assignments.len(), 2);
        assert!((schedule.makespan - 71.0).abs() < 1e-9);
    }
}
