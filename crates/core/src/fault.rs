//! Fault-tolerance policy and accounting: retry policies, deterministic
//! fault injection, and failure counters shared by both transports.
//!
//! A [`FaultTolerance`] bundles the per-job [`RetryPolicy`] with an
//! [`a4nn_faults::FaultPlan`] — a pure, seeded schedule of injected
//! faults. Both transports of [`crate::pipeline::EvalPipeline`] consult
//! the same plan at the same `(model, epoch, attempt)` sites, so a run
//! under faults is as reproducible as a clean one and `Direct`/`Bus`
//! keep producing identical record trails. The default value injects
//! nothing and leaves every happy-path byte unchanged.

use a4nn_bus::SubscriberStats;
use a4nn_faults::FaultPlan;
use a4nn_lineage::ModelRecord;
use a4nn_sched::RetryPolicy;

/// How a run tolerates (and, in tests, provokes) failures.
#[derive(Debug, Clone, Default)]
pub struct FaultTolerance {
    /// Attempts per model and the backoff between them.
    pub retry: RetryPolicy,
    /// Deterministic injection schedule; empty means no faults.
    pub plan: FaultPlan,
}

impl FaultTolerance {
    /// Tolerance with the default retry policy and no injected faults —
    /// byte-identical to a run without the fault layer.
    pub fn none() -> Self {
        FaultTolerance::default()
    }

    /// Tolerance from an explicit policy and plan.
    pub fn new(retry: RetryPolicy, plan: FaultPlan) -> Self {
        FaultTolerance { retry, plan }
    }
}

/// Failure accounting for one run, derived from its record trails.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Models that exhausted their retry budget (recorded as
    /// `Terminated::Failed`).
    pub models_failed: u64,
    /// Models that needed at least one retry but ultimately completed.
    pub models_recovered: u64,
    /// Total retries consumed across all models.
    pub retries: u64,
    /// Delivery counters of the injected lagging subscriber, when the
    /// plan attached one (bus mode only).
    pub laggard: Option<SubscriberStats>,
}

impl FaultStats {
    /// Derive the counters from a run's record trails.
    pub fn from_records(records: &[ModelRecord]) -> Self {
        let mut stats = FaultStats::default();
        for r in records {
            if r.failed() {
                stats.models_failed += 1;
            } else if r.attempts > 1 {
                stats.models_recovered += 1;
            }
            stats.retries += u64::from(r.attempts.saturating_sub(1));
        }
        stats
    }

    /// Whether the run saw no failures at all.
    pub fn is_quiet(&self) -> bool {
        self.models_failed == 0 && self.retries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_lineage::Terminated;

    fn record(termination: Terminated, attempts: u32) -> ModelRecord {
        ModelRecord {
            model_id: 0,
            generation: 0,
            gpu: None,
            genome: a4nn_genome::Genome::from_compact_string("1011010-0110101-0000001")
                .expect("valid genome"),
            arch_summary: String::new(),
            flops: 1.0,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: None,
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            termination,
            attempts,
            beam: "medium".to_string(),
            wall_time_s: 0.0,
        }
    }

    #[test]
    fn stats_derive_from_records() {
        let records = vec![
            record(Terminated::Completed, 1),
            record(Terminated::Completed, 3),
            record(Terminated::Early, 2),
            record(Terminated::Failed, 3),
        ];
        let stats = FaultStats::from_records(&records);
        assert_eq!(stats.models_failed, 1);
        assert_eq!(stats.models_recovered, 2);
        assert_eq!(stats.retries, 2 + 1 + 2);
        assert!(!stats.is_quiet());
        assert!(FaultStats::from_records(&[record(Terminated::Completed, 1)]).is_quiet());
    }
}
