//! The surrogate trainer: a calibrated learning-curve simulator standing
//! in for the paper's GPU fleet.
//!
//! The workflow, prediction engine, scheduler, and lineage tracker consume
//! only `(epoch, fitness, duration)` streams, so a trainer that emits
//! streams with the right *shape* exercises every code path of the
//! evaluation. Per model the surrogate draws one of five curve kinds whose
//! mixture is calibrated per beam intensity against the paper's Figures 7
//! and 8 (epoch savings, convergence percentage, e_t distribution):
//!
//! - **stable learners** — concave saturating curves
//!   `a − b·ρᵉ + N(0, σ)`; the engine converges on them, later for the
//!   noisy low beam than for the clean high beam;
//! - **non-learners** — flat near 50% (Johnston et al. observe most early
//!   NAS candidates fail to learn); the engine kills them very early;
//! - **late bloomers** — convex accelerating curves `start + k·e^p`; the
//!   fitted asymptote keeps rising, so predictions rarely stabilize and
//!   these mostly train the full budget;
//! - **ceiling huggers** — curves saturating against 100% accuracy; the
//!   parametric fit extrapolates slightly above 100, the analyzer vetoes
//!   out-of-bounds predictions (§2.1.2), and training runs to budget —
//!   the mechanism behind the paper's high-beam models that never
//!   terminate early despite clean data;
//! - **unstable models** — a random-walk fitness level (optimizer
//!   instability), converging late or not at all.
//!
//! Epoch durations are FLOPs-proportional around the ~72 s/epoch implied
//! by the paper's 2,500-epoch ≈ 50 h standalone runs.

use crate::config::WorkflowConfig;
use crate::objectives::ModelCost;
use crate::trainer::{EpochResult, Trainer, TrainerFactory};
use a4nn_genome::{
    estimate_macs, estimate_mflops, estimate_params_bytes, estimate_peak_ws_bytes, Genome,
    SearchSpace,
};
use a4nn_xfel::BeamIntensity;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spatial size assumed for the surrogate's FLOPs objective (the paper's
/// diffraction images are full-resolution, so this is larger than the
/// reduced real-training detector).
pub const SURROGATE_INPUT_HW: (usize, usize) = (128, 128);

/// Mean cost of a random architecture, used as the FLOPs normalization of
/// the epoch-duration model.
const REFERENCE_MFLOPS: f64 = 150.0;

/// Calibration of the surrogate's curve mixture for one beam intensity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SurrogateParams {
    /// Mean asymptotic validation accuracy of stable learners.
    pub asymptote_mean: f64,
    /// Spread of the asymptote across models.
    pub asymptote_spread: f64,
    /// Extra asymptote for the densest architectures.
    pub capacity_bonus: f64,
    /// Range of the geometric learning rate ρ (larger = slower learning).
    pub rate_range: (f64, f64),
    /// Per-epoch Gaussian fitness noise (data SNR).
    pub noise_sigma: f64,
    /// Probability a model never learns (flat near 50%).
    pub non_learner_prob: f64,
    /// Probability of a convex late-bloomer curve.
    pub late_bloomer_prob: f64,
    /// Probability of a ceiling-hugging curve (saturates against 100%).
    pub ceiling_prob: f64,
    /// Probability of an unstable (random-walk) model.
    pub walk_prob: f64,
    /// Random-walk step size for unstable models.
    pub walk_sigma: f64,
    /// Exponent range of late-bloomer curves (`e^p`).
    pub bloom_power_range: (f64, f64),
    /// Mean seconds per epoch for a reference-cost model.
    pub epoch_seconds_base: f64,
}

impl SurrogateParams {
    /// Calibrated parameters per beam intensity. The resulting epoch
    /// savings, convergence rates, and e_t means are validated against the
    /// paper by `a4nn-bench`'s Figure 7/8 harnesses.
    pub fn for_beam(beam: BeamIntensity) -> Self {
        match beam {
            BeamIntensity::Low => SurrogateParams {
                asymptote_mean: 95.5,
                asymptote_spread: 2.0,
                capacity_bonus: 2.0,
                rate_range: (0.89, 0.97),
                noise_sigma: 2.2,
                non_learner_prob: 0.08,
                late_bloomer_prob: 0.42,
                ceiling_prob: 0.0,
                walk_prob: 0.06,
                walk_sigma: 2.5,
                bloom_power_range: (1.6, 2.2),
                epoch_seconds_base: 72.0,
            },
            BeamIntensity::Medium => SurrogateParams {
                asymptote_mean: 98.2,
                asymptote_spread: 1.2,
                capacity_bonus: 1.5,
                rate_range: (0.72, 0.90),
                noise_sigma: 0.5,
                non_learner_prob: 0.08,
                late_bloomer_prob: 0.28,
                ceiling_prob: 0.04,
                walk_prob: 0.05,
                walk_sigma: 2.5,
                bloom_power_range: (1.6, 2.2),
                epoch_seconds_base: 74.0,
            },
            BeamIntensity::High => SurrogateParams {
                asymptote_mean: 99.0,
                asymptote_spread: 0.7,
                capacity_bonus: 0.9,
                rate_range: (0.50, 0.72),
                noise_sigma: 0.25,
                non_learner_prob: 0.06,
                late_bloomer_prob: 0.12,
                ceiling_prob: 0.32,
                walk_prob: 0.06,
                walk_sigma: 2.5,
                bloom_power_range: (1.5, 2.0),
                epoch_seconds_base: 70.0,
            },
        }
    }
}

/// The shape family of one sampled curve.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CurveKind {
    Stable,
    NonLearner,
    LateBloomer,
    Ceiling,
    Walk,
}

/// One model's sampled curve.
#[derive(Debug, Clone)]
pub struct SurrogateTrainer {
    kind: CurveKind,
    asymptote: f64,
    scale: f64,
    rate: f64,
    bloom_start: f64,
    bloom_coeff: f64,
    bloom_power: f64,
    walk_sigma: f64,
    walk_level: f64,
    sigma: f64,
    cost: ModelCost,
    epoch_seconds: f64,
    rng: rand::rngs::StdRng,
}

impl Trainer for SurrogateTrainer {
    fn train_epoch(&mut self, epoch: u32) -> EpochResult {
        let e = f64::from(epoch);
        let clean = match self.kind {
            CurveKind::Stable | CurveKind::Ceiling => {
                self.asymptote - self.scale * self.rate.powf(e)
            }
            CurveKind::NonLearner => self.asymptote,
            CurveKind::LateBloomer => {
                self.bloom_start + self.bloom_coeff * e.powf(self.bloom_power)
            }
            CurveKind::Walk => {
                self.walk_level += self.gauss() * self.walk_sigma;
                self.asymptote - self.scale * self.rate.powf(e) + self.walk_level
            }
        };
        let val = (clean + self.gauss() * self.sigma).clamp(0.0, 100.0);
        let train = (val + 1.5 + self.gauss().abs() * 0.5).clamp(0.0, 100.0);
        let jitter = 1.0 + 0.05 * self.gauss();
        EpochResult {
            train_acc: train,
            val_acc: val,
            duration_s: (self.epoch_seconds * jitter).max(0.1),
        }
    }

    fn flops(&self) -> f64 {
        self.cost.flops
    }

    fn cost(&self) -> ModelCost {
        self.cost
    }
}

impl SurrogateTrainer {
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }
}

/// Factory sampling a [`SurrogateTrainer`] per genome.
#[derive(Debug, Clone)]
pub struct SurrogateFactory {
    params: SurrogateParams,
    space: SearchSpace,
    max_nodes: usize,
}

impl SurrogateFactory {
    /// Build a factory for a workflow configuration.
    pub fn new(config: &WorkflowConfig, params: SurrogateParams) -> Self {
        let space = config.search_space();
        let max_nodes = space.nodes_per_phase * space.phases();
        SurrogateFactory {
            params,
            space,
            max_nodes,
        }
    }

    /// The calibration in use.
    pub fn params(&self) -> &SurrogateParams {
        &self.params
    }
}

impl TrainerFactory for SurrogateFactory {
    fn make(&self, genome: &Genome, model_id: u64, seed: u64) -> Box<dyn Trainer> {
        let p = &self.params;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ model_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let arch = self.space.decode(genome);
        // Every cost component is genome-derived and closed-form, so
        // direct, bus, and socket evaluation agree exactly.
        let cost = ModelCost {
            flops: estimate_mflops(&arch, SURROGATE_INPUT_HW),
            params_bytes: estimate_params_bytes(&arch),
            macs: estimate_macs(&arch, SURROGATE_INPUT_HW),
            peak_ws_bytes: estimate_peak_ws_bytes(&arch, SURROGATE_INPUT_HW),
        };
        let flops_mflops = cost.flops;
        let active: usize = arch.phases.iter().map(|ph| ph.active_nodes()).sum();
        let capacity = active as f64 / self.max_nodes as f64;

        // Draw the curve kind from the calibrated mixture.
        let roll: f64 = rng.gen_range(0.0..1.0);
        let t_non_learner = p.non_learner_prob;
        let t_bloomer = t_non_learner + p.late_bloomer_prob;
        let t_ceiling = t_bloomer + p.ceiling_prob;
        let t_walk = t_ceiling + p.walk_prob;
        let kind = if roll < t_non_learner {
            CurveKind::NonLearner
        } else if roll < t_bloomer {
            CurveKind::LateBloomer
        } else if roll < t_ceiling {
            CurveKind::Ceiling
        } else if roll < t_walk {
            CurveKind::Walk
        } else {
            CurveKind::Stable
        };

        let gauss = |rng: &mut rand::rngs::StdRng| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        };
        let learner_asymptote =
            (p.asymptote_mean + capacity * p.capacity_bonus + gauss(&mut rng) * p.asymptote_spread)
                .min(99.95);
        let rate = rng.gen_range(p.rate_range.0..p.rate_range.1);
        let start = rng.gen_range(45.0..60.0);
        let epoch_seconds = p.epoch_seconds_base * (0.5 + 0.5 * flops_mflops / REFERENCE_MFLOPS);

        let mut trainer = SurrogateTrainer {
            kind,
            asymptote: learner_asymptote,
            scale: (learner_asymptote - start).max(5.0) / rate,
            rate,
            bloom_start: 0.0,
            bloom_coeff: 0.0,
            bloom_power: 1.0,
            walk_sigma: 0.0,
            walk_level: 0.0,
            sigma: p.noise_sigma,
            cost,
            epoch_seconds,
            rng,
        };
        match kind {
            CurveKind::NonLearner => {
                let offset = trainer.gauss();
                trainer.asymptote = 50.0 + offset;
            }
            CurveKind::LateBloomer => {
                let drop = trainer.rng.gen_range(2.0..10.0);
                let target = (learner_asymptote - drop).clamp(70.0, 97.0);
                trainer.bloom_start = trainer.rng.gen_range(46.0..55.0);
                trainer.bloom_power = trainer
                    .rng
                    .gen_range(p.bloom_power_range.0..p.bloom_power_range.1);
                trainer.bloom_coeff =
                    (target - trainer.bloom_start) / 25f64.powf(trainer.bloom_power);
            }
            CurveKind::Ceiling => {
                // Saturates just above 100: measured accuracy clamps at
                // 100 but the fitted curve extrapolates out of bounds.
                trainer.asymptote = trainer.rng.gen_range(100.8..102.0);
                trainer.scale = (trainer.asymptote - start).max(5.0) / rate;
                trainer.sigma = p.noise_sigma * 0.8;
            }
            CurveKind::Walk => {
                trainer.walk_sigma = p.walk_sigma;
            }
            CurveKind::Stable => {}
        }
        Box::new(trainer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_xfel::BeamIntensity;
    use rand::SeedableRng;

    fn factory(beam: BeamIntensity) -> SurrogateFactory {
        let config = WorkflowConfig::a4nn(beam, 1, 7);
        SurrogateFactory::new(&config, SurrogateParams::for_beam(beam))
    }

    fn sample_genome(seed: u64) -> Genome {
        let space = SearchSpace::paper_defaults();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        space.random_genome(&mut rng)
    }

    #[test]
    fn curves_are_bounded() {
        let f = factory(BeamIntensity::Medium);
        for m in 0..32u64 {
            let mut t = f.make(&sample_genome(m), m, 1);
            for e in 1..=25 {
                let r = t.train_epoch(e);
                assert!((0.0..=100.0).contains(&r.val_acc));
                assert!((0.0..=100.0).contains(&r.train_acc));
                assert!(r.duration_s > 0.0);
            }
        }
    }

    #[test]
    fn stable_curves_mostly_increase() {
        let f = factory(BeamIntensity::High);
        let mut checked = 0;
        for m in 0..64u64 {
            let mut t = f.make(&sample_genome(m), m, 1);
            let vals: Vec<f64> = (1..=25).map(|e| t.train_epoch(e).val_acc).collect();
            // Only assess models that clearly learned and never suffered a
            // large dip (excludes non-learners and random-walk models).
            let dipped = vals.windows(2).any(|w| w[1] < w[0] - 4.0);
            if vals[24] > 90.0 && !dipped {
                checked += 1;
                let increases = vals.windows(2).filter(|w| w[1] >= w[0] - 0.5).count();
                assert!(increases >= 17, "model {m}: {increases}/24 non-decreasing");
            }
        }
        assert!(checked > 20, "sample contained only {checked} learners");
    }

    #[test]
    fn deterministic_per_model_id_and_seed() {
        let f = factory(BeamIntensity::Low);
        let g = sample_genome(3);
        let run = |f: &SurrogateFactory| {
            let mut t = f.make(&g, 5, 11);
            (1..=10)
                .map(|e| t.train_epoch(e).val_acc)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&f), run(&f));
        let mut t2 = f.make(&g, 6, 11);
        let other: Vec<f64> = (1..=10).map(|e| t2.train_epoch(e).val_acc).collect();
        assert_ne!(run(&f), other);
    }

    #[test]
    fn flops_tracks_genome_density() {
        let f = factory(BeamIntensity::Medium);
        let space = SearchSpace::paper_defaults();
        let sparse = Genome::from_compact_string("0000000-0000000-0000000").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dense_space = SearchSpace {
            init_density: 0.98,
            ..space
        };
        let dense = dense_space.random_genome(&mut rng);
        assert!(f.make(&dense, 0, 0).flops() > f.make(&sparse, 1, 0).flops());
    }

    #[test]
    fn cost_vector_is_deterministic_and_complete() {
        let f = factory(BeamIntensity::Medium);
        let g = sample_genome(12);
        let a = f.make(&g, 4, 9).cost();
        let b = f.make(&g, 4, 9).cost();
        assert_eq!(a, b, "cost must be a pure function of the genome");
        assert!(a.flops > 0.0);
        assert!(a.params_bytes > 0.0);
        assert!(a.macs > 0.0);
        assert!(a.peak_ws_bytes > 0.0);
        // Training must not perturb the reported cost.
        let mut t = f.make(&g, 4, 9);
        let before = t.cost();
        for e in 1..=5 {
            t.train_epoch(e);
        }
        assert_eq!(t.cost(), before);
    }

    #[test]
    fn beam_noise_ordering() {
        // Late-epoch jitter of clear learners falls with beam intensity.
        let spread = |beam: BeamIntensity| {
            let f = factory(beam);
            let mut acc = 0.0;
            let mut count = 0u32;
            for m in 0..48u64 {
                let mut t = f.make(&sample_genome(m + 100), m, 2);
                let vals: Vec<f64> = (1..=25).map(|e| t.train_epoch(e).val_acc).collect();
                if vals[24] < 85.0 || vals[24] >= 99.9 {
                    continue; // skip non-learners, walkers, clamped ceilings
                }
                for w in vals[15..].windows(2) {
                    acc += (w[1] - w[0]).abs();
                    count += 1;
                }
            }
            acc / f64::from(count)
        };
        let low = spread(BeamIntensity::Low);
        let high = spread(BeamIntensity::High);
        assert!(low > high, "low-beam jitter {low} vs high {high}");
    }

    #[test]
    fn non_learners_exist_at_documented_rate() {
        let f = factory(BeamIntensity::Medium);
        let mut flat = 0;
        let n = 300;
        for m in 0..n {
            let mut t = f.make(&sample_genome(m + 500), m, 3);
            let last = (1..=25).map(|e| t.train_epoch(e).val_acc).last().unwrap();
            if last < 60.0 {
                flat += 1;
            }
        }
        let rate = f64::from(flat) / f64::from(n as u32);
        let expect = f.params().non_learner_prob;
        assert!(
            (rate - expect).abs() < 0.06,
            "non-learner rate {rate} vs configured {expect}"
        );
    }

    #[test]
    fn ceiling_models_reach_full_accuracy() {
        // High beam draws ~30% ceiling huggers; their curves must clamp at
        // exactly 100 late in training.
        let f = factory(BeamIntensity::High);
        let mut saw_ceiling = false;
        for m in 0..64u64 {
            let mut t = f.make(&sample_genome(m + 900), m, 4);
            let vals: Vec<f64> = (1..=25).map(|e| t.train_epoch(e).val_acc).collect();
            if vals[20..].iter().filter(|&&v| v >= 99.999).count() >= 3 {
                saw_ceiling = true;
                break;
            }
        }
        assert!(saw_ceiling, "no ceiling-hugging curve in 64 samples");
    }
}
