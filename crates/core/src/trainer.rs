//! The trainer abstraction the workflow orchestrates.
//!
//! Decoupling the training substrate behind this trait is what lets the
//! same workflow run on the real CPU substrate ([`crate::real`]) and on
//! the calibrated surrogate ([`crate::surrogate`]) — and would let it run
//! on actual GPUs, were any attached.

use crate::objectives::ModelCost;
use a4nn_genome::Genome;

/// Measurements produced by training one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochResult {
    /// Training accuracy (%) after the epoch.
    pub train_acc: f64,
    /// Validation accuracy (%) — the fitness the engine models.
    pub val_acc: f64,
    /// Seconds the epoch took (measured for real trainers, drawn from the
    /// cost model for the surrogate).
    pub duration_s: f64,
}

/// Trains one network, one epoch at a time.
pub trait Trainer: Send {
    /// Train epoch `epoch` (1-based) and return its measurements.
    fn train_epoch(&mut self, epoch: u32) -> EpochResult;

    /// Forward FLOPs of the network (the NAS's second objective).
    fn flops(&self) -> f64;

    /// Full hardware-cost vector for the objective registry. Read
    /// *after* training: `peak_ws_bytes` is a lifetime high-water mark.
    /// The default carries only FLOPs, which suffices for the legacy
    /// `(neg_fitness, flops)` pair; trainers backing hardware-aware
    /// objectives override it.
    fn cost(&self) -> ModelCost {
        ModelCost::from_flops(self.flops())
    }

    /// Capture the trainable state after `epoch` for checkpointing
    /// (§2.2.2). Trainers without materialized weights (the surrogate)
    /// return `None`, which is the default.
    fn snapshot(&mut self, _epoch: u32) -> Option<a4nn_nn::ModelState> {
        None
    }
}

/// Creates trainers for genomes. Shared across worker threads, hence
/// `Sync`.
pub trait TrainerFactory: Sync {
    /// Build a trainer for `genome`. `model_id` and `seed` make the
    /// trainer's stochasticity reproducible and unique per model.
    fn make(&self, genome: &Genome, model_id: u64, seed: u64) -> Box<dyn Trainer>;
}
