//! The one generation-evaluation loop, generic over a pluggable
//! [`Transport`].
//!
//! Every NAS driver — NSGA-Net, random search, aging evolution — trains
//! its generations through the same [`EvalPipeline`]: set the intra-op
//! thread budget, run every genome through the transport (with the
//! fault-tolerance layer's retries and deterministic injection always
//! on — a zero-fault plan with no retries *is* the plain path), replay
//! the simulated durations on the discrete-event scheduler, and emit
//! record trails. The transport decides only *how* trainers and the
//! prediction engine are coupled:
//!
//! - [`DirectTransport`] — in-process calls: each trainer drives its own
//!   engine instance inline (rayon data parallelism), and the pipeline
//!   assembles the record trails itself;
//! - [`BusTransport`] — the `a4nn-bus` event bus (§2.2's in-situ task
//!   coupling): trainers run as jobs on the sched thread pool, publish
//!   per-epoch fitness, and block on the engine service's verdicts; the
//!   lineage recorder service assembles the trails from the stream at
//!   end of run.
//!
//! Determinism contract: both transports consult the same
//! [`FaultTolerance`] plan at the same `(model, epoch, attempt)` sites
//! and reproduce identical record trails per seed.
//!
//! Failure taxonomy: trainer panics (injected or organic) are *data* —
//! they flow through retries into `Terminated::Failed` records. An
//! [`A4nnError`] is reserved for the machinery itself breaking: a bus
//! that closed mid-run, a poisoned pool, a crashed service thread.

use crate::checkpoint::CheckpointStore;
use crate::config::WorkflowConfig;
use crate::fault::FaultTolerance;
use crate::objectives::ModelCost;
use crate::trainer::TrainerFactory;
use crate::training::{train_with_engine_fallible, AttemptProgress, TrainingOutcome};
use a4nn_bus::{
    EpochCompleted, Event, GenerationScheduled, GpuSlot, ModelCompleted, Policy, Topic,
    TrainingFailed,
};
use a4nn_error::A4nnError;
use a4nn_genome::{Genome, SearchSpace};
use a4nn_lineage::{EngineParamsRecord, EpochRecord, ModelRecord};
use a4nn_metrics::{MetricsRegistry, MetricsSnapshot};
use a4nn_penguin::ParametricCurve;
use a4nn_sched::{
    schedule_fifo, schedule_fifo_retry, GpuPool, RetryPolicy, RetryTask, ScheduleResult, Task,
    TaskOrdering,
};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-transport dispatch counters for one run — the first slice of the
/// metrics layer. All figures are measured wall time (never simulated
/// seconds), so they report the harness's own cost without perturbing
/// the reproducible results.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransportStats {
    /// Which transport dispatched the jobs (`direct`, `bus`, `socket`).
    pub transport: String,
    /// Trainer jobs that completed through the transport.
    pub jobs_dispatched: u64,
    /// Extra attempts beyond the first, summed over all jobs — trainer
    /// retries on the in-process transports, dispatch re-queues after a
    /// dead worker on the socket transport.
    pub retries: u64,
    /// Mean wall seconds from dispatching a job to holding its outcome.
    pub round_trip_mean_s: f64,
    /// Worst-case round trip in wall seconds.
    pub round_trip_max_s: f64,
    /// Mean wall seconds a job waited for a free execution slot before
    /// dispatch (zero for in-process transports, which hand jobs
    /// straight to the thread pool).
    pub queue_wait_mean_s: f64,
    /// Worst-case queue wait in wall seconds.
    pub queue_wait_max_s: f64,
}

impl TransportStats {
    /// The CSV header matching [`TransportStats::to_csv`].
    pub const CSV_HEADER: &'static str = "transport,jobs_dispatched,retries,\
         round_trip_mean_s,round_trip_max_s,queue_wait_mean_s,queue_wait_max_s";

    /// One header + one data row, for export beside the commons CSVs.
    pub fn to_csv(&self) -> String {
        format!(
            "{}\n{},{},{},{:.6},{:.6},{:.6},{:.6}\n",
            Self::CSV_HEADER,
            self.transport,
            self.jobs_dispatched,
            self.retries,
            self.round_trip_mean_s,
            self.round_trip_max_s,
            self.queue_wait_mean_s,
            self.queue_wait_max_s,
        )
    }

    /// The one-line summary the CLI prints in its stats block.
    pub fn summary_line(&self) -> String {
        format!(
            "transport {}: {} job(s) dispatched, {} retr{}, round-trip mean {:.3} ms / max {:.3} ms, queue wait mean {:.3} ms / max {:.3} ms",
            self.transport,
            self.jobs_dispatched,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
            self.round_trip_mean_s * 1e3,
            self.round_trip_max_s * 1e3,
            self.queue_wait_mean_s * 1e3,
            self.queue_wait_max_s * 1e3,
        )
    }
}

/// The accumulating counters behind [`TransportStats`], shared by every
/// transport through [`EvalPipeline::record_job`].
#[derive(Debug, Default)]
struct MetricsSink {
    jobs: u64,
    retries: u64,
    round_trip_total_s: f64,
    round_trip_max_s: f64,
    queue_wait_total_s: f64,
    queue_wait_max_s: f64,
}

/// Result of evaluating one generation batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-genome training outcomes and measured cost vectors, in
    /// submission order.
    pub outcomes: Vec<(TrainingOutcome, ModelCost)>,
    /// The generation's cluster schedule.
    pub schedule: ScheduleResult,
    /// Completed record trails, in submission order — empty when the
    /// transport assembles them elsewhere (see
    /// [`Transport::assembles_records`]).
    pub records: Vec<ModelRecord>,
}

/// The engine-parameters stamp attached to every record trail of a run
/// (Table 1), or `None` for standalone-NAS runs.
pub fn engine_params_record(cfg: &WorkflowConfig) -> Option<EngineParamsRecord> {
    cfg.engine.as_ref().map(|e| EngineParamsRecord {
        function: e.family.name().to_string(),
        c_min: e.c_min,
        e_pred: e.e_pred,
        n: e.n_converge,
        r: e.r,
    })
}

/// How one generation's trainers are coupled to the prediction engine
/// and the lineage sink. Implementations must keep the search trajectory
/// bit-identical across transports: same outcomes per `(seed, genome)`,
/// same simulated durations, same fault-plan consultation sites.
pub trait Transport {
    /// Train every genome of the generation, returning
    /// `(outcome, cost)` per genome in submission order. The cost is the
    /// trainer's post-training [`ModelCost`] — the objective registry
    /// derives every non-fitness coordinate from it.
    ///
    /// Trainer panics are absorbed into the outcomes (retries, then a
    /// `failed` outcome); `Err` means the transport's own machinery
    /// broke and the run cannot continue.
    fn run_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
    ) -> Result<Vec<(TrainingOutcome, ModelCost)>, A4nnError>;

    /// Announce the completed generation (outcomes plus its cluster
    /// schedule) to any out-of-process listeners. The direct transport
    /// has none and does nothing.
    fn publish_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
        outcomes: &[(TrainingOutcome, ModelCost)],
        schedule: &ScheduleResult,
    ) -> Result<(), A4nnError>;

    /// Whether the pipeline should assemble record trails inline
    /// (`true`), or a downstream service folds them from the published
    /// events (`false`).
    fn assembles_records(&self) -> bool;

    /// Short stable name for the metrics layer (`direct`, `bus`,
    /// `socket`).
    fn name(&self) -> &'static str {
        "unknown"
    }
}

/// One generation-evaluation pipeline: the shared train → schedule →
/// record sequence every driver and both transports run through.
pub struct EvalPipeline<'a> {
    cfg: &'a WorkflowConfig,
    space: &'a SearchSpace,
    factory: &'a dyn TrainerFactory,
    checkpoints: Option<&'a CheckpointStore>,
    ft: &'a FaultTolerance,
    metrics: Mutex<MetricsSink>,
    registry: MetricsRegistry,
}

impl<'a> EvalPipeline<'a> {
    /// Assemble a pipeline over the run's shared state. A default
    /// [`FaultTolerance`] (no injected faults, default retry budget)
    /// reproduces a run without the fault layer byte for byte.
    pub fn new(
        cfg: &'a WorkflowConfig,
        space: &'a SearchSpace,
        factory: &'a dyn TrainerFactory,
        checkpoints: Option<&'a CheckpointStore>,
        ft: &'a FaultTolerance,
    ) -> Self {
        EvalPipeline {
            cfg,
            space,
            factory,
            checkpoints,
            ft,
            metrics: Mutex::new(MetricsSink::default()),
            registry: MetricsRegistry::new(),
        }
    }

    /// The structured metrics registry every transport feeds. The
    /// workflow snapshots it at generation boundaries and the CLI
    /// exports it as `metrics.csv`/`metrics.json`.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Prime the registry from an interrupted run's snapshot so
    /// counters and histograms continue instead of restarting at zero.
    pub fn restore_metrics(&self, snapshot: MetricsSnapshot) {
        self.registry.restore(snapshot);
    }

    /// The run configuration.
    pub fn config(&self) -> &WorkflowConfig {
        self.cfg
    }

    /// The search space genomes decode under.
    pub fn space(&self) -> &SearchSpace {
        self.space
    }

    /// The trainer factory.
    pub fn factory(&self) -> &dyn TrainerFactory {
        self.factory
    }

    /// The per-epoch checkpoint sink, when one is attached.
    pub fn checkpoints(&self) -> Option<&CheckpointStore> {
        self.checkpoints
    }

    /// The retry policy and fault plan in force.
    pub fn fault_tolerance(&self) -> &FaultTolerance {
        self.ft
    }

    /// Record one completed job in the metrics sink: its dispatch→outcome
    /// wall time, the wall time it queued for a free slot, and the extra
    /// attempts it consumed beyond the first. Every transport calls this
    /// once per job it completes.
    pub fn record_job(&self, round_trip_s: f64, queue_wait_s: f64, retries: u64) {
        {
            let mut m = self.metrics.lock();
            m.jobs += 1;
            m.retries += retries;
            m.round_trip_total_s += round_trip_s;
            m.round_trip_max_s = m.round_trip_max_s.max(round_trip_s);
            m.queue_wait_total_s += queue_wait_s;
            m.queue_wait_max_s = m.queue_wait_max_s.max(queue_wait_s);
        }
        self.registry.add(a4nn_metrics::names::JOBS_DISPATCHED, 1);
        self.registry.add(a4nn_metrics::names::RETRIES, retries);
        self.registry
            .observe_duration(a4nn_metrics::names::ROUND_TRIP_US, round_trip_s);
        self.registry
            .observe_duration(a4nn_metrics::names::QUEUE_WAIT_US, queue_wait_s);
    }

    /// Snapshot the accumulated dispatch counters under `transport`'s
    /// name.
    pub fn transport_stats(&self, transport: &str) -> TransportStats {
        let m = self.metrics.lock();
        let mean = |total: f64| {
            if m.jobs == 0 {
                0.0
            } else {
                total / m.jobs as f64
            }
        };
        TransportStats {
            transport: transport.to_string(),
            jobs_dispatched: m.jobs,
            retries: m.retries,
            round_trip_mean_s: mean(m.round_trip_total_s),
            round_trip_max_s: m.round_trip_max_s,
            queue_wait_mean_s: mean(m.queue_wait_total_s),
            queue_wait_max_s: m.queue_wait_max_s,
        }
    }

    /// Evaluate one generation through `transport`: train every genome
    /// (each model's stochasticity keyed to its id, so the parallelism
    /// is deterministic), FIFO-schedule the simulated durations onto
    /// `cfg.gpus` virtual GPUs, publish, and record.
    pub fn run(
        &self,
        transport: &dyn Transport,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
    ) -> Result<BatchResult, A4nnError> {
        // Divide the cores between the generation's concurrent trainers
        // and each trainer's GEMM kernels: `gpus` models train at once,
        // so each gets `cores / gpus` intra-op threads (results are
        // bitwise independent of this budget; it only affects wall time).
        a4nn_nn::gemm::set_thread_budget(a4nn_sched::intra_op_threads(self.cfg.gpus));
        let outcomes = transport.run_generation(self, genomes, generation, base_id)?;

        // Engine overhead is measured wall time and reported separately
        // (§4.3.1 finds it negligible); folding it into simulated
        // durations would make runs non-reproducible. Failed attempts,
        // on the other hand, are simulated time and are charged to the
        // GPUs.
        let schedule = generation_schedule(self.cfg.gpus, base_id, &outcomes, &self.ft.retry);
        transport.publish_generation(self, genomes, generation, base_id, &outcomes, &schedule)?;

        // Outcome-derived metrics are counted here, after the transport
        // returns, so all three transports feed them identically.
        self.registry.add(a4nn_metrics::names::GENERATIONS, 1);
        for (outcome, _) in &outcomes {
            self.registry.add(
                a4nn_metrics::names::EPOCHS_TRAINED,
                outcome.epochs.len() as u64,
            );
            if outcome.terminated_early {
                self.registry
                    .add(a4nn_metrics::names::EARLY_TERMINATIONS, 1);
            }
            if outcome.failed {
                self.registry.add(a4nn_metrics::names::MODELS_FAILED, 1);
            }
        }

        let records = if transport.assembles_records() {
            self.assemble_records(genomes, generation, base_id, &outcomes, &schedule)
        } else {
            Vec::new()
        };
        Ok(BatchResult {
            outcomes,
            schedule,
            records,
        })
    }

    /// Fold outcomes and placements into one record trail per genome —
    /// the exact shape the bus recorder service reproduces from events.
    /// Public so the resumable loop can materialize records for boundary
    /// snapshots even under transports that delegate record assembly to
    /// bus services (the proven transport-equivalence contract makes the
    /// inline assembly byte-identical to the recorder's).
    pub fn assemble_records(
        &self,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
        outcomes: &[(TrainingOutcome, ModelCost)],
        schedule: &ScheduleResult,
    ) -> Vec<ModelRecord> {
        let engine_record = engine_params_record(self.cfg);
        genomes
            .iter()
            .zip(outcomes)
            .enumerate()
            .map(|(k, (genome, (outcome, cost)))| {
                let model_id = base_id + k as u64;
                // With retries the schedule holds one slot per attempt;
                // the model's placement is its final attempt's GPU.
                let gpu = schedule
                    .assignments
                    .iter()
                    .rev()
                    .find(|a| a.task_id == model_id)
                    .map(|a| a.gpu);
                let arch = self.space.decode(genome);
                ModelRecord {
                    model_id,
                    generation,
                    gpu,
                    genome: genome.clone(),
                    arch_summary: arch.summary(),
                    flops: cost.flops,
                    objective_names: self.cfg.objectives.names(),
                    objective_values: self.cfg.objectives.values(outcome, cost),
                    engine: engine_record.clone(),
                    epochs: outcome.epochs.clone(),
                    final_fitness: outcome.final_fitness,
                    predicted_fitness: outcome.predicted_fitness,
                    termination: outcome.termination(),
                    attempts: outcome.attempts,
                    beam: self.cfg.beam.label().to_string(),
                    wall_time_s: outcome.train_seconds,
                }
            })
            .collect()
    }
}

/// In-process coupling: rayon data parallelism, each trainer driving its
/// own engine instance inline, record trails assembled by the pipeline.
pub struct DirectTransport;

impl Transport for DirectTransport {
    fn run_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        _generation: usize,
        base_id: u64,
    ) -> Result<Vec<(TrainingOutcome, ModelCost)>, A4nnError> {
        Ok(genomes
            .par_iter()
            .enumerate()
            .map(|(k, genome)| {
                let model_id = base_id + k as u64;
                let started = std::time::Instant::now();
                let (outcome, cost) = train_resilient_direct(
                    pipeline.cfg,
                    pipeline.factory,
                    genome,
                    model_id,
                    pipeline.checkpoints,
                    pipeline.ft,
                );
                pipeline.record_job(
                    started.elapsed().as_secs_f64(),
                    0.0,
                    u64::from(outcome.attempts.saturating_sub(1)),
                );
                (outcome, cost)
            })
            .collect())
    }

    fn publish_generation(
        &self,
        _pipeline: &EvalPipeline<'_>,
        _genomes: &[Genome],
        _generation: usize,
        _base_id: u64,
        _outcomes: &[(TrainingOutcome, ModelCost)],
        _schedule: &ScheduleResult,
    ) -> Result<(), A4nnError> {
        Ok(())
    }

    fn assembles_records(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

/// Bus coupling: trainers run as jobs on the sched thread pool
/// ([`GpuPool`]), publish per-epoch fitness onto the topic, and block on
/// the engine service's verdicts — the same synchronous per-epoch
/// hand-off as Algorithm 1, just routed through communicators. Requires
/// the engine service (when `cfg.engine` is set), the lineage recorder,
/// and any stats services to already be subscribed.
///
/// Fault tolerance: attempts run under the pool's `catch_unwind`; a
/// dying attempt publishes [`TrainingFailed`] *before* it unwinds, so
/// the engine and recorder services discard its partial state ahead of
/// any retry's events. A trainer that receives a `retired` verdict (the
/// engine crashed for its model) — or whose verdict subscription dies
/// outright — degrades to run-to-completion training instead of
/// deadlocking.
pub struct BusTransport<'t> {
    topic: &'t Topic<Event>,
}

impl<'t> BusTransport<'t> {
    /// Couple the pipeline to `topic`.
    pub fn new(topic: &'t Topic<Event>) -> Self {
        BusTransport { topic }
    }
}

impl Transport for BusTransport<'_> {
    fn run_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
    ) -> Result<Vec<(TrainingOutcome, ModelCost)>, A4nnError> {
        let cfg = pipeline.cfg;
        let engine_enabled = cfg.engine.is_some();
        let partials: Mutex<HashMap<u64, Partial>> = Mutex::new(HashMap::new());
        let jobs: Vec<_> = genomes
            .iter()
            .enumerate()
            .map(|(k, genome)| {
                let model_id = base_id + k as u64;
                let topic = self.topic.clone();
                let partials = &partials;
                move |_worker: usize, attempt: u32| {
                    train_over_bus(
                        cfg,
                        pipeline.factory,
                        genome,
                        model_id,
                        generation,
                        engine_enabled,
                        pipeline.checkpoints,
                        &topic,
                        pipeline.ft,
                        attempt,
                        partials,
                    )
                }
            })
            .collect();
        let batch = GpuPool::new(cfg.gpus).run_batch_retry(jobs, &pipeline.ft.retry)?;

        let mut partials = partials.into_inner();
        let reports = batch.reports;
        for report in &reports {
            pipeline.record_job(
                report.seconds,
                0.0,
                u64::from(report.attempts.saturating_sub(1)),
            );
        }
        let mut outcomes = Vec::with_capacity(genomes.len());
        for (k, output) in batch.outputs.into_iter().enumerate() {
            let model_id = base_id + k as u64;
            let attempts = reports[k].attempts;
            let partial = partials.remove(&model_id).unwrap_or_default();
            match output {
                Some(Ok((mut outcome, cost))) => {
                    outcome.attempts = attempts;
                    outcome.failed_attempt_seconds = partial.failed_attempt_seconds;
                    outcomes.push((outcome, cost));
                }
                // The attempt itself hit broken machinery (bus closed
                // mid-run): abort the generation.
                Some(Err(e)) => return Err(e),
                None => {
                    // Every attempt died: a failed outcome from the
                    // final attempt's partial trail, mirroring the
                    // direct path.
                    let outcome = TrainingOutcome {
                        epochs: partial.epochs,
                        final_fitness: 0.0,
                        predicted_fitness: None,
                        terminated_early: false,
                        failed: true,
                        attempts,
                        failed_attempt_seconds: partial.failed_attempt_seconds,
                        train_seconds: partial.train_seconds,
                        engine_seconds: 0.0,
                        engine_interactions: 0,
                    };
                    outcomes.push((outcome, partial.cost));
                }
            }
        }
        Ok(outcomes)
    }

    fn publish_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
        outcomes: &[(TrainingOutcome, ModelCost)],
        schedule: &ScheduleResult,
    ) -> Result<(), A4nnError> {
        for (k, (genome, (outcome, cost))) in genomes.iter().zip(outcomes).enumerate() {
            let event = Event::ModelCompleted(ModelCompleted {
                model_id: base_id + k as u64,
                generation,
                genome: genome.clone(),
                arch_summary: pipeline.space.decode(genome).summary(),
                flops: cost.flops,
                objective_names: pipeline.cfg.objectives.names(),
                objective_values: pipeline.cfg.objectives.values(outcome, cost),
                final_fitness: outcome.final_fitness,
                predicted_fitness: outcome.predicted_fitness,
                terminated_early: outcome.terminated_early,
                failed: outcome.failed,
                attempts: outcome.attempts,
                train_seconds: outcome.train_seconds,
            });
            self.topic.publish(event).map_err(|_| {
                A4nnError::BusClosed(format!(
                    "publishing completion of model {} in generation {generation}",
                    base_id + k as u64
                ))
            })?;
        }
        self.topic
            .publish(Event::GenerationScheduled(GenerationScheduled {
                generation,
                assignments: schedule
                    .assignments
                    .iter()
                    .map(|a| GpuSlot {
                        model_id: a.task_id,
                        gpu: a.gpu,
                        start_s: a.start,
                        end_s: a.end,
                    })
                    .collect(),
            }))
            .map_err(|_| {
                A4nnError::BusClosed(format!("publishing schedule of generation {generation}"))
            })?;
        Ok(())
    }

    fn assembles_records(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "bus"
    }
}

/// The generation's discrete-event schedule, retry-aware.
///
/// When no model needed a retry this is exactly the seed's
/// `schedule_fifo` (bitwise happy-path identity); otherwise every
/// attempt — failed ones included — is charged to the virtual GPUs via
/// `schedule_fifo_retry`, with the policy's backoff between attempts.
fn generation_schedule(
    gpus: usize,
    base_id: u64,
    outcomes: &[(TrainingOutcome, ModelCost)],
    policy: &RetryPolicy,
) -> ScheduleResult {
    if outcomes.iter().all(|(o, _)| o.attempts == 1) {
        let tasks: Vec<Task> = outcomes
            .iter()
            .enumerate()
            .map(|(k, (outcome, _))| Task {
                id: base_id + k as u64,
                duration: outcome.train_seconds,
            })
            .collect();
        schedule_fifo(gpus, &tasks, TaskOrdering::Fifo)
    } else {
        let tasks: Vec<RetryTask> = outcomes
            .iter()
            .enumerate()
            .map(|(k, (outcome, _))| RetryTask {
                id: base_id + k as u64,
                attempt_durations: outcome
                    .failed_attempt_seconds
                    .iter()
                    .copied()
                    .chain([outcome.train_seconds])
                    .collect(),
            })
            .collect();
        schedule_fifo_retry(gpus, &tasks, policy)
    }
}

/// Train one model in direct mode with retries: each attempt runs under
/// `catch_unwind` with a fresh trainer (deterministic replay of the
/// same stochastic stream), and a model that exhausts its budget
/// returns a `failed` outcome carrying the final attempt's partial
/// trail instead of poisoning the generation.
///
/// Public because the `a4nn-net` worker runs exactly this function for
/// each job it receives — remote training is the same deterministic
/// computation, just dispatched over TCP, which is what makes the
/// socket transport byte-identical to the in-process ones.
pub fn train_resilient_direct(
    cfg: &WorkflowConfig,
    factory: &dyn TrainerFactory,
    genome: &Genome,
    model_id: u64,
    checkpoints: Option<&CheckpointStore>,
    ft: &FaultTolerance,
) -> (TrainingOutcome, ModelCost) {
    let mut failed_attempt_seconds = Vec::new();
    let mut attempt = 1u32;
    loop {
        let mut trainer = factory.make(genome, model_id, cfg.seed);
        let mut progress = AttemptProgress::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            train_with_engine_fallible(
                trainer.as_mut(),
                cfg.engine.as_ref(),
                cfg.nas.epochs,
                checkpoints.map(|store| (store, model_id)),
                Some((&ft.plan, model_id, attempt)),
                &mut progress,
            )
        }));
        // Read after training (or after the attempt's panic unwound):
        // the workspace peak is a high-water mark over the epochs run.
        let cost = trainer.cost();
        match result {
            Ok(mut outcome) => {
                outcome.attempts = attempt;
                outcome.failed_attempt_seconds = failed_attempt_seconds;
                return (outcome, cost);
            }
            Err(_) if attempt < ft.retry.max_attempts.max(1) => {
                failed_attempt_seconds.push(progress.train_seconds);
                attempt += 1;
            }
            Err(_) => {
                // Retry budget exhausted: surface the partial trail as a
                // Terminated::Failed record with fitness 0, which NSGA-II
                // treats as dominated.
                let outcome = TrainingOutcome {
                    epochs: progress.epochs,
                    final_fitness: 0.0,
                    predicted_fitness: None,
                    terminated_early: false,
                    failed: true,
                    attempts: attempt,
                    failed_attempt_seconds,
                    train_seconds: progress.train_seconds,
                    engine_seconds: 0.0,
                    engine_interactions: 0,
                };
                return (outcome, cost);
            }
        }
    }
}

/// What a dying or dead attempt leaves behind for the failure
/// bookkeeping: the final attempt's partial trail plus the simulated
/// seconds every failed attempt consumed.
#[derive(Debug, Default)]
struct Partial {
    epochs: Vec<EpochRecord>,
    train_seconds: f64,
    cost: ModelCost,
    failed_attempt_seconds: Vec<f64>,
}

/// One attempt of Algorithm 1 with the engine across the bus: publish
/// the epoch, block on the engine service's verdict, terminate early on
/// convergence. Injected trainer faults record their partial progress
/// and announce [`TrainingFailed`] before panicking out to the pool; a
/// `retired` verdict (or a dead verdict stream) degrades the rest of the
/// attempt to run-to-completion training. `Err` only when the bus
/// closed under the attempt.
#[allow(clippy::too_many_arguments)]
fn train_over_bus(
    cfg: &WorkflowConfig,
    factory: &dyn TrainerFactory,
    genome: &Genome,
    model_id: u64,
    generation: usize,
    engine_enabled: bool,
    checkpoints: Option<&CheckpointStore>,
    topic: &Topic<Event>,
    ft: &FaultTolerance,
    attempt: u32,
    partials: &Mutex<HashMap<u64, Partial>>,
) -> Result<(TrainingOutcome, ModelCost), A4nnError> {
    // Subscribe to this model's verdicts before the first publish so no
    // reply can be missed. Capacity 1 suffices: the hand-off is
    // strictly request/reply, one verdict in flight per model.
    let mut verdicts = engine_enabled.then(|| {
        topic.subscribe_filtered(
            Policy::Block { capacity: 1 },
            move |event| matches!(event, Event::EngineVerdict(v) if v.model_id == model_id),
        )
    });
    let mut trainer = factory.make(genome, model_id, cfg.seed);
    let max_epochs = cfg.nas.epochs;
    let mut epochs = Vec::with_capacity(max_epochs as usize);
    let mut train_seconds = 0.0;
    let mut final_fitness = 0.0;
    let mut predicted_fitness = None;
    let mut terminated_early = false;
    let mut engine_seconds = 0.0;
    let mut engine_interactions = 0u64;

    for e in 1..=max_epochs {
        let stall = ft.plan.stall_millis(model_id, e);
        if stall > 0 {
            std::thread::sleep(std::time::Duration::from_millis(stall));
        }
        if ft.plan.panic_due(model_id, e, attempt) {
            let will_retry = attempt < ft.retry.max_attempts.max(1);
            {
                let mut map = partials.lock();
                let partial = map.entry(model_id).or_default();
                // Same read point as the direct path: the cost after the
                // epochs this attempt actually ran.
                partial.cost = trainer.cost();
                if will_retry {
                    partial.failed_attempt_seconds.push(train_seconds);
                } else {
                    partial.epochs = std::mem::take(&mut epochs);
                    partial.train_seconds = train_seconds;
                }
            }
            // Announce the failure before unwinding so every subscriber
            // sees it ahead of any retry's events. A publish error means
            // the bus already closed; the panic below still aborts the
            // attempt either way.
            let _ = topic.publish(Event::TrainingFailed(TrainingFailed {
                model_id,
                generation,
                epoch_reached: e - 1,
                attempt,
                will_retry,
            }));
            panic!("injected trainer fault: model {model_id} epoch {e} attempt {attempt}");
        }
        let result = trainer.train_epoch(e);
        if let Some(store) = checkpoints {
            if let Some(state) = trainer.snapshot(e) {
                store.put(model_id, e, state);
            }
        }
        train_seconds += result.duration_s;
        final_fitness = result.val_acc;
        topic
            .publish(Event::EpochCompleted(EpochCompleted {
                model_id,
                generation,
                epoch: e,
                train_acc: result.train_acc,
                val_acc: result.val_acc,
                duration_s: result.duration_s,
            }))
            .map_err(|_| {
                A4nnError::BusClosed(format!("publishing epoch {e} of model {model_id}"))
            })?;
        let mut prediction = None;
        let mut converged = None;
        if let Some(stream) = verdicts.take() {
            match stream.recv() {
                Ok(Event::EngineVerdict(v)) if v.retired => {
                    // The engine crashed for this model; keep its frozen
                    // stats and run the remaining epochs without it.
                    engine_seconds = v.engine_seconds;
                    engine_interactions = v.engine_interactions;
                }
                Ok(Event::EngineVerdict(v)) => {
                    prediction = v.prediction;
                    converged = v.converged;
                    engine_seconds = v.engine_seconds;
                    engine_interactions = v.engine_interactions;
                    verdicts = Some(stream);
                }
                // The engine service itself died: degrade to
                // run-to-completion instead of deadlocking.
                _ => {}
            }
        }
        epochs.push(EpochRecord {
            epoch: e,
            train_acc: result.train_acc,
            val_acc: result.val_acc,
            duration_s: result.duration_s,
            prediction,
        });
        if let Some(p) = converged {
            final_fitness = p;
            predicted_fitness = Some(p);
            terminated_early = true;
            break;
        }
    }
    Ok((
        TrainingOutcome {
            epochs,
            final_fitness,
            predicted_fitness,
            terminated_early,
            // NaN fitness classifies as failed, exactly as in the direct
            // path (`train_with_engine_fallible`) — the two transports
            // must stay byte-identical.
            failed: final_fitness.is_nan(),
            attempts: attempt,
            failed_attempt_seconds: Vec::new(),
            train_seconds,
            engine_seconds,
            engine_interactions,
        },
        trainer.cost(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::{SurrogateFactory, SurrogateParams};
    use a4nn_xfel::BeamIntensity;
    use rand::SeedableRng;

    #[test]
    fn batch_evaluation_is_complete_and_consistent() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let space = cfg.search_space();
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        let ft = FaultTolerance::default();
        let pipeline = EvalPipeline::new(&cfg, &space, &factory, None, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let genomes: Vec<_> = (0..5).map(|_| space.random_genome(&mut rng)).collect();
        let batch = pipeline.run(&DirectTransport, &genomes, 3, 10).unwrap();
        assert_eq!(batch.outcomes.len(), 5);
        assert_eq!(batch.records.len(), 5);
        assert_eq!(batch.schedule.assignments.len(), 5);
        for (k, r) in batch.records.iter().enumerate() {
            assert_eq!(r.model_id, 10 + k as u64);
            assert_eq!(r.generation, 3);
            assert!(r.gpu.unwrap() < 2);
            assert!((r.wall_time_s - batch.outcomes[k].0.train_seconds).abs() < 1e-12);
            assert_eq!(r.objective_names, vec!["neg_fitness", "flops"]);
            assert_eq!(
                r.objective_values,
                vec![
                    -batch.outcomes[k].0.final_fitness,
                    batch.outcomes[k].1.flops
                ]
            );
        }
    }

    #[test]
    fn transports_produce_identical_outcomes_and_schedules() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 9);
        let space = cfg.search_space();
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        let ft = FaultTolerance::default();
        let pipeline = EvalPipeline::new(&cfg, &space, &factory, None, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let genomes: Vec<_> = (0..4).map(|_| space.random_genome(&mut rng)).collect();

        let direct = pipeline.run(&DirectTransport, &genomes, 0, 0).unwrap();

        let topic: Topic<Event> = Topic::new("a4nn");
        let engine = cfg
            .engine
            .clone()
            .map(|e| a4nn_bus::PredictionEngineService::spawn(&topic, e));
        let bus = pipeline
            .run(&BusTransport::new(&topic), &genomes, 0, 0)
            .unwrap();
        topic.close();
        if let Some(service) = engine {
            service.join().unwrap();
        }

        assert!(bus.records.is_empty(), "bus leaves records to the recorder");
        assert_eq!(direct.schedule.assignments, bus.schedule.assignments);
        for ((d, df), (b, bf)) in direct.outcomes.iter().zip(&bus.outcomes) {
            assert_eq!(df, bf);
            assert_eq!(d.final_fitness, b.final_fitness);
            assert_eq!(d.epochs, b.epochs);
            assert_eq!(d.terminated_early, b.terminated_early);
        }
    }

    #[test]
    fn bus_transport_errors_when_topic_closed() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 1, 3);
        let space = cfg.search_space();
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        let ft = FaultTolerance::default();
        let pipeline = EvalPipeline::new(&cfg, &space, &factory, None, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let genomes = vec![space.random_genome(&mut rng)];
        let topic: Topic<Event> = Topic::new("a4nn");
        topic.close();
        let err = pipeline
            .run(&BusTransport::new(&topic), &genomes, 0, 0)
            .unwrap_err();
        assert!(matches!(err, A4nnError::BusClosed(_)), "got {err}");
    }

    #[test]
    fn clean_outcomes_schedule_exactly_like_the_seed() {
        let outcome = |s: f64| TrainingOutcome {
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            terminated_early: false,
            failed: false,
            attempts: 1,
            failed_attempt_seconds: Vec::new(),
            train_seconds: s,
            engine_seconds: 0.0,
            engine_interactions: 0,
        };
        let outcomes = vec![
            (outcome(30.0), ModelCost::from_flops(1.0)),
            (outcome(10.0), ModelCost::from_flops(1.0)),
        ];
        let tasks = vec![
            Task {
                id: 5,
                duration: 30.0,
            },
            Task {
                id: 6,
                duration: 10.0,
            },
        ];
        let plain = schedule_fifo(2, &tasks, TaskOrdering::Fifo);
        let routed = generation_schedule(2, 5, &outcomes, &RetryPolicy::default());
        assert_eq!(plain.assignments, routed.assignments);
    }

    #[test]
    fn transport_stats_count_jobs_and_retries() {
        let cfg = WorkflowConfig::a4nn(BeamIntensity::Medium, 2, 5);
        let space = cfg.search_space();
        let factory = SurrogateFactory::new(&cfg, SurrogateParams::for_beam(cfg.beam));
        let ft = crate::fault::FaultTolerance::new(
            RetryPolicy::with_retries(2),
            a4nn_faults::FaultPlan::new(vec![a4nn_faults::FaultEvent::PanicAt {
                model: 11,
                epoch: 1,
                failures: 1,
            }]),
        );
        let pipeline = EvalPipeline::new(&cfg, &space, &factory, None, &ft);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let genomes: Vec<_> = (0..3).map(|_| space.random_genome(&mut rng)).collect();
        pipeline.run(&DirectTransport, &genomes, 0, 10).unwrap();
        let stats = pipeline.transport_stats(DirectTransport.name());
        assert_eq!(stats.transport, "direct");
        assert_eq!(stats.jobs_dispatched, 3);
        assert_eq!(stats.retries, 1, "model 11 retried once");
        assert!(stats.round_trip_max_s >= stats.round_trip_mean_s);
        assert!(stats.round_trip_mean_s > 0.0);
        assert_eq!(stats.queue_wait_mean_s, 0.0);
        let csv = stats.to_csv();
        assert!(csv.starts_with(TransportStats::CSV_HEADER));
        assert_eq!(csv.lines().count(), 2);
        assert!(stats.summary_line().contains("transport direct: 3 job(s)"));
    }

    #[test]
    fn retried_outcomes_charge_failed_attempts_to_the_gpus() {
        let retried = TrainingOutcome {
            epochs: Vec::new(),
            final_fitness: 0.0,
            predicted_fitness: None,
            terminated_early: false,
            failed: false,
            attempts: 2,
            failed_attempt_seconds: vec![20.0],
            train_seconds: 50.0,
            engine_seconds: 0.0,
            engine_interactions: 0,
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
        };
        let schedule = generation_schedule(1, 0, &[(retried, ModelCost::from_flops(1.0))], &policy);
        // Failed 20 s attempt + 1 s backoff + 50 s success.
        assert_eq!(schedule.assignments.len(), 2);
        assert!((schedule.makespan - 71.0).abs() < 1e-9);
    }
}
