//! The objective registry: named, configurable NSGA objective vectors.
//!
//! The paper's NAS minimizes the fixed pair `(−accuracy, FLOPs)`. This
//! module generalizes that pair into an [`ObjectiveSet`] — an ordered
//! list of named providers, each mapping a trained model's
//! [`TrainingOutcome`] and measured [`ModelCost`] onto one minimized
//! coordinate — selected on the CLI as
//! `a4nn search --objectives neg_fitness,flops,peak_ws_bytes`.
//!
//! Every provider is deterministic given `(config, genome, outcome)`:
//! `neg_fitness` and `flops` reproduce the legacy pair bit for bit,
//! `params_bytes` and `macs` are closed-form genome costs
//! ([`a4nn_genome::cost`]), and `peak_ws_bytes` is the trainer's
//! workspace high-water mark (`Workspace::peak_pooled_bytes` for the
//! real substrate; the surrogate reports the matching closed-form
//! estimate so direct, bus, and socket evaluation agree exactly).
//!
//! The set rides inside [`WorkflowConfig`](crate::WorkflowConfig), so it
//! ships to remote workers in `RunSetup`, is covered by the resume
//! config fingerprint (resuming under a changed `--objectives` is a
//! stale snapshot, exit 5), and lands in every lineage record as named
//! per-objective columns.

use crate::training::TrainingOutcome;
use a4nn_error::A4nnError;
use a4nn_nsga::Objectives;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource-cost vector measured for one trained model.
///
/// Produced by [`Trainer::cost`](crate::Trainer::cost) *after* training
/// (the workspace peak is a lifetime high-water mark), shipped over the
/// wire in `JobDone`, and consumed by the objective providers. All
/// components are `f64` so the vector flows through JSON and CSV without
/// a separate integer schema; the integer-valued components stay exact
/// (they are far below 2⁵³).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelCost {
    /// Estimated forward FLOPs in MFLOPs — the legacy cost objective.
    pub flops: f64,
    /// Trainable-parameter footprint in bytes (`f32` storage).
    pub params_bytes: f64,
    /// Multiply–accumulates of one forward pass.
    pub macs: f64,
    /// Peak workspace bytes: measured `Workspace::peak_pooled_bytes` for
    /// real trainers, the closed-form estimate for the surrogate.
    pub peak_ws_bytes: f64,
}

impl ModelCost {
    /// A cost vector carrying only the FLOPs estimate — the default for
    /// trainers that measure nothing else.
    pub fn from_flops(flops: f64) -> Self {
        ModelCost {
            flops,
            ..ModelCost::default()
        }
    }
}

/// One named objective provider.
///
/// Serde impls are hand-written (below) so the wire/JSON form is the
/// registry name (`"neg_fitness"`), not the Rust variant name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Negated final fitness (validation accuracy is maximized, NSGA
    /// minimizes).
    NegFitness,
    /// Estimated forward MFLOPs.
    Flops,
    /// Trainable-parameter bytes.
    ParamsBytes,
    /// Forward-pass multiply–accumulates.
    Macs,
    /// Peak workspace bytes.
    PeakWsBytes,
}

impl ObjectiveKind {
    /// Every registered provider, in canonical order.
    pub const ALL: [ObjectiveKind; 5] = [
        ObjectiveKind::NegFitness,
        ObjectiveKind::Flops,
        ObjectiveKind::ParamsBytes,
        ObjectiveKind::Macs,
        ObjectiveKind::PeakWsBytes,
    ];

    /// The registry name, as spelled on the CLI and in column headers.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::NegFitness => "neg_fitness",
            ObjectiveKind::Flops => "flops",
            ObjectiveKind::ParamsBytes => "params_bytes",
            ObjectiveKind::Macs => "macs",
            ObjectiveKind::PeakWsBytes => "peak_ws_bytes",
        }
    }

    /// Look a provider up by registry name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The minimized coordinate this provider extracts.
    pub fn value(self, outcome: &TrainingOutcome, cost: &ModelCost) -> f64 {
        match self {
            ObjectiveKind::NegFitness => -outcome.final_fitness,
            ObjectiveKind::Flops => cost.flops,
            ObjectiveKind::ParamsBytes => cost.params_bytes,
            ObjectiveKind::Macs => cost.macs,
            ObjectiveKind::PeakWsBytes => cost.peak_ws_bytes,
        }
    }
}

/// An ordered, named objective configuration for one search.
///
/// Serializes transparently as the list of provider names
/// (`["neg_fitness","flops"]`), so the config fingerprint and the wire
/// `RunSetup` stay human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveSet {
    kinds: Vec<ObjectiveKind>,
}

impl Serialize for ObjectiveKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for ObjectiveKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let name = v
            .as_str()
            .ok_or_else(|| serde::DeError::expected("objective name string"))?;
        ObjectiveKind::from_name(name).ok_or_else(|| serde::DeError::unknown_variant(name))
    }
}

impl Serialize for ObjectiveSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.kinds.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for ObjectiveSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let kinds = Vec::<ObjectiveKind>::from_value(v)?;
        ObjectiveSet::new(kinds).map_err(|e| serde::DeError::new(e.to_string()))
    }
}

impl Default for ObjectiveSet {
    /// The paper's pair: `(neg_fitness, flops)`.
    fn default() -> Self {
        ObjectiveSet {
            kinds: vec![ObjectiveKind::NegFitness, ObjectiveKind::Flops],
        }
    }
}

impl fmt::Display for ObjectiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(k.name())?;
        }
        Ok(())
    }
}

impl ObjectiveSet {
    /// Build a set from explicit kinds. Errors on an empty list or a
    /// duplicated provider.
    pub fn new(kinds: Vec<ObjectiveKind>) -> Result<Self, A4nnError> {
        if kinds.is_empty() {
            return Err(A4nnError::Config(
                "an objective set needs at least one objective".into(),
            ));
        }
        for (i, k) in kinds.iter().enumerate() {
            if kinds[..i].contains(k) {
                return Err(A4nnError::Config(format!(
                    "objective '{}' listed more than once",
                    k.name()
                )));
            }
        }
        Ok(ObjectiveSet { kinds })
    }

    /// Parse a comma-separated CLI spec, e.g.
    /// `neg_fitness,flops,peak_ws_bytes`.
    pub fn parse(spec: &str) -> Result<Self, A4nnError> {
        let mut kinds = Vec::new();
        for name in spec.split(',') {
            let name = name.trim();
            if name.is_empty() {
                return Err(A4nnError::Config(format!(
                    "empty objective name in --objectives '{spec}'"
                )));
            }
            let kind = ObjectiveKind::from_name(name).ok_or_else(|| {
                A4nnError::Config(format!(
                    "unknown objective '{name}'; registered objectives: {}",
                    ObjectiveKind::ALL
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            kinds.push(kind);
        }
        Self::new(kinds)
    }

    /// The providers, in objective order.
    pub fn kinds(&self) -> &[ObjectiveKind] {
        &self.kinds
    }

    /// The provider names, in objective order.
    pub fn names(&self) -> Vec<String> {
        self.kinds.iter().map(|k| k.name().to_string()).collect()
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// An objective set is never empty (enforced at construction), but
    /// clippy wants the pair.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether this is the legacy default pair `(neg_fitness, flops)`.
    pub fn is_default(&self) -> bool {
        *self == ObjectiveSet::default()
    }

    /// Build the minimized NSGA vector for one evaluated model.
    pub fn vector(&self, outcome: &TrainingOutcome, cost: &ModelCost) -> Objectives {
        Objectives::new(self.kinds.iter().map(|k| k.value(outcome, cost)).collect())
    }

    /// The per-objective values as a plain vector (for lineage records
    /// and bus events).
    pub fn values(&self, outcome: &TrainingOutcome, cost: &ModelCost) -> Vec<f64> {
        self.kinds.iter().map(|k| k.value(outcome, cost)).collect()
    }

    /// Check that `names` (objective names loaded from a snapshot)
    /// matches this configuration; `what` names the source for the
    /// error message. A mismatch is a stale snapshot —
    /// [`A4nnError::Checkpoint`], CLI exit 5.
    pub fn check_snapshot_names(&self, names: &[String], what: &str) -> Result<(), A4nnError> {
        let ours = self.names();
        if names != ours.as_slice() {
            return Err(A4nnError::Checkpoint(format!(
                "stale snapshot: {what} was searched with objectives ({}), \
                 this run is configured for ({})",
                names.join(","),
                ours.join(",")
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_lineage::EpochRecord;

    fn outcome(fitness: f64) -> TrainingOutcome {
        TrainingOutcome {
            epochs: Vec::<EpochRecord>::new(),
            final_fitness: fitness,
            predicted_fitness: None,
            terminated_early: false,
            failed: false,
            attempts: 1,
            failed_attempt_seconds: Vec::new(),
            train_seconds: 0.0,
            engine_seconds: 0.0,
            engine_interactions: 0,
        }
    }

    fn cost() -> ModelCost {
        ModelCost {
            flops: 123.5,
            params_bytes: 4096.0,
            macs: 1e7,
            peak_ws_bytes: 2048.0,
        }
    }

    #[test]
    fn default_set_reproduces_the_legacy_pair() {
        let set = ObjectiveSet::default();
        assert!(set.is_default());
        assert_eq!(set.names(), vec!["neg_fitness", "flops"]);
        let v = set.vector(&outcome(91.5), &cost());
        assert_eq!(v.values(), &[-91.5, 123.5]);
    }

    #[test]
    fn parse_round_trips_every_registered_name() {
        let spec = "neg_fitness,flops,params_bytes,macs,peak_ws_bytes";
        let set = ObjectiveSet::parse(spec).unwrap();
        assert_eq!(set.len(), 5);
        assert_eq!(set.to_string(), spec);
        let v = set.vector(&outcome(80.0), &cost());
        assert_eq!(v.values(), &[-80.0, 123.5, 4096.0, 1e7, 2048.0]);
    }

    #[test]
    fn parse_rejects_unknown_empty_and_duplicate() {
        assert!(matches!(
            ObjectiveSet::parse("latency"),
            Err(A4nnError::Config(_))
        ));
        assert!(matches!(
            ObjectiveSet::parse("neg_fitness,,flops"),
            Err(A4nnError::Config(_))
        ));
        assert!(matches!(
            ObjectiveSet::parse("flops,flops"),
            Err(A4nnError::Config(_))
        ));
        assert!(matches!(ObjectiveSet::parse(""), Err(A4nnError::Config(_))));
    }

    #[test]
    fn serde_form_is_the_name_list() {
        let set = ObjectiveSet::parse("neg_fitness,flops,peak_ws_bytes").unwrap();
        let json = serde_json::to_string(&set).unwrap();
        assert_eq!(json, r#"["neg_fitness","flops","peak_ws_bytes"]"#);
        let back: ObjectiveSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn snapshot_name_mismatch_is_a_checkpoint_error() {
        let set = ObjectiveSet::default();
        let foreign = vec!["neg_fitness".to_string(), "macs".to_string()];
        let err = set.check_snapshot_names(&foreign, "run-dir").unwrap_err();
        assert_eq!(err.exit_code(), 5, "stale snapshot must exit 5");
        assert!(set.check_snapshot_names(&set.names(), "run-dir").is_ok());
    }

    #[test]
    fn failed_outcome_neg_fitness_matches_legacy_sign() {
        // The legacy archive pushed `-final_fitness` verbatim; a failed
        // model (fitness 0.0) must keep producing the identical -0.0.
        let set = ObjectiveSet::default();
        let v = set.vector(&outcome(0.0), &cost());
        assert_eq!(v.values()[0].to_bits(), (-0.0f64).to_bits());
    }
}
