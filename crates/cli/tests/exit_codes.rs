//! Exit-code contract of the `a4nn` driver: every error class maps to a
//! distinct nonzero code (documented in `a4nn_cli::run` and DESIGN.md),
//! and every failure is a single-line `error: ...` diagnostic — the
//! CLI never panics on user mistakes or missing files.

use a4nn_cli::run;

fn code(cmdline: &str) -> i32 {
    let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
    run(&argv)
}

#[test]
fn success_is_zero() {
    assert_eq!(code("help"), 0);
    assert_eq!(code("dataset --beam low --images 2"), 0);
}

#[test]
fn argument_parse_failures_are_two() {
    assert_eq!(code(""), 2, "missing subcommand");
    assert_eq!(code("launch"), 2, "unknown subcommand");
    assert_eq!(code("search --bogus 1"), 2, "unknown flag");
    assert_eq!(code("search --beam"), 2, "flag without value");
}

#[test]
fn invalid_values_are_three() {
    assert_eq!(code("dataset --beam ultraviolet"), 3, "unknown beam");
    assert_eq!(code("analyze"), 3, "missing required --commons");
    assert_eq!(
        code("search --generations 1 --function polynomial17"),
        3,
        "unknown parametric function"
    );
}

#[test]
fn io_failures_are_four() {
    assert_eq!(
        code("analyze --commons /nonexistent/a4nn-commons"),
        4,
        "commons dir that does not exist surfaces the workflow Io code"
    );
    let file = std::env::temp_dir().join(format!("a4nn-exit-codes-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").unwrap();
    let out = format!("{}/nested/data.json", file.display());
    assert_eq!(
        code(&format!("dataset --beam low --images 2 --out {out}")),
        4,
        "writing below an existing file is an I/O error"
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn search_errors_still_print_and_exit_nonzero() {
    // A search that completes but cannot persist its commons: the error
    // travels run_resilient -> save_dir -> A4nnError::Io -> exit code 4.
    let file = std::env::temp_dir().join(format!("a4nn-exit-codes-out-{}", std::process::id()));
    std::fs::write(&file, b"occupied").unwrap();
    let out = format!("{}/commons", file.display());
    assert_eq!(
        code(&format!(
            "baseline --beam low --population 3 --offspring 3 --generations 1 --epochs 2 --out {out}"
        )),
        4
    );
    std::fs::remove_file(&file).ok();
}
