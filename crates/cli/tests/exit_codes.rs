//! Exit-code contract of the `a4nn` driver: every error class maps to a
//! distinct nonzero code (documented in `a4nn_cli::run` and DESIGN.md),
//! and every failure is a single-line `error: ...` diagnostic — the
//! CLI never panics on user mistakes or missing files.

use a4nn_cli::run;

fn code(cmdline: &str) -> i32 {
    let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
    run(&argv)
}

#[test]
fn success_is_zero() {
    assert_eq!(code("help"), 0);
    assert_eq!(code("dataset --beam low --images 2"), 0);
}

#[test]
fn argument_parse_failures_are_two() {
    assert_eq!(code(""), 2, "missing subcommand");
    assert_eq!(code("launch"), 2, "unknown subcommand");
    assert_eq!(code("search --bogus 1"), 2, "unknown flag");
    assert_eq!(code("search --beam"), 2, "flag without value");
}

#[test]
fn invalid_values_are_three() {
    assert_eq!(code("dataset --beam ultraviolet"), 3, "unknown beam");
    assert_eq!(code("analyze"), 3, "missing required --commons");
    assert_eq!(
        code("search --generations 1 --function polynomial17"),
        3,
        "unknown parametric function"
    );
}

#[test]
fn io_failures_are_four() {
    assert_eq!(
        code("analyze --commons /nonexistent/a4nn-commons"),
        4,
        "commons dir that does not exist surfaces the workflow Io code"
    );
    let file = std::env::temp_dir().join(format!("a4nn-exit-codes-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").unwrap();
    let out = format!("{}/nested/data.json", file.display());
    assert_eq!(
        code(&format!("dataset --beam low --images 2 --out {out}")),
        4,
        "writing below an existing file is an I/O error"
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn net_failures_are_nine() {
    // Nothing listens on port 1, so the coordinator fails while
    // connecting its worker fleet — a Net-class machinery failure.
    assert_eq!(
        code(
            "search --population 2 --offspring 2 --generations 1 --epochs 2 \
             --orchestration socket --workers 127.0.0.1:1"
        ),
        9,
        "unreachable worker"
    );
}

#[test]
fn socket_misuse_is_invalid_value() {
    assert_eq!(
        code("search --generations 1 --orchestration socket"),
        3,
        "socket orchestration without --workers"
    );
    assert_eq!(
        code("search --generations 1 --orchestration socket --workers 127.0.0.1:1 --real"),
        3,
        "--real cannot ride the socket transport"
    );
    assert_eq!(code("worker --gpus 1"), 3, "worker without --listen");
    assert_eq!(
        code("worker --listen 127.0.0.1:0 --gpus 0"),
        3,
        "a worker advertising zero GPUs"
    );
}

/// The README's exit-code table is generated prose over a real mapping;
/// this pins every row to the code it documents so the two cannot drift
/// again.
#[test]
fn readme_exit_code_table_matches_the_code() {
    use a4nn_cli::{ArgError, CommandError};
    use a4nn_error::A4nnError;

    // The canonical table: every row the README must carry, verbatim.
    let classes: [(i32, &str); 11] = [
        (0, "success"),
        (2, "argument parsing"),
        (
            3,
            "invalid value (bad beam, unknown function, missing `--commons`)",
        ),
        (4, "filesystem failure"),
        (
            5,
            "checkpoint encode/decode (including a stale `--resume` snapshot)",
        ),
        (6, "event bus closed mid-run"),
        (7, "trainer retry budget exhausted"),
        (8, "internal invariant violated"),
        (
            9,
            "network failure (worker lost, bad frame, handshake refused)",
        ),
        (10, "interrupted at a generation boundary (resumable)"),
        (11, "serve admission queue saturated (back off and retry)"),
    ];

    // The canonical codes ARE the implementation's mapping.
    let wf = |e: A4nnError| CommandError::Workflow(e).exit_code();
    assert_eq!(CommandError::Args(ArgError::MissingCommand).exit_code(), 2);
    assert_eq!(CommandError::Invalid("x".into()).exit_code(), 3);
    assert_eq!(CommandError::Io(std::io::Error::other("x")).exit_code(), 4);
    assert_eq!(wf(A4nnError::Checkpoint("x".into())), 5);
    assert_eq!(wf(A4nnError::BusClosed("x".into())), 6);
    assert_eq!(
        wf(A4nnError::TrainerCrash {
            model_id: 0,
            attempts: 1,
            message: "x".into(),
        }),
        7
    );
    assert_eq!(wf(A4nnError::Internal("x".into())), 8);
    assert_eq!(wf(A4nnError::Net("x".into())), 9);
    assert_eq!(wf(A4nnError::Interrupted("x".into())), 10);
    assert_eq!(wf(A4nnError::Saturated("x".into())), 11);

    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).unwrap();
    for (code, class) in &classes {
        let row = format!("| {code} | {class} |");
        assert!(
            readme.contains(&row),
            "README exit-code table is missing the row {row:?}"
        );
    }
    // And carries nothing extra or stale: exactly one numeric table row
    // per documented class.
    let numeric_rows = readme
        .lines()
        .filter(|l| l.starts_with("| ") && l.chars().nth(2).is_some_and(|c| c.is_ascii_digit()))
        .count();
    assert_eq!(
        numeric_rows,
        classes.len(),
        "README documents an exit code this test does not pin"
    );
}

/// `--resume` under a different configuration is refused before any
/// training happens: the snapshot's config fingerprint does not match,
/// which is Checkpoint-class — exit code 5.
#[test]
fn stale_resume_snapshot_is_five() {
    let dir = std::env::temp_dir().join(format!("a4nn-exit-codes-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = dir.to_string_lossy().to_string();
    assert_eq!(
        code(&format!(
            "search --beam low --population 3 --offspring 3 --generations 2 --epochs 4 \
             --seed 2023 --out {out}"
        )),
        0,
        "seeding run commits its boundary snapshots"
    );
    assert_eq!(
        code(&format!(
            "search --beam low --population 3 --offspring 3 --generations 2 --epochs 4 \
             --seed 7 --resume {out}"
        )),
        5,
        "resuming with a different seed is a stale snapshot"
    );
    assert_eq!(
        code(&format!(
            "search --beam low --population 3 --offspring 3 --generations 2 --epochs 4 \
             --seed 2023 --resume {out}"
        )),
        0,
        "resuming a completed run with identical flags rebuilds its outputs"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `a4nn stats` reads a run directory offline: success on a real run
/// dir, invalid-value on an empty one.
#[test]
fn stats_reads_a_run_directory_offline() {
    let dir = std::env::temp_dir().join(format!("a4nn-exit-codes-stats-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = dir.to_string_lossy().to_string();
    assert_eq!(
        code(&format!(
            "search --beam low --population 3 --offspring 3 --generations 2 --epochs 4 \
             --out {out}"
        )),
        0
    );
    for artifact in [
        "metrics.csv",
        "metrics.json",
        "retries.csv",
        "resume_manifest.json",
    ] {
        assert!(
            dir.join(artifact).exists(),
            "search --out must commit {artifact}"
        );
    }
    assert_eq!(code(&format!("stats --run {out}")), 0);
    assert_eq!(code("stats"), 3, "stats without --run");
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert_eq!(
        code(&format!("stats --run {}", empty.to_string_lossy())),
        3,
        "a directory with no run artifacts"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_errors_still_print_and_exit_nonzero() {
    // A search that completes but cannot persist its commons: the error
    // travels run_resilient -> save_dir -> A4nnError::Io -> exit code 4.
    let file = std::env::temp_dir().join(format!("a4nn-exit-codes-out-{}", std::process::id()));
    std::fs::write(&file, b"occupied").unwrap();
    let out = format!("{}/commons", file.display());
    assert_eq!(
        code(&format!(
            "baseline --beam low --population 3 --offspring 3 --generations 1 --epochs 2 --out {out}"
        )),
        4
    );
    std::fs::remove_file(&file).ok();
}
