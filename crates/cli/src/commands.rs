//! Subcommand implementations: thin compositions of the library crates.

use crate::args::{ArgError, Command, Parsed, USAGE};
use a4nn_core::prelude::*;
use a4nn_core::{RealTrainerFactory, SurrogateFactory, SurrogateParams, TrainingHyperparams};
use a4nn_genome::viz::{render_ascii, render_dot};
use a4nn_lineage::{Analyzer, DataCommons};
use a4nn_net::{SocketOptions, SocketTransport, WorkerServer};
use a4nn_penguin::ParametricCurve;
use a4nn_xfel::generate_split;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced to the user by the subcommands.
#[derive(Debug)]
pub enum CommandError {
    /// Argument-level problem discovered during dispatch.
    Args(ArgError),
    /// A value outside its domain (e.g. unknown beam name).
    Invalid(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// The workflow machinery failed (see [`A4nnError`]).
    Workflow(A4nnError),
}

impl CommandError {
    /// Process exit code for this error, mirroring the workspace-wide
    /// convention documented in `a4nn-error`: 2 = argument parsing,
    /// 3 = invalid value, 4 = I/O, and workflow errors carry their own
    /// class-specific codes (5 checkpoint — including a stale `--resume`
    /// snapshot, 6 bus, 7 trainer, 8 internal, 9 network,
    /// 10 interrupted at a generation boundary, 11 serve admission
    /// queue saturated).
    pub fn exit_code(&self) -> i32 {
        match self {
            CommandError::Args(_) => 2,
            CommandError::Invalid(_) => 3,
            CommandError::Io(_) => 4,
            CommandError::Workflow(e) => e.exit_code(),
        }
    }
}

impl fmt::Display for CommandError {
    fmt_impl!();
}

macro_rules! fmt_impl {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CommandError::Args(e) => write!(f, "{e}"),
                CommandError::Invalid(msg) => write!(f, "{msg}"),
                CommandError::Io(e) => write!(f, "io: {e}"),
                CommandError::Workflow(e) => write!(f, "{e}"),
            }
        }
    };
}
use fmt_impl;

impl std::error::Error for CommandError {}

impl From<ArgError> for CommandError {
    fn from(e: ArgError) -> Self {
        CommandError::Args(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<A4nnError> for CommandError {
    fn from(e: A4nnError) -> Self {
        CommandError::Workflow(e)
    }
}

fn beam_of(parsed: &Parsed) -> Result<BeamIntensity, CommandError> {
    match parsed.get("--beam").unwrap_or("medium") {
        "low" => Ok(BeamIntensity::Low),
        "medium" => Ok(BeamIntensity::Medium),
        "high" => Ok(BeamIntensity::High),
        other => Err(CommandError::Invalid(format!(
            "unknown beam {other:?} (expected low|medium|high)"
        ))),
    }
}

fn family_of(name: &str) -> Result<CurveFamily, CommandError> {
    CurveFamily::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| CommandError::Invalid(format!("unknown parametric function {name:?}")))
}

fn workflow_config(parsed: &Parsed, engine: bool) -> Result<WorkflowConfig, CommandError> {
    let beam = beam_of(parsed)?;
    let seed = parsed.get_parse("--seed", 2023u64, "u64")?;
    let nas = NasSettings {
        population: parsed.get_parse("--population", 10usize, "usize")?,
        offspring: parsed.get_parse("--offspring", 10usize, "usize")?,
        generations: parsed.get_parse("--generations", 10usize, "usize")?,
        epochs: parsed.get_parse("--epochs", 25u32, "u32")?,
        ..NasSettings::paper_defaults()
    };
    let engine = if engine {
        let mut cfg = EngineConfig::paper_defaults();
        if let Some(name) = parsed.get("--function") {
            cfg.family = family_of(name)?;
        }
        cfg.e_pred = parsed.get_parse("--e-pred", nas.epochs, "u32")?;
        cfg.n_converge = parsed.get_parse("--n-converge", 3usize, "usize")?;
        cfg.r = parsed.get_parse("--r", 0.5f64, "f64")?;
        Some(cfg)
    } else {
        None
    };
    // Typed registry lookup: an unknown objective name lists the whole
    // registry in the error and exits 3 before any search state exists.
    let objectives = match parsed.get("--objectives") {
        None => ObjectiveSet::default(),
        Some(spec) => ObjectiveSet::parse(spec)?,
    };
    Ok(WorkflowConfig {
        nas,
        engine,
        gpus: parsed.get_parse("--gpus", 1usize, "usize")?,
        beam,
        seed,
        objectives,
    })
}

/// Print one Pareto front, one `name=value` cell per configured
/// objective (legacy records fall back to the `(neg_fitness, flops)`
/// pair), sorted by FLOPs for a stable, cheap-to-expensive reading.
fn print_objective_front(analyzer: &Analyzer<'_>) -> Result<(), CommandError> {
    let mut front = analyzer.pareto_front_objectives()?;
    front.sort_by(|a, b| a.flops.total_cmp(&b.flops));
    for r in front {
        let cells: Vec<String> = r
            .objective_labels()
            .iter()
            .zip(r.objective_vector())
            .map(|(name, value)| format!("{name}={value:.3}"))
            .collect();
        println!(
            "  model {:>3} | {:>6.2}% | {}",
            r.model_id,
            r.final_fitness,
            cells.join("  ")
        );
    }
    Ok(())
}

fn run_search(parsed: &Parsed, engine: bool) -> Result<(), CommandError> {
    let config = workflow_config(parsed, engine)?;
    let orchestration = parsed.get_parse(
        "--orchestration",
        Orchestration::Direct,
        "orchestration (direct|bus|socket)",
    )?;
    let retries = parsed.get_parse("--max-retries", 2u32, "u32")?;
    let tolerance = FaultTolerance::new(RetryPolicy::with_retries(retries), FaultPlan::none());
    let workflow = A4nnWorkflow::new(config.clone());
    if orchestration == Orchestration::Socket && parsed.flag("--real") {
        return Err(CommandError::Invalid(
            "--real is not available over --orchestration socket; workers train the \
             deterministic surrogate rebuilt from the shipped configuration"
                .into(),
        ));
    }

    // Resume + snapshot wiring. The run directory (--out, or the
    // --resume dir when --out is absent) receives a full search-state
    // snapshot at every generation boundary, so a killed process can
    // continue bit-for-bit with `--resume <dir>` and identical flags.
    let resume_dir = parsed.get("--resume").map(PathBuf::from);
    if resume_dir.is_some() && parsed.flag("--real") {
        return Err(CommandError::Invalid(
            "--resume is not available with --real: the training dataset is not part \
             of the snapshot's configuration fingerprint"
                .into(),
        ));
    }
    let out_dir = parsed
        .get("--out")
        .map(PathBuf::from)
        .or_else(|| resume_dir.clone());
    let snapshot = resume_dir
        .as_deref()
        .map(|dir| SearchSnapshot::load(dir, &config))
        .transpose()
        .map_err(CommandError::Workflow)?;
    if let Some(snap) = &snapshot {
        println!(
            "resuming from {} ({} of {} generation(s) already committed)",
            resume_dir
                .as_deref()
                .unwrap_or(std::path::Path::new("?"))
                .display(),
            snap.generations_done,
            config.nas.generations
        );
    }
    // CI kill-window knob: stall each generation boundary by this many
    // milliseconds so an external SIGKILL can land mid-run. Wall-clock
    // only — the search results are unaffected.
    let boundary_delay_ms = std::env::var("A4NN_SEARCH_GEN_DELAY_MS")
        .ok()
        .and_then(|raw| raw.parse::<u64>().ok())
        .unwrap_or(0);
    let pacing = move |_done: usize| {
        if boundary_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(boundary_delay_ms));
        }
        false
    };
    let mut control = RunControl::default();
    if let Some(dir) = &out_dir {
        control.snapshot_dir = Some(dir.clone());
    }
    if boundary_delay_ms > 0 {
        control = control.with_cancel(&pacing);
    }
    let output = if orchestration == Orchestration::Socket {
        let workers: Vec<String> = parsed
            .get("--workers")
            .ok_or_else(|| {
                CommandError::Invalid(
                    "--orchestration socket requires --workers <addr,...> \
                     (e.g. --workers 10.0.0.2:7070,10.0.0.3:7070)"
                        .into(),
                )
            })?
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(String::from)
            .collect();
        let heartbeat_ms = parsed.get_parse("--heartbeat-ms", 2000u64, "u64")?;
        let transport = SocketTransport::connect(
            &workers,
            &config,
            &tolerance,
            SocketOptions {
                heartbeat_deadline: std::time::Duration::from_millis(heartbeat_ms.max(1)),
                ..SocketOptions::default()
            },
        )?;
        println!(
            "sharding across {} worker(s), {} advertised GPU slot(s)",
            transport.worker_count(),
            transport.total_gpus()
        );
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        workflow.try_run_transport_resumable(
            &factory, None, &transport, &tolerance, &control, snapshot,
        )?
    } else if parsed.flag("--real") {
        let images = parsed.get_parse("--images", 100usize, "usize")?;
        let conv_impl = parsed.get_parse(
            "--conv-impl",
            a4nn_nn::ConvImpl::default(),
            "conv backend (naive|im2col)",
        )?;
        let dense_impl = parsed.get_parse(
            "--dense-impl",
            a4nn_nn::DenseImpl::default(),
            "dense backend (naive|gemm)",
        )?;
        let eval_chunk = parsed.get_parse(
            "--eval-chunk",
            TrainingHyperparams::default().eval_chunk,
            "usize",
        )?;
        let (train, test) =
            generate_split(&XfelConfig::default(), config.beam, images, config.seed);
        println!(
            "training for real: {} train / {} validation images",
            train.len(),
            test.len()
        );
        let factory = RealTrainerFactory::new(
            config.search_space(),
            Arc::new(train),
            Arc::new(test),
            TrainingHyperparams {
                conv_impl,
                dense_impl,
                eval_chunk,
                ..TrainingHyperparams::default()
            },
        );
        workflow.try_run_resumable(&factory, None, orchestration, &tolerance, &control, None)?
    } else {
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
        workflow.try_run_resumable(
            &factory,
            None,
            orchestration,
            &tolerance,
            &control,
            snapshot,
        )?
    };

    let analyzer = Analyzer::new(&output.commons);
    println!(
        "evaluated {} architectures in {:.2} simulated hours ({} epochs, {:.1}% saved)",
        output.commons.len(),
        output.wall_time_s() / 3600.0,
        output.total_epochs(),
        output.epochs_saved_pct()
    );
    if engine {
        println!(
            "engine: {:.0}% of models terminated early; overhead {:.3}s total",
            100.0 * analyzer.early_termination_rate(),
            output.engine_seconds
        );
    }
    if !output.fault_stats.is_quiet() {
        println!(
            "faults: {} retries consumed; {} models recovered, {} failed terminally",
            output.fault_stats.retries,
            output.fault_stats.models_recovered,
            output.fault_stats.models_failed
        );
    }
    if output.transport_stats.jobs_dispatched > 0 {
        println!("{}", output.transport_stats.summary_line());
    }
    if let Some(stats) = &output.bus_stats {
        println!(
            "bus: {} epochs streamed, {} verdicts, {} early stops; \
             lineage stream delivered {} events, dropped {}",
            stats.epochs_observed,
            stats.engine_interactions,
            stats.terminations_advised,
            stats.subscriber.delivered,
            stats.subscriber.dropped
        );
    }
    println!("Pareto front ({}):", config.objectives);
    print_objective_front(&analyzer)?;
    if let Some(dir) = &out_dir {
        output.commons.save_dir(dir)?;
        // Written beside the commons files, not through save_dir, so
        // run bookkeeping can never perturb the golden commons bytes
        // the equivalence suite pins. Metrics and the retry ledger go
        // through write_atomic: a kill during export must not leave a
        // half-written snapshot next to a committed commons.
        std::fs::write(
            dir.join("transport_stats.csv"),
            output.transport_stats.to_csv(),
        )?;
        a4nn_lineage::write_atomic(&dir.join("metrics.csv"), output.metrics.to_csv().as_bytes())?;
        a4nn_lineage::write_atomic(&dir.join("metrics.json"), &output.metrics.to_json()?)?;
        a4nn_lineage::write_atomic(
            &dir.join("retries.csv"),
            output.retry_ledger.to_csv().as_bytes(),
        )?;
        println!("commons written to {}", dir.display());
    }
    Ok(())
}

/// `a4nn stats`: summarize a run directory offline — the artifacts a
/// search committed (`metrics.json`, `retries.csv`, the resume
/// manifest, and the commons), without running anything.
fn run_stats(parsed: &Parsed) -> Result<(), CommandError> {
    let dir = PathBuf::from(
        parsed
            .get("--run")
            .ok_or_else(|| CommandError::Invalid("--run <dir> is required".into()))?,
    );
    let mut found_any = false;

    let manifest_path = dir.join("resume_manifest.json");
    if let Ok(bytes) = std::fs::read(&manifest_path) {
        found_any = true;
        let manifest: a4nn_core::resume::ResumeManifest =
            serde_json::from_slice(&bytes).map_err(|e| {
                CommandError::Workflow(A4nnError::Checkpoint(format!(
                    "parsing {}: {e}",
                    manifest_path.display()
                )))
            })?;
        println!(
            "resume state : generation boundary {} committed (config {:016x}, {})",
            manifest.generations_done, manifest.config_hash, manifest.state_file
        );
    }

    if let Ok(commons) = DataCommons::load_dir(&dir) {
        found_any = true;
        let analyzer = Analyzer::new(&commons);
        println!(
            "commons      : {} record trails, {} epochs, {:.0}% early terminations",
            commons.len(),
            analyzer.total_epochs(),
            100.0 * analyzer.early_termination_rate()
        );
        if let Some(r) = commons.records.first() {
            println!(
                "objectives   : {} ({} model(s) on the front)",
                r.objective_labels().join(","),
                analyzer.pareto_front_objectives()?.len()
            );
        }
    }

    if let Ok(bytes) = std::fs::read(dir.join("metrics.json")) {
        found_any = true;
        let metrics = MetricsSnapshot::from_json(&bytes)?;
        println!("metrics      :");
        for line in metrics.to_csv().lines().skip(1) {
            println!("  {line}");
        }
    }

    if let Ok(retries) = std::fs::read_to_string(dir.join("retries.csv")) {
        found_any = true;
        let entries = retries.lines().skip(1).filter(|l| !l.is_empty()).count();
        let retried = retries
            .lines()
            .skip(1)
            .filter(|l| l.split(',').nth(2).is_some_and(|a| a != "1"))
            .count();
        let failed = retries
            .lines()
            .skip(1)
            .filter(|l| l.ends_with("true"))
            .count();
        println!(
            "retry ledger : {entries} model(s) tracked, {retried} needed retries, \
             {failed} failed terminally"
        );
    }

    if !found_any {
        return Err(CommandError::Invalid(format!(
            "{} holds no run artifacts (no resume manifest, commons, metrics.json, \
             or retries.csv)",
            dir.display()
        )));
    }
    Ok(())
}

fn run_worker(parsed: &Parsed) -> Result<(), CommandError> {
    let listen = parsed
        .get("--listen")
        .ok_or_else(|| CommandError::Invalid("--listen <addr> is required".into()))?;
    let gpus = parsed.get_parse("--gpus", 1usize, "usize")?;
    let sessions = parsed.get_parse("--sessions", 0usize, "usize")?;
    let server = WorkerServer::bind(listen, gpus)?;
    println!(
        "a4nn worker listening on {} ({gpus} GPU slot(s), {})",
        server.local_addr()?,
        if sessions == 0 {
            "serving until killed".to_string()
        } else {
            format!("serving {sessions} session(s)")
        }
    );
    server.run(sessions)?;
    Ok(())
}

fn run_serve(parsed: &Parsed) -> Result<(), CommandError> {
    let commons = parsed
        .get("--commons")
        .ok_or_else(|| CommandError::Invalid("--commons <dir> is required".into()))?;
    let listen = parsed
        .get("--listen")
        .ok_or_else(|| CommandError::Invalid("--listen <addr> is required".into()))?;
    let sessions = parsed.get_parse("--sessions", 0usize, "usize")?;
    let io = match parsed.get("--io") {
        None => a4nn_serve::IoMode::default_for_platform(),
        Some(raw) => a4nn_serve::IoMode::parse(raw)?,
    };
    let cfg = a4nn_serve::ServeConfig {
        batcher: a4nn_serve::BatcherConfig {
            max_batch: parsed.get_parse("--batch", 8usize, "usize")?,
            queue_cap: parsed.get_parse("--queue", 64usize, "usize")?,
            workers: parsed.get_parse("--batch-workers", 1usize, "usize")?,
            ws_limit_bytes: parsed.get_parse("--ws-limit-mb", 8usize, "usize")? * 1024 * 1024,
        },
        io,
        idle_timeout: Duration::from_millis(parsed.get_parse("--idle-ms", 30_000u64, "u64")?),
        metrics_out: parsed.get("--metrics-out").map(PathBuf::from),
        metrics_interval: Duration::from_millis(parsed.get_parse(
            "--metrics-interval-ms",
            2_000u64,
            "u64",
        )?),
    };
    let repo = a4nn_serve::ModelRepo::load(&PathBuf::from(commons))?;
    let menu = repo.infos();
    let server =
        a4nn_serve::ServeServer::bind(listen, repo, cfg, Arc::new(MetricsRegistry::new()))?;
    println!(
        "a4nn serve listening on {} (--io {}, {} Pareto model(s), {})",
        server.local_addr()?,
        io.as_str(),
        menu.len(),
        if sessions == 0 {
            "serving until killed".to_string()
        } else {
            format!("serving {sessions} connection(s)")
        }
    );
    for m in &menu {
        let objectives: Vec<String> = m
            .objective_names
            .iter()
            .zip(&m.objective_values)
            .map(|(name, value)| format!("{name}={value:.3}"))
            .collect();
        println!(
            "  model {:>4}  fitness {:6.2}%  {}  {}{}",
            m.model_id,
            m.fitness,
            objectives.join("  "),
            m.arch_summary,
            if m.default { "  [default]" } else { "" }
        );
    }
    server.run(sessions)?;
    Ok(())
}

fn run_serve_bench(parsed: &Parsed) -> Result<(), CommandError> {
    let clients = parsed.get_parse("--clients", 4usize, "usize")?;
    let requests = parsed.get_parse("--requests", 50usize, "usize")?;
    let height = parsed.get_parse("--height", 8usize, "usize")?;
    let width = parsed.get_parse("--width", 8usize, "usize")?;
    let seed = parsed.get_parse("--seed", 2023u64, "u64")?;
    let out = PathBuf::from(parsed.get("--out").unwrap_or("BENCH_serve.json"));

    let report = match (parsed.get("--addr"), parsed.get("--commons")) {
        (Some(addr), commons) => {
            // Target a running endpoint; with a commons we can also
            // verify responses bitwise against direct evaluation.
            if let Some(commons) = commons {
                let verify_samples = parsed.get_parse("--verify-samples", 8usize, "usize")?;
                let checked = a4nn_serve::verify_against_direct(
                    &PathBuf::from(commons),
                    addr,
                    verify_samples,
                    height,
                    width,
                    seed,
                )?;
                println!(
                    "verified {checked} classify response(s) bitwise against direct evaluation"
                );
            }
            let load = a4nn_serve::run_load(&a4nn_serve::LoadSpec {
                addr: addr.to_string(),
                clients,
                requests_per_client: requests,
                height,
                width,
                seed,
            })?;
            a4nn_serve::BenchReport {
                clients,
                requests_per_client: requests,
                height,
                width,
                seed,
                points: vec![a4nn_serve::BatchPoint {
                    max_batch: 0, // unknown: the remote server's setting
                    report: load,
                }],
                scaling: Vec::new(),
            }
        }
        (None, Some(commons)) => {
            let commons = PathBuf::from(commons);
            let mut report = a4nn_serve::sweep_in_process(
                &commons,
                &[1, 2, 4, 8],
                clients,
                requests,
                height,
                width,
                seed,
            )?;
            if parsed.flag("--scaling") {
                // Threads everywhere; the reactor where epoll exists.
                let modes: &[a4nn_serve::IoMode] = if cfg!(target_os = "linux") {
                    &[a4nn_serve::IoMode::Threads, a4nn_serve::IoMode::Reactor]
                } else {
                    &[a4nn_serve::IoMode::Threads]
                };
                report.scaling = a4nn_serve::scaling_sweep(
                    &commons,
                    modes,
                    &[4, 16, 64, 128, 256],
                    requests,
                    height,
                    width,
                    seed,
                )?;
            }
            report
        }
        (None, None) => {
            return Err(CommandError::Invalid(
                "serve-bench needs --addr (live endpoint) or --commons (in-process sweep)".into(),
            ))
        }
    };

    for p in &report.points {
        println!(
            "batch {:>3}: {:8.1} req/s  p50 {:>6} us  p99 {:>6} us  ({} accepted, {} rejected)",
            p.max_batch,
            p.report.throughput_rps,
            p.report.p50_us,
            p.report.p99_us,
            p.report.accepted,
            p.report.rejected
        );
    }
    for p in &report.scaling {
        println!(
            "{:>7} x{:>3} clients: {:8.1} req/s  p50 {:>6} us  p99 {:>6} us  ({} accepted, {} rejected)",
            p.io,
            p.clients,
            p.report.throughput_rps,
            p.report.p50_us,
            p.report.p99_us,
            p.report.accepted,
            p.report.rejected
        );
    }
    let bytes = serde_json::to_vec_pretty(&report)
        .map_err(|e| CommandError::Invalid(format!("serializing bench report: {e}")))?;
    a4nn_lineage::write_atomic(&out, &bytes)?;
    println!("bench report written to {}", out.display());
    Ok(())
}

fn run_xpsi(parsed: &Parsed) -> Result<(), CommandError> {
    let beam = beam_of(parsed)?;
    let seed = parsed.get_parse("--seed", 2023u64, "u64")?;
    let images = parsed.get_parse("--images", 100usize, "usize")?;
    let (train, test) = generate_split(&XfelConfig::default(), beam, images, seed);
    let result = a4nn_xpsi::XpsiFramework::new(a4nn_xpsi::XpsiConfig {
        seed,
        ..Default::default()
    })
    .run(&train, &test);
    println!(
        "XPSI on {beam} beam: {:.1}% test accuracy ({:.1}% train) in {:.2}s \
         (latent dim {}, reconstruction error {:.4})",
        result.accuracy,
        result.train_accuracy,
        result.wall_seconds,
        result.latent_dim,
        result.reconstruction_error
    );
    Ok(())
}

fn run_dataset(parsed: &Parsed) -> Result<(), CommandError> {
    let beam = beam_of(parsed)?;
    let seed = parsed.get_parse("--seed", 2023u64, "u64")?;
    let images = parsed.get_parse("--images", 100usize, "usize")?;
    let dataset = a4nn_xfel::generate_dataset(&XfelConfig::default(), beam, images, seed);
    println!(
        "generated {} diffraction images ({}x{}, classes {:?})",
        dataset.len(),
        dataset.height,
        dataset.width,
        dataset.class_counts()
    );
    if let Some(out) = parsed.get("--out") {
        let path = PathBuf::from(out);
        let bytes = serde_json::to_vec(&dataset)
            .map_err(|e| CommandError::Invalid(format!("serializing dataset: {e}")))?;
        std::fs::write(&path, bytes)?;
        println!("dataset written to {}", path.display());
    }
    Ok(())
}

fn load_commons(parsed: &Parsed) -> Result<DataCommons, CommandError> {
    let dir = parsed
        .get("--commons")
        .ok_or_else(|| CommandError::Invalid("--commons <dir> is required".into()))?;
    Ok(DataCommons::load_dir(&PathBuf::from(dir))?)
}

fn run_analyze(parsed: &Parsed) -> Result<(), CommandError> {
    let commons = load_commons(parsed)?;
    let analyzer = Analyzer::new(&commons);
    println!("commons: {} record trails", commons.len());
    println!(
        "  mean fitness            : {:.2}%",
        analyzer.mean_fitness()
    );
    println!("  total epochs            : {}", analyzer.total_epochs());
    println!(
        "  total training time     : {:.2} h",
        analyzer.total_wall_time() / 3600.0
    );
    println!(
        "  early terminations      : {:.0}%",
        100.0 * analyzer.early_termination_rate()
    );
    if let Some(et) = analyzer.mean_termination_epoch() {
        println!("  mean termination epoch  : {et:.1}");
    }
    if let Some(c) = analyzer.flops_fitness_correlation() {
        println!("  FLOPs-accuracy corr.    : {c:+.3}");
    }
    let labels = commons
        .records
        .first()
        .map(|r| r.objective_labels().join(","))
        .unwrap_or_default();
    println!("  Pareto front ({labels}):");
    print_objective_front(&analyzer)?;
    Ok(())
}

fn run_viz(parsed: &Parsed) -> Result<(), CommandError> {
    let commons = load_commons(parsed)?;
    let analyzer = Analyzer::new(&commons);
    let record = match parsed.get("--model") {
        Some(raw) => {
            let id: u64 = raw
                .parse()
                .map_err(|_| CommandError::Invalid(format!("--model {raw:?} is not a valid id")))?;
            commons
                .get(id)
                .ok_or_else(|| CommandError::Invalid(format!("model {id} not in commons")))?
        }
        None => analyzer
            .best_by_fitness()
            .ok_or_else(|| CommandError::Invalid("commons is empty".into()))?,
    };
    let space = SearchSpace::paper_defaults();
    let arch = space.decode(&record.genome);
    println!(
        "model {} | fitness {:.2}% | {:.1} MFLOPs | {}",
        record.model_id, record.final_fitness, record.flops, record.arch_summary
    );
    if parsed.flag("--dot") {
        println!(
            "{}",
            render_dot(&arch, &format!("a4nn-model-{}", record.model_id))
        );
    } else {
        println!("{}", render_ascii(&arch));
    }
    Ok(())
}

fn run_export(parsed: &Parsed) -> Result<(), CommandError> {
    let commons = load_commons(parsed)?;
    let out = PathBuf::from(parsed.get("--out").unwrap_or("."));
    std::fs::create_dir_all(&out)?;
    let models = out.join("models.csv");
    let epochs = out.join("epochs.csv");
    std::fs::write(&models, a4nn_lineage::models_csv(&commons))?;
    std::fs::write(&epochs, a4nn_lineage::epochs_csv(&commons))?;
    println!(
        "wrote {} ({} rows) and {} ({} rows)",
        models.display(),
        commons.len(),
        epochs.display(),
        commons
            .records
            .iter()
            .map(|r| r.epochs.len())
            .sum::<usize>()
    );
    Ok(())
}

/// Dispatch a parsed command line.
pub fn run_command(parsed: &Parsed) -> Result<(), CommandError> {
    match parsed.command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Search => run_search(parsed, true),
        Command::Baseline => run_search(parsed, false),
        Command::Xpsi => run_xpsi(parsed),
        Command::Dataset => run_dataset(parsed),
        Command::Analyze => run_analyze(parsed),
        Command::Viz => run_viz(parsed),
        Command::Export => run_export(parsed),
        Command::Stats => run_stats(parsed),
        Command::Worker => run_worker(parsed),
        Command::Serve => run_serve(parsed),
        Command::ServeBench => run_serve_bench(parsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn parsed(s: &str) -> Parsed {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        Parsed::parse(&argv).unwrap()
    }

    #[test]
    fn workflow_config_from_flags() {
        let p = parsed("search --beam high --gpus 4 --population 6 --generations 3 --epochs 10 --r 1.0 --function pow3");
        let cfg = workflow_config(&p, true).unwrap();
        assert_eq!(cfg.beam, BeamIntensity::High);
        assert_eq!(cfg.gpus, 4);
        assert_eq!(cfg.nas.population, 6);
        assert_eq!(cfg.nas.generations, 3);
        assert_eq!(cfg.nas.epochs, 10);
        let engine = cfg.engine.unwrap();
        assert_eq!(engine.r, 1.0);
        assert_eq!(engine.family.name(), "pow3");
        // e_pred defaults to the epoch budget.
        assert_eq!(engine.e_pred, 10);
    }

    #[test]
    fn baseline_has_no_engine() {
        let cfg = workflow_config(&parsed("baseline --beam low"), false).unwrap();
        assert!(cfg.engine.is_none());
    }

    #[test]
    fn conv_impl_flag_parses_and_rejects_garbage() {
        let p = parsed("search --conv-impl naive");
        assert_eq!(
            p.get_parse("--conv-impl", a4nn_nn::ConvImpl::default(), "conv backend")
                .unwrap(),
            a4nn_nn::ConvImpl::Naive
        );
        // Default is the lowered GEMM backend.
        assert_eq!(a4nn_nn::ConvImpl::default(), a4nn_nn::ConvImpl::Im2colGemm);
        let bad = parsed("search --conv-impl winograd");
        assert!(bad
            .get_parse("--conv-impl", a4nn_nn::ConvImpl::default(), "conv backend")
            .is_err());
    }

    #[test]
    fn dense_impl_flag_parses_and_rejects_garbage() {
        let p = parsed("search --dense-impl naive");
        assert_eq!(
            p.get_parse(
                "--dense-impl",
                a4nn_nn::DenseImpl::default(),
                "dense backend"
            )
            .unwrap(),
            a4nn_nn::DenseImpl::Naive
        );
        // Default is the GEMM backend.
        assert_eq!(a4nn_nn::DenseImpl::default(), a4nn_nn::DenseImpl::Gemm);
        let bad = parsed("search --dense-impl strassen");
        assert!(bad
            .get_parse(
                "--dense-impl",
                a4nn_nn::DenseImpl::default(),
                "dense backend"
            )
            .is_err());
    }

    #[test]
    fn eval_chunk_flag_parses() {
        let p = parsed("search --eval-chunk 64");
        assert_eq!(p.get_parse("--eval-chunk", 256usize, "usize").unwrap(), 64);
    }

    #[test]
    fn bad_beam_rejected() {
        assert!(beam_of(&parsed("search --beam ultraviolet")).is_err());
    }

    #[test]
    fn bad_function_rejected() {
        assert!(family_of("polynomial17").is_err());
        assert!(family_of("exp-base").is_ok());
    }

    #[test]
    fn end_to_end_search_and_analyze_via_commands() {
        let dir = std::env::temp_dir().join(format!("a4nn-cli-test-{}", std::process::id()));
        let out = dir.to_string_lossy().to_string();
        let search = parsed(&format!(
            "search --beam medium --population 4 --offspring 4 --generations 2 --epochs 10 --out {out}"
        ));
        run_command(&search).unwrap();
        let analyze = parsed(&format!("analyze --commons {out}"));
        run_command(&analyze).unwrap();
        let viz = parsed(&format!("viz --commons {out}"));
        run_command(&viz).unwrap();
        let viz_dot = parsed(&format!("viz --commons {out} --model 0 --dot"));
        run_command(&viz_dot).unwrap();
        let export_dir = dir.join("csv");
        run_command(&parsed(&format!(
            "export --commons {out} --out {}",
            export_dir.to_string_lossy()
        )))
        .unwrap();
        let csv = std::fs::read_to_string(export_dir.join("models.csv")).unwrap();
        assert_eq!(csv.lines().count(), 9); // header + 8 models
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orchestration_flag_selects_bus_and_rejects_garbage() {
        let bus = parsed(
            "search --beam medium --population 3 --offspring 3 --generations 2 --epochs 8 \
             --orchestration bus",
        );
        run_command(&bus).unwrap();
        let bad = parsed("search --generations 1 --orchestration sidecar");
        assert!(run_command(&bad).is_err());
    }

    #[test]
    fn viz_unknown_model_errors() {
        let dir = std::env::temp_dir().join(format!("a4nn-cli-viz-{}", std::process::id()));
        let out = dir.to_string_lossy().to_string();
        run_command(&parsed(&format!(
            "search --beam low --population 3 --offspring 3 --generations 2 --epochs 6 --out {out}"
        )))
        .unwrap();
        let err = run_command(&parsed(&format!("viz --commons {out} --model 999")));
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_missing_commons_flag_errors() {
        assert!(run_command(&parsed("analyze")).is_err());
    }
}
