//! # a4nn-cli — the workflow driver
//!
//! §2.6 of the paper: "Users submit the NSGA-Net parameters through
//! command-line arguments to the driver script that instantiates the NAS
//! run" and "the write location for model and metadata files is configured
//! as a command-line argument to the NAS." This crate is that driver: a
//! dependency-light argument parser ([`args`]) plus the subcommand
//! implementations ([`commands`]) behind the `a4nn` binary:
//!
//! ```text
//! a4nn search    --beam medium --gpus 4 --out ./commons [--population 10 ...]
//! a4nn baseline  --beam medium --out ./commons-baseline
//! a4nn xpsi      --beam medium --images 300
//! a4nn dataset   --beam low --images 100 --out ./data.json
//! a4nn analyze   --commons ./commons
//! a4nn viz       --commons ./commons --model 51 [--dot]
//! ```
//!
//! Everything the subcommands do is a thin composition of the library
//! crates, so the CLI is also living documentation of the public API.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};
pub use commands::{run_command, CommandError};

/// Entry point shared by the binary and the integration tests: parse and
/// dispatch, returning a process exit code.
///
/// Exit codes: 0 success, 2 argument parsing, then one code per error
/// class via [`CommandError::exit_code`] (3 invalid value, 4 I/O,
/// 5 checkpoint, 6 bus, 7 trainer, 8 internal, 9 network). Every failure
/// prints a single-line `error: ...` diagnostic to stderr.
pub fn run(argv: &[String]) -> i32 {
    let parsed = match args::Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return 2;
        }
    };
    match commands::run_command(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}
