//! The `a4nn` binary: §2.6's command-line driver.

#![warn(clippy::redundant_clone)]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(a4nn_cli::run(&argv));
}
