//! Dependency-light command-line argument parsing.
//!
//! Hand-rolled rather than pulling in a parser crate: the grammar is just
//! `a4nn <subcommand> [--key value]...` with typed accessors and strict
//! unknown-flag rejection.

use std::collections::BTreeMap;
use std::fmt;

/// Usage text printed on parse errors and `a4nn help`.
pub const USAGE: &str = "\
usage: a4nn <command> [options]

commands:
  search     run the A4NN workflow (NAS + prediction engine)
  baseline   run standalone NSGA-Net (no prediction engine)
  xpsi       run the XPSI baseline on a synthetic dataset
  dataset    generate a synthetic XFEL diffraction dataset
  analyze    summarize a data commons directory
  viz        render an architecture from a commons (ASCII or DOT)
  export     write models.csv and epochs.csv from a commons
  stats      summarize a run directory offline (metrics, retries, resume state)
  worker     serve trainer jobs to a remote search coordinator over TCP
  serve      serve batched classify requests from a commons' Pareto front
  serve-bench  load-generate against a serve endpoint (or sweep batch
             sizes in process) and write a bench report
  help       print this message

common options:
  --beam <low|medium|high>   beam intensity            [medium]
  --seed <u64>               master seed               [2023]
  --out <dir>                output directory

search/baseline options (paper Table 2 defaults):
  --gpus <n>                 virtual GPUs              [1]
  --population <n>           starting population       [10]
  --offspring <n>            offspring per generation  [10]
  --generations <n>          generations               [10]
  --epochs <n>               epoch budget per network  [25]
  --orchestration <mode>     direct|bus|socket task coupling [direct]
  --objectives <name,...>    comma-separated NSGA objective set, each of
                             neg_fitness|flops|params_bytes|macs|
                             peak_ws_bytes   [neg_fitness,flops]
  --workers <addr,...>       comma-separated worker addresses for
                             --orchestration socket
  --heartbeat-ms <n>         declare a silent worker dead after this
                             many milliseconds (socket)  [2000]
  --max-retries <n>          retries per model after a crashed
                             training attempt          [2]
  --resume <dir>             continue an interrupted search from the
                             snapshot committed in <dir>; the flags must
                             reproduce the original configuration
                             (checked via its fingerprint, exit 5 on
                             mismatch). With --out, snapshots commit
                             there at every generation boundary.
                             A4NN_SEARCH_GEN_DELAY_MS=<n> stalls each
                             boundary by n ms (CI kill-window knob;
                             wall-clock only, never results)
  --real                     train for real on the CPU substrate
  --images <n>               images per class for --real / xpsi / dataset [100]
  --conv-impl <name>         conv backend for --real training:
                             naive|im2col              [im2col]
  --dense-impl <name>        dense backend for --real training:
                             naive|gemm                [gemm]
  --eval-chunk <n>           validation chunk size for --real
                             training                  [256]

engine options (search only; paper Table 1 defaults):
  --function <name>          exp-base|pow3|log3|vap3|weibull4|janoschek3
  --e-pred <n>               epoch predicted for       [25]
  --n-converge <n>           convergence window N      [3]
  --r <f64>                  tolerance r               [0.5]

worker options:
  --listen <addr>            bind address (required), e.g. 0.0.0.0:7070
  --gpus <n>                 advertised concurrent job slots [1]
  --sessions <n>             serve this many coordinator sessions then
                             exit; 0 serves forever      [0]

serve options:
  --commons <dir>            commons directory with the Pareto front to
                             serve (required); a checkpoints/ subdir
                             supplies trained weights when present
  --listen <addr>            bind address (required), e.g. 0.0.0.0:7463
  --batch <n>                max requests per micro-batch     [8]
  --queue <n>                admission queue capacity; requests beyond
                             it are rejected with exit-class 11 [64]
  --batch-workers <n>        batch worker threads             [1]
  --ws-limit-mb <n>          workspace pool cap per worker, MiB [8]
  --sessions <n>             serve this many connections then exit;
                             0 serves forever                 [0]
  --io <threads|reactor>     connection handling: one thread per
                             connection, or one epoll event loop
                             multiplexing all of them
                             [reactor on Linux, threads elsewhere]
  --idle-ms <n>              drop a connection with no read/write
                             progress for this long       [30000]
  --metrics-out <file>       write the metrics snapshot here as
                             connections close (debounced) and at exit
  --metrics-interval-ms <n>  persist the snapshot at most once per
                             this interval                 [2000]

serve-bench options:
  --addr <addr>              target an already-running serve endpoint;
                             without it, --commons sweeps batch sizes
                             1,2,4,8 against in-process servers
  --commons <dir>            commons to serve in-process and/or to
                             verify responses against bitwise
  --clients <n>              concurrent client connections    [4]
  --requests <n>             requests per client              [50]
  --height <n>               synthetic image height           [8]
  --width <n>                synthetic image width            [8]
  --verify-samples <n>       with --addr and --commons: classify this
                             many seeded images per served model and
                             require bitwise identity with direct
                             evaluation                       [8]
  --seed <u64>               synthetic pixel seed             [2023]
  --out <file>               bench report path     [BENCH_serve.json]
  --scaling                  with --commons (no --addr): append a
                             connection-scaling sweep to the report —
                             client counts 4,16,64,128,256 against
                             each available --io mode

viz options:
  --commons <dir>            commons directory (required)
  --model <id>               model id (default: best by fitness)
  --dot                      emit Graphviz DOT instead of ASCII

stats options:
  --run <dir>                run directory to summarize (required):
                             reads metrics.json, retries.csv, the
                             resume manifest, and the commons if
                             present — no search is executed";

/// Errors produced by [`Parsed::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand supplied.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A `--flag` without its value.
    MissingValue(String),
    /// A flag the grammar does not know.
    UnknownFlag(String),
    /// A value that failed to parse as its expected type.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing command"),
            ArgError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} requires a value"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "flag {flag}: {value:?} is not a valid {expected}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// The recognized subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `a4nn search`
    Search,
    /// `a4nn baseline`
    Baseline,
    /// `a4nn xpsi`
    Xpsi,
    /// `a4nn dataset`
    Dataset,
    /// `a4nn analyze`
    Analyze,
    /// `a4nn viz`
    Viz,
    /// `a4nn export`
    Export,
    /// `a4nn stats`
    Stats,
    /// `a4nn worker`
    Worker,
    /// `a4nn serve`
    Serve,
    /// `a4nn serve-bench`
    ServeBench,
    /// `a4nn help`
    Help,
}

/// Flags that take a value.
const VALUE_FLAGS: &[&str] = &[
    "--beam",
    "--seed",
    "--out",
    "--gpus",
    "--population",
    "--offspring",
    "--generations",
    "--epochs",
    "--orchestration",
    "--objectives",
    "--workers",
    "--heartbeat-ms",
    "--max-retries",
    "--resume",
    "--run",
    "--images",
    "--conv-impl",
    "--dense-impl",
    "--eval-chunk",
    "--function",
    "--e-pred",
    "--n-converge",
    "--r",
    "--commons",
    "--model",
    "--listen",
    "--sessions",
    "--batch",
    "--queue",
    "--batch-workers",
    "--ws-limit-mb",
    "--io",
    "--idle-ms",
    "--metrics-out",
    "--metrics-interval-ms",
    "--addr",
    "--clients",
    "--requests",
    "--height",
    "--width",
    "--verify-samples",
];

/// Boolean flags.
const BOOL_FLAGS: &[&str] = &["--real", "--dot", "--scaling"];

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The subcommand.
    pub command: Command,
    values: BTreeMap<String, String>,
    bools: Vec<String>,
}

impl Parsed {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
        let mut it = argv.iter();
        let command = match it.next().map(String::as_str) {
            None => return Err(ArgError::MissingCommand),
            Some("search") => Command::Search,
            Some("baseline") => Command::Baseline,
            Some("xpsi") => Command::Xpsi,
            Some("dataset") => Command::Dataset,
            Some("analyze") => Command::Analyze,
            Some("viz") => Command::Viz,
            Some("export") => Command::Export,
            Some("stats") => Command::Stats,
            Some("worker") => Command::Worker,
            Some("serve") => Command::Serve,
            Some("serve-bench") => Command::ServeBench,
            Some("help" | "--help" | "-h") => Command::Help,
            Some(other) => return Err(ArgError::UnknownCommand(other.to_string())),
        };
        let mut values = BTreeMap::new();
        let mut bools = Vec::new();
        while let Some(flag) = it.next() {
            if BOOL_FLAGS.contains(&flag.as_str()) {
                bools.push(flag.clone());
            } else if VALUE_FLAGS.contains(&flag.as_str()) {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(flag.clone()))?;
                values.insert(flag.clone(), value.clone());
            } else {
                return Err(ArgError::UnknownFlag(flag.clone()));
            }
        }
        Ok(Parsed {
            command,
            values,
            bools,
        })
    }

    /// Raw string value of a flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn flag(&self, flag: &str) -> bool {
        self.bools.iter().any(|f| f == flag)
    }

    /// Typed accessor with default.
    pub fn get_parse<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_search_with_options() {
        let p = Parsed::parse(&argv("search --beam low --gpus 4 --r 0.5 --real")).unwrap();
        assert_eq!(p.command, Command::Search);
        assert_eq!(p.get("--beam"), Some("low"));
        assert_eq!(p.get_parse("--gpus", 1usize, "usize").unwrap(), 4);
        assert_eq!(p.get_parse("--r", 0.1f64, "f64").unwrap(), 0.5);
        assert!(p.flag("--real"));
        assert!(!p.flag("--dot"));
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let p = Parsed::parse(&argv("baseline")).unwrap();
        assert_eq!(p.get_parse("--gpus", 1usize, "usize").unwrap(), 1);
        assert_eq!(p.get("--beam"), None);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(Parsed::parse(&[]).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert_eq!(
            Parsed::parse(&argv("launch")).unwrap_err(),
            ArgError::UnknownCommand("launch".into())
        );
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert_eq!(
            Parsed::parse(&argv("search --bogus 1")).unwrap_err(),
            ArgError::UnknownFlag("--bogus".into())
        );
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            Parsed::parse(&argv("search --beam")).unwrap_err(),
            ArgError::MissingValue("--beam".into())
        );
    }

    #[test]
    fn bad_value_is_an_error() {
        let p = Parsed::parse(&argv("search --gpus four")).unwrap();
        assert!(matches!(
            p.get_parse("--gpus", 1usize, "usize"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn help_aliases() {
        for alias in ["help", "--help", "-h"] {
            assert_eq!(Parsed::parse(&argv(alias)).unwrap().command, Command::Help);
        }
    }
}
