//! §6 question: "Is there a significant correlation between high FLOPS
//! and high validation accuracy?" — computed over every architecture of
//! each run via the analyzer.

use a4nn_bench::{header, run_a4nn, run_standalone};
use a4nn_core::prelude::*;
use a4nn_lineage::Analyzer;

fn main() {
    header(
        "Ablation",
        "Pearson correlation between FLOPs and validation accuracy (§6 question)",
    );
    println!("{:>7} | {:>12} | {:>12}", "beam", "A4NN", "standalone");
    for beam in BeamIntensity::ALL {
        let a4nn = run_a4nn(beam, 1);
        let standalone = run_standalone(beam);
        let c_a = Analyzer::new(&a4nn.commons)
            .flops_fitness_correlation()
            .unwrap_or(f64::NAN);
        let c_s = Analyzer::new(&standalone.commons)
            .flops_fitness_correlation()
            .unwrap_or(f64::NAN);
        println!("{:>7} | {:>12.3} | {:>12.3}", beam.label(), c_a, c_s);
    }
    println!();
    println!("interpretation: a weak positive correlation means capacity helps a");
    println!("little, but the Pareto front shows accuracy is attainable at low FLOPs —");
    println!("the premise of NSGA-Net's multi-objective search.");
}
