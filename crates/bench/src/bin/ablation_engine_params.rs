//! Engine-parameter sensitivity: how the convergence window `N` and the
//! tolerance `r` (Table 1: N = 3, r = 0.5) trade epoch savings against
//! prediction accuracy.

use a4nn_bench::{header, HARNESS_SEED};
use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::Analyzer;

fn main() {
    header(
        "Ablation",
        "prediction-engine parameter sweep (N, r) on medium-beam data",
    );
    let beam = BeamIntensity::Medium;
    println!(
        "{:>3} | {:>5} | {:>10} | {:>10} | {:>10} | {:>12}",
        "N", "r", "epochs", "saved %", "conv %", "pred MAE"
    );
    for n in [2usize, 3, 5] {
        for r in [0.1f64, 0.5, 1.0] {
            let mut config = WorkflowConfig::a4nn(beam, 1, HARNESS_SEED);
            if let Some(engine) = config.engine.as_mut() {
                engine.n_converge = n;
                engine.r = r;
            }
            let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
            let out = A4nnWorkflow::new(config).run(&factory);
            let a = Analyzer::new(&out.commons);
            let marker = if n == 3 && (r - 0.5).abs() < 1e-9 {
                "  <- paper (Table 1)"
            } else {
                ""
            };
            println!(
                "{n:>3} | {r:>5.1} | {:>10} | {:>9.1}% | {:>9.0}% | {:>12}{marker}",
                out.total_epochs(),
                out.epochs_saved_pct(),
                100.0 * a.early_termination_rate(),
                a.mean_prediction_error()
                    .map(|e| format!("{e:.2}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!();
    println!("expected shape: looser tolerance / shorter window saves more epochs at");
    println!("the cost of larger prediction error; the paper's (3, 0.5) balances both.");
}
