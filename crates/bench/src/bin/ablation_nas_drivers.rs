//! Composability ablation: the same prediction engine, trainers,
//! scheduler, and lineage tracker driven by three different NAS policies —
//! NSGA-Net (the paper's choice), regularized/aging evolution, and pure
//! random search. This is §6's "generalized to other NAS implementations"
//! made measurable.

use a4nn_bench::{header, hours, HARNESS_SEED};
use a4nn_core::prelude::*;
use a4nn_core::{AgingEvolutionWorkflow, RandomSearchWorkflow, SurrogateFactory, SurrogateParams};
use a4nn_lineage::Analyzer;

fn report(name: &str, out: &a4nn_core::RunOutput) {
    let a = Analyzer::new(&out.commons);
    let pareto = a.pareto_front();
    let best = a.best_by_fitness().unwrap();
    // Cheapest model within 1 point of the best accuracy: the efficiency
    // axis the multi-objective search optimizes explicitly.
    let cheapest_near_best = out
        .commons
        .records
        .iter()
        .filter(|r| r.final_fitness >= best.final_fitness - 1.0)
        .map(|r| r.flops)
        .fold(f64::INFINITY, f64::min);
    println!(
        "  {name:<18} best acc {:>6.2}% | cheapest@-1pt {:>7.1} MFLOPs | pareto {:>2} | epochs {:>5} ({:>4.1}% saved) | {:>6.2} h",
        best.final_fitness,
        cheapest_near_best,
        pareto.len(),
        out.total_epochs(),
        out.epochs_saved_pct(),
        hours(out.wall_time_s()),
    );
}

fn main() {
    header(
        "Ablation",
        "one engine, three NAS drivers (composability, §6)",
    );
    for beam in BeamIntensity::ALL {
        println!("\nbeam {beam}:");
        let config = WorkflowConfig::a4nn(beam, 1, HARNESS_SEED);
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
        report("NSGA-Net", &A4nnWorkflow::new(config.clone()).run(&factory));
        report(
            "aging evolution",
            &AgingEvolutionWorkflow::new(config.clone(), 5).run(&factory),
        );
        report(
            "random search",
            &RandomSearchWorkflow::new(config).run(&factory),
        );
    }
    println!();
    println!("expected shape: every driver enjoys the engine's epoch savings (the");
    println!("engine is policy-agnostic); NSGA-Net finds the cheapest models near the");
    println!("best accuracy because it is the only driver optimizing FLOPs.");
}
