use a4nn_core::prelude::*;
use a4nn_lineage::Analyzer;

fn main() {
    for beam in BeamIntensity::ALL {
        let config = WorkflowConfig::a4nn(beam, 1, 2023);
        let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
        let out = A4nnWorkflow::new(config).run(&factory);
        let a = Analyzer::new(&out.commons);
        println!(
            "{beam:>6}: epochs={} saved={:.1}% converged={:.0}% mean_et={:.1} wall={:.1}h mean_fit={:.1} pred_err={:.2}",
            out.total_epochs(),
            out.epochs_saved_pct(),
            100.0 * a.early_termination_rate(),
            a.mean_termination_epoch().unwrap_or(f64::NAN),
            out.wall_time_s() / 3600.0,
            a.mean_fitness(),
            a.mean_prediction_error().unwrap_or(f64::NAN),
        );
    }
    println!("targets: low saved~13-16% conv~60% et~18 | med saved~34% conv~70% et~12.5 | high saved~30% conv~55% et~10");
}
