//! Figure 9: simulated wall times for A4NN and standalone NSGA-Net per
//! beam intensity, on one and four GPUs, plus the multi-GPU speedups
//! discussed in §4.3.2 (paper: 3.8× / 3.9× / 3.4×).

use a4nn_bench::{header, hours, run_a4nn, run_standalone};
use a4nn_core::prelude::*;

fn main() {
    header(
        "Figure 9",
        "wall times (simulated hours) for A4NN vs standalone, 1 and 4 GPUs",
    );
    println!(
        "{:>7} | {:>12} | {:>12} | {:>12} | {:>10} | {:>8}",
        "beam", "standalone", "A4NN 1 GPU", "A4NN 4 GPU", "saved (h)", "speedup"
    );
    let paper_saved = [3.5, 15.8, 16.3];
    let paper_speedup = [3.8, 3.9, 3.4];
    for (i, beam) in BeamIntensity::ALL.into_iter().enumerate() {
        let base = hours(run_standalone(beam).wall_time_s());
        let one = hours(run_a4nn(beam, 1).wall_time_s());
        let four = hours(run_a4nn(beam, 4).wall_time_s());
        println!(
            "{:>7} | {:>11.2}h | {:>11.2}h | {:>11.2}h | {:>9.2}h | {:>7.2}x   (paper: saved {}h, speedup {}x)",
            beam.label(),
            base,
            one,
            four,
            base - one,
            one / four,
            paper_saved[i],
            paper_speedup[i],
        );
    }
    println!();
    println!("paper: wall-time savings of 3.5 / 15.8 / 16.3 hours vs standalone, and");
    println!("       near-linear 3.8x / 3.9x / 3.4x speedups from 1 to 4 GPUs.");
    println!("expected shape: low saves least; speedups near (but below) 4x.");
}
