//! Figures 3 and 10: structural visualization of a near-optimal NN found
//! by A4NN for low-beam-intensity images (the paper renders "NN Model 51"
//! through its analyzer; we render the best Pareto model of the low-beam
//! run in both ASCII and Graphviz DOT form).

use a4nn_bench::{header, run_a4nn};
use a4nn_core::prelude::*;
use a4nn_genome::viz::{render_ascii, render_dot};
use a4nn_lineage::Analyzer;

fn main() {
    header(
        "Figures 3 & 10",
        "architecture visualization of a near-optimal low-beam model",
    );
    let out = run_a4nn(BeamIntensity::Low, 1);
    let analyzer = Analyzer::new(&out.commons);
    let mut front = analyzer.pareto_front();
    front.sort_by(|a, b| a4nn_lineage::fitness_cmp(b.final_fitness, a.final_fitness));
    let model = front.first().expect("run produced a Pareto front");
    let space = out.config.search_space();
    let arch = space.decode(&model.genome);

    println!(
        "model {} | generation {} | fitness {:.2}% | {:.1} MFLOPs",
        model.model_id, model.generation, model.final_fitness, model.flops
    );
    println!("genome: {}", model.genome.to_compact_string());
    println!("summary: {}\n", arch.summary());
    println!("--- ASCII rendering ---");
    println!("{}", render_ascii(&arch));
    println!("--- Graphviz DOT (pipe into `dot -Tpng`) ---");
    println!(
        "{}",
        render_dot(&arch, &format!("a4nn-model-{}", model.model_id))
    );
}
