//! §2.5 ablation: FIFO versus LPT scheduling of the generation batches.
//!
//! The paper notes that Ray's FIFO dynamic scheduling leaves GPU downtime
//! at the end of each generation when the generation size is not divisible
//! by the GPU count. This harness replays the per-model durations of a
//! medium-beam A4NN run under both orderings and quantifies the idle tail.

use a4nn_bench::{header, hours, run_a4nn};
use a4nn_core::prelude::*;
use a4nn_sched::{schedule_generations, Task, TaskOrdering};

fn main() {
    header(
        "Ablation",
        "FIFO vs LPT ordering on the simulated GPU cluster (idle-tail study)",
    );
    let out = run_a4nn(BeamIntensity::Medium, 1);
    // Rebuild the per-generation task lists from the commons.
    let n_generations = out.config.nas.generations;
    let mut generations: Vec<Vec<Task>> = vec![Vec::new(); n_generations];
    for r in &out.commons.records {
        generations[r.generation].push(Task {
            id: r.model_id,
            duration: r.wall_time_s,
        });
    }
    println!(
        "{:>5} | {:>12} | {:>12} | {:>14} | {:>14} | {:>12}",
        "GPUs", "FIFO (h)", "LPT (h)", "FIFO idle (h)", "LPT idle (h)", "FIFO util"
    );
    for gpus in [1usize, 2, 4, 8] {
        let fifo = schedule_generations(gpus, &generations, TaskOrdering::Fifo);
        let lpt = schedule_generations(gpus, &generations, TaskOrdering::Lpt);
        println!(
            "{gpus:>5} | {:>11.2}h | {:>11.2}h | {:>13.2}h | {:>13.2}h | {:>11.1}%",
            hours(fifo.total_wall_time()),
            hours(lpt.total_wall_time()),
            hours(fifo.total_idle_tail()),
            hours(lpt.total_idle_tail()),
            100.0 * fifo.utilization(),
        );
    }
    println!();
    println!("expected shape: idle tails grow with GPU count (10 models per generation");
    println!("do not divide evenly); LPT typically trims the tail FIFO leaves (within");
    println!("Graham's 4/3 bound of optimal in the worst case).");
}
