//! §6 question: "Are there structural similarities between successful
//! architectures produced by NAS?" — structural-feature correlations and
//! a top-vs-rest contrast over each beam's 100 architectures.

use a4nn_bench::{header, run_a4nn};
use a4nn_core::prelude::*;
use a4nn_lineage::{feature_fitness_correlations, success_contrast};

fn main() {
    header(
        "Ablation",
        "structural similarities of successful architectures (§6 question)",
    );
    for beam in BeamIntensity::ALL {
        let out = run_a4nn(beam, 1);
        println!("\nbeam {beam}:");
        println!("  feature-fitness Pearson correlations:");
        for (name, corr) in feature_fitness_correlations(&out.commons) {
            println!("    {name:<14} {corr:+.3}");
        }
        if let Some((top, rest)) = success_contrast(&out.commons, 0.2) {
            println!(
                "  top 20% ({} models, mean fitness {:.1}%) vs rest ({} models, {:.1}%):",
                top.count, top.mean_fitness, rest.count, rest.mean_fitness
            );
            for ((name, t), (_, r)) in top.means.iter().zip(&rest.means) {
                println!("    {name:<14} top {t:>6.2}  rest {r:>6.2}");
            }
        }
    }
    println!();
    println!("interpretation: denser genomes (more active nodes/edges) correlate");
    println!("positively but weakly with fitness — structure helps, yet success is");
    println!("attainable across the space, which is why the multi-objective search");
    println!("finds accurate low-FLOPs models (Figure 6).");
}
