//! Figure 6: accuracy-vs-FLOPs Pareto fronts of the 100 architectures
//! designed per test, A4NN versus standalone NSGA-Net, for the three beam
//! intensities (single GPU, as in the paper).

use a4nn_bench::{header, run_a4nn, run_standalone};
use a4nn_core::prelude::*;
use a4nn_lineage::Analyzer;

fn print_front(label: &str, out: &a4nn_core::RunOutput) {
    let analyzer = Analyzer::new(&out.commons);
    let mut front = analyzer.pareto_front();
    front.sort_by(|a, b| a.flops.partial_cmp(&b.flops).unwrap());
    println!("  {label}: {} Pareto-optimal models", front.len());
    println!(
        "    {:>8} | {:>12} | {:>12}",
        "model", "MFLOPs", "val acc (%)"
    );
    for r in &front {
        println!(
            "    {:>8} | {:>12.1} | {:>12.2}",
            r.model_id, r.flops, r.final_fitness
        );
    }
    let best = front
        .iter()
        .map(|r| r.final_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("    best accuracy on the front: {best:.2}%");
}

fn main() {
    header(
        "Figure 6",
        "Pareto fronts (validation accuracy vs FLOPs), A4NN vs standalone NSGA-Net",
    );
    for beam in BeamIntensity::ALL {
        println!("\nbeam intensity: {beam}");
        let a4nn = run_a4nn(beam, 1);
        let standalone = run_standalone(beam);
        print_front("A4NN      ", &a4nn);
        print_front("standalone", &standalone);
    }
    println!();
    println!("paper: A4NN reaches 99.8% below 650 FLOPs on low beam (standalone 98.1%),");
    println!("       ~100% on medium (standalone <99%), both ~99.9% @ ~450 FLOPs on high;");
    println!("       expected shape: A4NN fronts match or dominate standalone fronts.");
}
