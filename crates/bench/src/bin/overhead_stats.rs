//! §4.3.1: prediction-engine overhead.
//!
//! The paper measures an average of 52.16 s added per 100-model test,
//! 28.07 ms per engine interaction, and 1.12 ms variance of the per-epoch
//! overhead. Our engine is measured the same way: real wall time spent in
//! `observe + step` across a full 100-model A4NN run. (A Rust LM fit over
//! ≤25 points is far cheaper than the paper's Python engine, so expect
//! the same orders of "negligible" rather than the same milliseconds.)

use a4nn_bench::{header, run_a4nn};
use a4nn_core::prelude::*;

fn main() {
    header(
        "§4.3.1",
        "prediction-engine overhead per test and per interaction",
    );
    println!(
        "{:>7} | {:>14} | {:>18} | {:>14}",
        "beam", "interactions", "total overhead", "per interaction"
    );
    for beam in BeamIntensity::ALL {
        let out = run_a4nn(beam, 1);
        println!(
            "{:>7} | {:>14} | {:>16.3}s | {:>12.3}ms",
            beam.label(),
            out.engine_interactions,
            out.engine_seconds,
            1e3 * out.engine_seconds_per_interaction(),
        );
    }
    println!();
    println!("paper: 52.16s per 100-model test, 28.07ms per interaction,");
    println!("       1.12ms variance — i.e. negligible next to ~72s epochs.");
    println!("expected shape: overhead orders of magnitude below the training time.");
}
