//! Figure 2: the fitness-prediction trace for one network.
//!
//! The paper's example fits `F(x) = a − b^(c−x)` to a partially trained
//! NN's validation accuracy; the prediction of the fitness at epoch 25
//! converges at epoch 12 and training is terminated. This harness runs
//! the engine over a comparable medium-beam surrogate curve and prints the
//! per-epoch (measured fitness, predicted fitness@25) trace.

use a4nn_bench::{header, HARNESS_SEED};
use a4nn_core::prelude::*;
use a4nn_core::trainer::TrainerFactory;
use a4nn_core::{SurrogateFactory, SurrogateParams};

fn main() {
    header(
        "Figure 2",
        "prediction of fitness at epoch 25 from a partial learning curve",
    );
    let beam = BeamIntensity::Medium;
    let config = WorkflowConfig::a4nn(beam, 1, HARNESS_SEED);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    let space = config.search_space();

    // Scan model ids until one converges mid-training, like the paper's
    // example network.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(HARNESS_SEED);
    let genome = space.random_genome(&mut rng);
    let mut chosen = None;
    for model_id in 0..200u64 {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let mut trainer = factory.make(&genome, model_id, HARNESS_SEED);
        let mut trace = Vec::new();
        let mut term = None;
        for e in 1..=25u32 {
            let r = trainer.train_epoch(e);
            engine.observe(e, r.val_acc);
            let converged = engine.step();
            trace.push((e, r.val_acc, engine.predictions().last().copied().flatten()));
            if let Some(p) = converged {
                term = Some((e, p));
                break;
            }
        }
        if let Some((et, _)) = term {
            if (9..=15).contains(&et) {
                chosen = Some((model_id, trace, term.unwrap()));
                break;
            }
        }
    }
    let (model_id, trace, (et, fitness)) =
        chosen.expect("a mid-training-converging model exists in 200 samples");

    println!("model {model_id}: engine F(x) = a - b^(c-x), C_min=3, e_pred=25, N=3, r=0.5");
    println!(
        "{:>5} | {:>16} | {:>22}",
        "epoch", "measured fitness", "predicted fitness @25"
    );
    for (e, measured, prediction) in &trace {
        match prediction {
            Some(p) => println!("{e:>5} | {measured:>16.2} | {p:>22.2}"),
            None => println!("{e:>5} | {measured:>16.2} | {:>22}", "-"),
        }
    }
    println!();
    println!("training terminated at epoch {et} with predicted final fitness {fitness:.2}");
    println!("paper: example converges at epoch 12 predicting fitness at epoch 25");
}
