//! Table 3: A4NN versus the XPSI framework (wall time and accuracy per
//! beam intensity, single GPU).
//!
//! XPSI trains for real on the synthetic diffraction dataset (autoencoder
//! plus kNN, `a4nn-xpsi`); A4NN's accuracy comes from training its best
//! searched architecture for real on the same dataset, and its search wall
//! time from the simulated cluster. Absolute hours are not comparable
//! across substrates — the shape under test is that A4NN matches or beats
//! XPSI's accuracy (especially on noisy low-beam data) while costing more
//! wall time on a single GPU, and that 4 GPUs close most of that gap.

use a4nn_bench::{header, hours, run_a4nn, HARNESS_SEED};
use a4nn_core::prelude::*;
use a4nn_core::trainer::TrainerFactory;
use a4nn_core::{netspec_from_arch, RealTrainerFactory, TrainingHyperparams};
use a4nn_lineage::Analyzer;
use a4nn_xfel::generate_split;
use std::sync::Arc;

fn main() {
    header(
        "Table 3",
        "wall time and accuracy: A4NN vs XPSI per beam intensity",
    );
    let xfel = XfelConfig::default();
    let n_per_class = 300;
    println!(
        "{:>7} | {:>14} | {:>14} | {:>13} | {:>12} | {:>12}",
        "beam", "A4NN 1GPU (h)", "A4NN 4GPU (h)", "XPSI time (s)", "A4NN acc", "XPSI acc"
    );
    let paper = [
        ("low", 46.55, 97.8, 92.0),
        ("medium", 36.09, 99.9, 99.0),
        ("high", 32.3, 100.0, 100.0),
    ];
    for (beam, (_, paper_h, paper_a4nn, paper_xpsi)) in BeamIntensity::ALL.into_iter().zip(paper) {
        let (train, test) = generate_split(&xfel, beam, n_per_class, HARNESS_SEED);

        // XPSI: real training + classification.
        let xpsi = a4nn_xpsi::XpsiFramework::new(a4nn_xpsi::XpsiConfig {
            epochs: 12,
            seed: HARNESS_SEED,
            ..Default::default()
        })
        .run(&train, &test);

        // A4NN: search on the surrogate cluster, then train the best
        // architecture for real on the same data as XPSI.
        let search_1 = run_a4nn(beam, 1);
        let search_4 = run_a4nn(beam, 4);
        let analyzer = Analyzer::new(&search_1.commons);
        let mut front = analyzer.pareto_front();
        front.sort_by(|a, b| a4nn_lineage::fitness_cmp(b.final_fitness, a.final_fitness));
        let factory = RealTrainerFactory::new(
            WorkflowConfig::a4nn(beam, 1, HARNESS_SEED).search_space(),
            Arc::new(train),
            Arc::new(test),
            TrainingHyperparams::default(),
        );
        let _ = netspec_from_arch; // keep the public bridge path referenced
                                   // Validate the top Pareto candidates for real, as a scientist
                                   // deploying the search's output would, and keep the best.
        let mut a4nn_acc = 0.0f64;
        for candidate in front.iter().take(2) {
            let mut trainer = factory.make(&candidate.genome, candidate.model_id, HARNESS_SEED);
            let mut best_epoch_acc = 0.0f64;
            for e in 1..=12 {
                best_epoch_acc = best_epoch_acc.max(trainer.train_epoch(e).val_acc);
            }
            a4nn_acc = a4nn_acc.max(best_epoch_acc);
        }

        println!(
            "{:>7} | {:>13.2}h | {:>13.2}h | {:>12.1}s | {:>11.1}% | {:>11.1}%   (paper: {paper_h}h, A4NN {paper_a4nn}%, XPSI {paper_xpsi}%)",
            beam.label(),
            hours(search_1.wall_time_s()),
            hours(search_4.wall_time_s()),
            xpsi.wall_seconds,
            a4nn_acc,
            xpsi.accuracy,
        );
    }
    println!();
    println!("paper: XPSI trains in 15.45h; A4NN needs 46.55/36.09/32.3h on one GPU but");
    println!("       reaches equal or higher accuracy (97.8/99.9/100 vs 92/99/100), and");
    println!("       4 GPUs cut A4NN to 12.06/9.17/9.46h.");
    println!("expected shape: A4NN accuracy >= XPSI accuracy per beam (largest gap on");
    println!("       noisy low beam); A4NN search costs more wall time than XPSI training.");
}
