//! Figure 8: distribution of the termination epoch e_t and the percentage
//! of models whose training was terminated early, per beam intensity.

use a4nn_bench::{header, run_a4nn};
use a4nn_core::prelude::*;
use a4nn_lineage::{shape_census, Analyzer};

fn main() {
    header(
        "Figure 8",
        "distribution of termination epoch e_t and % of converged models (A4NN, 1 GPU)",
    );
    let paper = [
        ("low", ">60% converged, mean e_t > 18"),
        ("medium", ">70% converged, mean e_t < 12.5"),
        ("high", "55% converged, mean e_t ~ 10, inverted-bell shape"),
    ];
    for (beam, (_, paper_note)) in BeamIntensity::ALL.into_iter().zip(paper) {
        let out = run_a4nn(beam, 1);
        let analyzer = Analyzer::new(&out.commons);
        let hist = analyzer.termination_histogram(25);
        let max = hist.iter().copied().max().unwrap_or(1).max(1);
        println!(
            "\nbeam {beam}: {:.0}% of models terminated early, mean e_t = {}",
            100.0 * analyzer.early_termination_rate(),
            analyzer
                .mean_termination_epoch()
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
        println!("  (paper: {paper_note})");
        for (i, &count) in hist.iter().enumerate() {
            let bar = "#".repeat(count * 40 / max);
            println!("  e_t={:>2} | {:>3} | {bar}", i + 1, count);
        }
        println!("  learning-curve shapes (count, early-terminated):");
        for (shape, n, early) in shape_census(&out.commons) {
            println!(
                "    {:<13} {n:>3} models, {early:>3} terminated early",
                shape.label()
            );
        }
    }
}
