//! §6 ablation: "Which parametric functions are best able to predict
//! neural architecture fitness?"
//!
//! Runs the full A4NN search per beam with each built-in curve family as
//! the engine's `F` and reports epochs saved, convergence rate, and the
//! mean absolute error between the converged prediction and the measured
//! fitness at termination.

use a4nn_bench::{header, HARNESS_SEED};
use a4nn_core::prelude::*;
use a4nn_core::{SurrogateFactory, SurrogateParams};
use a4nn_lineage::Analyzer;
use a4nn_penguin::ParametricCurve;

fn main() {
    header(
        "Ablation",
        "parametric-function comparison for the prediction engine (§6 question)",
    );
    for beam in BeamIntensity::ALL {
        println!("\nbeam {beam}:");
        println!(
            "  {:>12} | {:>10} | {:>10} | {:>10} | {:>12}",
            "function", "epochs", "saved %", "conv %", "pred MAE"
        );
        for family in CurveFamily::ALL {
            let mut config = WorkflowConfig::a4nn(beam, 1, HARNESS_SEED);
            if let Some(engine) = config.engine.as_mut() {
                engine.family = family;
            }
            let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
            let out = A4nnWorkflow::new(config).run(&factory);
            let a = Analyzer::new(&out.commons);
            println!(
                "  {:>12} | {:>10} | {:>9.1}% | {:>9.0}% | {:>12}",
                family.name(),
                out.total_epochs(),
                out.epochs_saved_pct(),
                100.0 * a.early_termination_rate(),
                a.mean_prediction_error()
                    .map(|e| format!("{e:.2}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!();
    println!("the paper uses exp-base (F(x) = a - b^(c-x)) throughout; this ablation");
    println!("answers its conclusions' open question by comparing savings vs accuracy");
    println!("trade-offs across families (lower MAE + higher saved% is better).");
}
