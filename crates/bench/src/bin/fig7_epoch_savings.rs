//! Figure 7: training epochs required to evaluate 100 architectures and
//! the percentage saved by A4NN over the 2,500-epoch standalone baseline,
//! on one and four GPUs.

use a4nn_bench::{header, run_a4nn, run_standalone, summarize};
use a4nn_core::prelude::*;

fn main() {
    header(
        "Figure 7",
        "epochs required for 100 architectures and % saved over standalone NSGA-Net",
    );
    println!(
        "{:>7} | {:>16} | {:>14} | {:>14} | {:>9} | {:>9}",
        "beam", "standalone", "A4NN (1 GPU)", "A4NN (4 GPU)", "saved@1", "saved@4"
    );
    let paper = [("low", 13.3), ("medium", 34.1), ("high", 30.5)];
    for (beam, (_, paper_saved)) in BeamIntensity::ALL.into_iter().zip(paper) {
        let base = summarize(&run_standalone(beam));
        let one = summarize(&run_a4nn(beam, 1));
        let four = summarize(&run_a4nn(beam, 4));
        println!(
            "{:>7} | {:>16} | {:>14} | {:>14} | {:>8.1}% | {:>8.1}%   (paper saved@1: {paper_saved}%)",
            beam.label(),
            base.epochs,
            one.epochs,
            four.epochs,
            one.saved_pct,
            four.saved_pct,
        );
    }
    println!();
    println!("paper: standalone always trains 2,500 epochs; A4NN saves 13.3% / 34.1% /");
    println!("       30.5% on low/medium/high — expected shape: medium and high save");
    println!("       substantially more than low, all > 0.");
}
