//! # a4nn-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§4), plus
//! criterion microbenches for the hot kernels. Every binary prints the
//! paper's reported values next to the measured ones so the comparison in
//! `EXPERIMENTS.md` can be regenerated with a single command each:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_prediction_trace` | Figure 2 — prediction convergence trace |
//! | `fig6_pareto` | Figure 6 — accuracy-vs-FLOPs Pareto fronts |
//! | `fig7_epoch_savings` | Figure 7 — epochs required / % saved |
//! | `fig8_termination_dist` | Figure 8 — e_t distribution & % converged |
//! | `fig9_walltime` | Figure 9 — wall times and multi-GPU speedups |
//! | `table3_xpsi` | Table 3 — A4NN vs XPSI |
//! | `fig10_architecture` | Figures 3/10 — architecture visualization |
//! | `overhead_stats` | §4.3.1 — engine overhead statistics |
//! | `ablation_functions` | §6 — parametric-function comparison |
//! | `ablation_engine_params` | §6 — N/r sensitivity sweep |
//! | `ablation_flops_accuracy` | §6 — FLOPs↔accuracy correlation |
//! | `ablation_scheduler` | §2.5 — FIFO vs LPT idle-tail ablation |

#![warn(clippy::redundant_clone)]
use a4nn_core::prelude::*;
use a4nn_lineage::Analyzer;

/// The master seed every harness derives from, fixed so printed tables are
/// reproducible run to run.
pub const HARNESS_SEED: u64 = 0xA4A4_2023;

/// Run A4NN (engine on) for one beam at a GPU count.
pub fn run_a4nn(beam: BeamIntensity, gpus: usize) -> RunOutput {
    let config = WorkflowConfig::a4nn(beam, gpus, HARNESS_SEED);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    A4nnWorkflow::new(config).run(&factory)
}

/// Run the standalone NSGA-Net baseline (no engine, 1 GPU) for one beam.
pub fn run_standalone(beam: BeamIntensity) -> RunOutput {
    let config = WorkflowConfig::standalone(beam, HARNESS_SEED);
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(beam));
    A4nnWorkflow::new(config).run(&factory)
}

/// Seconds → hours.
pub fn hours(seconds: f64) -> f64 {
    seconds / 3600.0
}

/// Print a standard experiment header.
pub fn header(id: &str, what: &str) {
    println!("{}", "=".repeat(72));
    println!("{id}: {what}");
    println!("{}", "=".repeat(72));
}

/// Summary statistics of one run used by several harnesses.
pub struct RunSummary {
    /// Total epochs trained.
    pub epochs: u64,
    /// Percentage saved vs the 2,500-epoch budget.
    pub saved_pct: f64,
    /// Fraction of models terminated early (0–1).
    pub converged: f64,
    /// Mean termination epoch of converged models.
    pub mean_et: Option<f64>,
    /// Simulated wall hours.
    pub wall_h: f64,
    /// Best validation accuracy over the run.
    pub best_acc: f64,
}

/// Summarize a run.
pub fn summarize(out: &RunOutput) -> RunSummary {
    let a = Analyzer::new(&out.commons);
    RunSummary {
        epochs: out.total_epochs(),
        saved_pct: out.epochs_saved_pct(),
        converged: a.early_termination_rate(),
        mean_et: a.mean_termination_epoch(),
        wall_h: hours(out.wall_time_s()),
        best_acc: a.best_by_fitness().map(|r| r.final_fitness).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_are_reproducible() {
        let a = summarize(&run_a4nn(BeamIntensity::Medium, 1));
        let b = summarize(&run_a4nn(BeamIntensity::Medium, 1));
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.wall_h, b.wall_h);
    }

    #[test]
    fn standalone_uses_exactly_2500_epochs() {
        let s = summarize(&run_standalone(BeamIntensity::Low));
        assert_eq!(s.epochs, 2500);
        assert_eq!(s.saved_pct, 0.0);
        assert_eq!(s.converged, 0.0);
    }
}
