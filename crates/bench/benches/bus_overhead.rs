//! Criterion bench of the event bus's coupling overhead.
//!
//! §4.3.1 measures the cost of the in-situ coupling at ~28.07 ms per
//! engine interaction (Python, file-backed coupling). Here we measure
//! the same hand-off through a4nn-bus: raw publish→deliver latency per
//! backpressure policy, and the full epoch→verdict round trip through
//! the [`PredictionEngineService`] against the direct in-process call.
//! Subscriber lag/drop counters are printed after each benchmark so a
//! lossy or backed-up queue is visible in the report.

use a4nn_bus::{EpochCompleted, Event, Policy, PredictionEngineService, Topic};
use a4nn_penguin::{EngineConfig, PredictionEngine};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn fitness(e: u32) -> f64 {
    95.0 - 50.0 * 0.72f64.powi(e as i32)
}

/// Raw one-event publish→deliver latency per policy.
fn bench_publish_deliver(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_publish_deliver");
    for (label, policy) in [
        ("block", Policy::Block { capacity: 64 }),
        ("drop_oldest", Policy::DropOldest { capacity: 64 }),
        ("unbounded", Policy::Unbounded),
    ] {
        let topic: Topic<u64> = Topic::new("bench");
        let sub = topic.subscribe(policy);
        group.bench_function(label, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                topic.publish(black_box(i)).unwrap();
                black_box(sub.recv().unwrap())
            });
        });
        println!("  {label}: {:?}", sub.stats());
    }
    group.finish();
}

/// The per-epoch engine interaction: direct call vs the bus round trip
/// (publish `EpochCompleted`, block on the `EngineVerdict`). Compare
/// both against the paper's ~28.07 ms/interaction (§4.3.1).
fn bench_engine_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_interaction");

    group.bench_function("direct_call", |b| {
        let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
        let mut e = 0u32;
        b.iter(|| {
            e += 1;
            if e > 25 {
                engine.reset();
                e = 1;
            }
            engine.observe(e, black_box(fitness(e)));
            black_box(engine.step());
        });
    });

    let topic: Topic<Event> = Topic::new("bench");
    let service = PredictionEngineService::spawn(&topic, EngineConfig::paper_defaults());
    let verdicts = topic.subscribe_filtered(Policy::Block { capacity: 4 }, |event| {
        matches!(event, Event::EngineVerdict(_))
    });
    group.bench_function("bus_round_trip", |b| {
        let mut model = 0u64;
        let mut e = 0u32;
        b.iter(|| {
            e += 1;
            if e > 25 {
                model += 1;
                e = 1;
            }
            topic
                .publish(Event::EpochCompleted(EpochCompleted {
                    model_id: model,
                    generation: 0,
                    epoch: e,
                    train_acc: fitness(e) + 2.0,
                    val_acc: fitness(e),
                    duration_s: 0.0,
                }))
                .unwrap();
            black_box(verdicts.recv().unwrap())
        });
    });
    println!(
        "  bus_round_trip verdict subscriber: {:?} (paper reports ~28.07 ms/interaction)",
        verdicts.stats()
    );
    group.finish();
    drop(verdicts);
    topic.close();
    let totals = service.join().expect("engine service is healthy");
    println!(
        "  engine service totals: {} interactions, {:.6} s inside the engine",
        totals.interactions, totals.total_seconds
    );
}

criterion_group!(benches, bench_publish_deliver, bench_engine_interaction);
criterion_main!(benches);
