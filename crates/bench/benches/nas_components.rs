//! Criterion microbenches for the NSGA-II primitives at NAS-relevant
//! population sizes (tens to a few hundred individuals).

use a4nn_nsga::{crowding_distance, fast_non_dominated_sort, Objectives};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Objectives> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Objectives::new(vec![
                rng.gen_range(-100.0..0.0),  // −accuracy
                rng.gen_range(50.0..1500.0), // FLOPs
            ])
        })
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_non_dominated_sort");
    for &n in &[20usize, 100, 400] {
        let points = random_points(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| black_box(fast_non_dominated_sort(black_box(pts))));
        });
    }
    group.finish();
}

fn bench_crowding(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowding_distance");
    for &n in &[20usize, 100, 400] {
        let points = random_points(n, 43);
        let front: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(crowding_distance(black_box(&points), black_box(&front))));
        });
    }
    group.finish();
}

fn bench_genome_ops(c: &mut Criterion) {
    use a4nn_genome::SearchSpace;
    let space = SearchSpace::paper_defaults();
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let a = space.random_genome(&mut rng);
    let b2 = space.random_genome(&mut rng);
    c.bench_function("genome_vary", |b| {
        b.iter(|| black_box(space.vary(black_box(&a), black_box(&b2), &mut rng)));
    });
    c.bench_function("genome_decode", |b| {
        b.iter(|| black_box(space.decode(black_box(&a))));
    });
    let arch = space.decode(&a);
    c.bench_function("flops_estimate", |b| {
        b.iter(|| black_box(a4nn_genome::estimate_flops(black_box(&arch), (128, 128))));
    });
}

criterion_group!(benches, bench_sort, bench_crowding, bench_genome_ops);
criterion_main!(benches);
