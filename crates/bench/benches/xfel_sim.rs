//! Criterion microbenches of the XFEL simulator: per-image diffraction
//! computation and noisy rendering across beam intensities.

use a4nn_xfel::conformer::ProteinParams;
use a4nn_xfel::{
    diffraction_intensity, render_pattern, BeamIntensity, ConformerPair, Rotation, XfelConfig,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_diffraction(c: &mut Criterion) {
    let pair = ConformerPair::generate(&ProteinParams::default(), 1);
    let mut group = c.benchmark_group("diffraction_intensity");
    for &det in &[16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(det), &det, |b, &det| {
            b.iter(|| {
                black_box(diffraction_intensity(
                    black_box(&pair.conf_a),
                    &Rotation::identity(),
                    det,
                    0.1,
                ))
            });
        });
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let pair = ConformerPair::generate(&ProteinParams::default(), 2);
    let intensity = diffraction_intensity(&pair.conf_b, &Rotation::identity(), 32, 0.1);
    let mut group = c.benchmark_group("render_pattern");
    for beam in BeamIntensity::ALL {
        group.bench_function(beam.label(), |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| black_box(render_pattern(black_box(&intensity), beam, &mut rng)));
        });
    }
    group.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let cfg = XfelConfig::default();
    let mut group = c.benchmark_group("generate_dataset");
    group.sample_size(10);
    group.bench_function("64_images_16px", |b| {
        b.iter(|| {
            black_box(a4nn_xfel::generate_dataset(
                black_box(&cfg),
                BeamIntensity::Medium,
                32,
                7,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_diffraction, bench_render, bench_dataset);
criterion_main!(benches);
