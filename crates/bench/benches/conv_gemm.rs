//! Conv backend benchmark: naive loops vs im2col + blocked GEMM.
//!
//! Measures the training hot path at the paper's 128×128 XFEL shape
//! (§2.1: single-channel diffraction images) in three tiers — conv
//! forward, conv forward+backward, and a full `train_epoch` — for both
//! [`ConvImpl`] backends, plus the lowered backend's intra-op thread
//! scaling. Besides the criterion groups, a measurement pass writes
//! `BENCH_conv.json` at the workspace root with explicit timings and
//! speedups, and *asserts* backend equivalence (≤ 1e-4 relative) so a
//! numerical regression fails the bench job, not just slows it.

use a4nn_nn::layers::Conv2d;
use a4nn_nn::{gemm, train_epoch, ConvImpl, Dataset, NetSpec, Network, PhaseNetSpec, Sgd, Tensor4};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The paper's input geometry: batch of single-channel 128×128 images
/// through the stem's 3×3 convolution.
const N: usize = 4;
const C_IN: usize = 1;
const C_OUT: usize = 8;
const HW: usize = 128;
const KERNEL: usize = 3;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn paper_input() -> Tensor4 {
    let mut r = rng(11);
    let mut x = Tensor4::zeros(N, C_IN, HW, HW);
    for v in x.data_mut() {
        *v = r.gen_range(-1.0..1.0);
    }
    x
}

fn conv_with(backend: ConvImpl) -> Conv2d {
    let mut conv = Conv2d::new(C_IN, C_OUT, KERNEL, &mut rng(3));
    conv.set_impl(backend);
    conv
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward");
    group.sample_size(10);
    let x = paper_input();
    gemm::set_thread_budget(1);
    for (label, backend) in [("naive", ConvImpl::Naive), ("im2col", ConvImpl::Im2colGemm)] {
        let mut conv = conv_with(backend);
        group.bench_with_input(BenchmarkId::new(label, "1x128x128"), &x, |b, x| {
            b.iter(|| black_box(conv.forward(black_box(x))));
        });
    }
    gemm::set_thread_budget(4);
    let mut conv = conv_with(ConvImpl::Im2colGemm);
    group.bench_with_input(BenchmarkId::new("im2col_4t", "1x128x128"), &x, |b, x| {
        b.iter(|| black_box(conv.forward(black_box(x))));
    });
    gemm::set_thread_budget(0);
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backward");
    group.sample_size(10);
    let x = paper_input();
    gemm::set_thread_budget(1);
    for (label, backend) in [("naive", ConvImpl::Naive), ("im2col", ConvImpl::Im2colGemm)] {
        let mut conv = conv_with(backend);
        group.bench_with_input(BenchmarkId::new(label, "1x128x128"), &x, |b, x| {
            b.iter(|| {
                let out = conv.forward(black_box(x));
                black_box(conv.backward(&out));
            });
        });
    }
    gemm::set_thread_budget(0);
    group.finish();
}

/// A synthetic two-class dataset at a given detector size — the labels
/// are separable so an epoch does real gradient work.
fn synthetic_dataset(images: usize, hw: usize) -> Dataset {
    let mut data = Dataset::empty(1, hw, hw);
    let mut r = rng(17);
    let mut pixels = vec![0.0f32; hw * hw];
    for i in 0..images {
        let label = i % 2;
        let bias = if label == 0 { 0.3 } else { -0.3 };
        for p in pixels.iter_mut() {
            *p = r.gen_range(-1.0..1.0) + bias;
        }
        data.push(&pixels, label);
    }
    data
}

fn stem_net(seed: u64) -> Network {
    let spec = NetSpec {
        input_channels: 1,
        phases: vec![PhaseNetSpec::degenerate(C_OUT, KERNEL)],
        num_classes: 2,
    };
    Network::new(&spec, &mut rng(seed))
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    let data = synthetic_dataset(16, 32);
    gemm::set_thread_budget(1);
    for (label, backend) in [("naive", ConvImpl::Naive), ("im2col", ConvImpl::Im2colGemm)] {
        let mut net = stem_net(5);
        net.set_conv_impl(backend);
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let mut r = rng(23);
        group.bench_function(BenchmarkId::new(label, "16x1x32x32"), |b| {
            b.iter(|| black_box(train_epoch(&mut net, &mut opt, &data, 8, &mut r)));
        });
    }
    gemm::set_thread_budget(0);
    group.finish();
}

/// Seconds per iteration, best of `reps` (minimum filters scheduler
/// noise without criterion's warm-up budget).
fn time_per_iter(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm caches and allocations
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The explicit measurement pass: asserts backend equivalence on the
/// paper shape, times both backends and the 4-thread split, and writes
/// `BENCH_conv.json` at the workspace root.
fn measurement_report(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let reps = if smoke { 2 } else { 10 };

    // Equivalence gate: forward outputs and weight gradients of the two
    // backends on the paper shape, relative tolerance 1e-4.
    let x = paper_input();
    let mut naive = conv_with(ConvImpl::Naive);
    let mut lowered = conv_with(ConvImpl::Im2colGemm);
    let out_n = naive.forward(&x);
    let out_l = lowered.forward(&x);
    let gin_n = naive.backward(&out_n);
    let gin_l = lowered.backward(&out_l);
    let mut max_rel = 0.0f32;
    for (a, b) in out_n
        .data()
        .iter()
        .zip(out_l.data())
        .chain(gin_n.data().iter().zip(gin_l.data()))
    {
        let rel = (a - b).abs() / (1.0 + a.abs().max(b.abs()));
        max_rel = max_rel.max(rel);
    }
    assert!(
        max_rel <= 1e-4,
        "conv backend equivalence regressed: max relative deviation {max_rel:e}"
    );

    let time_forward = |backend: ConvImpl, threads: usize| {
        gemm::set_thread_budget(threads);
        let mut conv = conv_with(backend);
        let s = time_per_iter(reps, || {
            black_box(conv.forward(black_box(&x)));
        });
        gemm::set_thread_budget(0);
        s
    };
    let time_backward = |backend: ConvImpl, threads: usize| {
        gemm::set_thread_budget(threads);
        let mut conv = conv_with(backend);
        let s = time_per_iter(reps, || {
            let out = conv.forward(black_box(&x));
            black_box(conv.backward(&out));
        });
        gemm::set_thread_budget(0);
        s
    };

    let fwd_naive = time_forward(ConvImpl::Naive, 1);
    let fwd_gemm_1t = time_forward(ConvImpl::Im2colGemm, 1);
    let fwd_gemm_4t = time_forward(ConvImpl::Im2colGemm, 4);
    let bwd_naive = time_backward(ConvImpl::Naive, 1);
    let bwd_gemm_1t = time_backward(ConvImpl::Im2colGemm, 1);
    let bwd_gemm_4t = time_backward(ConvImpl::Im2colGemm, 4);

    let epoch = |backend: ConvImpl| {
        gemm::set_thread_budget(1);
        let data = synthetic_dataset(16, 32);
        let mut net = stem_net(5);
        net.set_conv_impl(backend);
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let mut r = rng(23);
        let s = time_per_iter(reps.min(4), || {
            black_box(train_epoch(&mut net, &mut opt, &data, 8, &mut r));
        });
        gemm::set_thread_budget(0);
        s
    };
    let epoch_naive = epoch(ConvImpl::Naive);
    let epoch_gemm = epoch(ConvImpl::Im2colGemm);

    // Thread scaling is only meaningful when the host actually has the
    // cores; a 1-core container shows scaling ≤ 1 by construction.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let json = format!(
        r#"{{
  "shape": {{"batch": {N}, "c_in": {C_IN}, "c_out": {C_OUT}, "hw": {HW}, "kernel": {KERNEL}}},
  "smoke_mode": {smoke},
  "host_cores": {cores},
  "max_relative_deviation": {max_rel:e},
  "conv_forward_s": {{"naive_1t": {fwd_naive:e}, "im2col_1t": {fwd_gemm_1t:e}, "im2col_4t": {fwd_gemm_4t:e}}},
  "conv_backward_s": {{"naive_1t": {bwd_naive:e}, "im2col_1t": {bwd_gemm_1t:e}, "im2col_4t": {bwd_gemm_4t:e}}},
  "train_epoch_s": {{"naive": {epoch_naive:e}, "im2col": {epoch_gemm:e}}},
  "speedup": {{
    "forward_1t": {:.3},
    "backward_1t": {:.3},
    "forward_4t_vs_1t": {:.3},
    "backward_4t_vs_1t": {:.3},
    "train_epoch": {:.3}
  }}
}}
"#,
        fwd_naive / fwd_gemm_1t,
        bwd_naive / bwd_gemm_1t,
        fwd_gemm_1t / fwd_gemm_4t,
        bwd_gemm_1t / bwd_gemm_4t,
        epoch_naive / epoch_gemm,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_conv.json");
    std::fs::write(&out, &json).expect("BENCH_conv.json written");
    println!("conv backend report ({}):", out.display());
    print!("{json}");
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_conv_backward,
    bench_train_epoch,
    measurement_report
);
criterion_main!(benches);
