//! Criterion microbench of the prediction engine's per-interaction cost —
//! the quantity §4.3.1 reports as 28.07 ms per interaction (Python). The
//! LM fit dominates; cost grows with the history length, so we benchmark
//! short, typical, and full histories.

use a4nn_penguin::{
    fit_curve, CurveFamily, EngineConfig, FitConfig, ParametricCurve, PredictionEngine,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn curve(e: u32) -> f64 {
    95.0 - 50.0 * 0.72f64.powi(e as i32)
}

fn bench_engine_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_interaction");
    for &history_len in &[5u32, 12, 25] {
        group.bench_with_input(
            BenchmarkId::new("observe_and_step", history_len),
            &history_len,
            |b, &n| {
                b.iter(|| {
                    let mut engine = PredictionEngine::new(EngineConfig::paper_defaults());
                    for e in 1..=n {
                        engine.observe(e, black_box(curve(e)));
                        let _ = black_box(engine.step());
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_single_fit(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=12).map(f64::from).collect();
    let ys: Vec<f64> = (1..=12).map(curve_f).collect();
    let mut group = c.benchmark_group("curve_fit");
    for family in CurveFamily::ALL {
        group.bench_function(family.name(), |b| {
            b.iter(|| {
                let _ = black_box(fit_curve(
                    &family,
                    black_box(&xs),
                    black_box(&ys),
                    &FitConfig::default(),
                ));
            });
        });
    }
    group.finish();
}

fn curve_f(e: u64) -> f64 {
    curve(e as u32)
}

criterion_group!(benches, bench_engine_interaction, bench_single_fit);
criterion_main!(benches);
