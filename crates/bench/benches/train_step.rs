//! End-to-end training hot-path benchmark: the PR 3 baseline (naive
//! sequential `Dense`, throwaway buffers every batch) versus the
//! optimized path (GEMM-backed `Dense`, persistent zero-allocation
//! `Workspace`, chunked evaluation).
//!
//! Three tiers on a Dense-heavy architecture — a single 1×1-kernel phase
//! feeding a wide classifier, the regime PR 3 left naive — plus a small
//! direct-orchestration search run over real XFEL trainers:
//!
//! - `train_step`: one gathered batch through forward + loss + backward
//!   + SGD step,
//! - `train_epoch`: a full epoch including shuffling and remainder
//!   batches,
//! - `search_throughput`: `RealTrainerFactory` trainers driven for a few
//!   epochs each, the unit of search wall-clock.
//!
//! A measurement pass writes `BENCH_train.json` at the workspace root,
//! asserts the two paths agree **bitwise** on logits and gradients, and
//! gates on regression: the measured dense-heavy `train_epoch` speedup
//! must stay within 20% of the committed baseline ratio (ratios of two
//! times on the same host are hardware-neutral, unlike absolute times).
//! Set `A4NN_BENCH_NO_GATE=1` to skip the gate when recalibrating.

use a4nn_core::real::{RealTrainerFactory, TrainingHyperparams};
use a4nn_core::trainer::TrainerFactory;
use a4nn_genome::SearchSpace;
use a4nn_nn::{
    cross_entropy_ws, gemm, train_epoch, train_epoch_ws, ConvImpl, Dataset, DenseImpl, NetSpec,
    Network, PhaseNetSpec, Sgd, Workspace,
};
use a4nn_xfel::{generate_split, BeamIntensity, XfelConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Dense-heavy geometry. The classifier's input width equals the last
/// phase's channel count (through GAP), and the phase's node conv costs
/// `channels² × pixels` MACs on *both* paths (im2col GEMM), so channels
/// stay moderate and the classifier is very wide (128 → 10000): the
/// Dense layer then owns the large majority of the FLOPs, and the naive
/// backend's strictly sequential dot products — unvectorizable without
/// reordering float adds — set the baseline pace. 4×4 spatial keeps the
/// conv's im2col GEMM on its full-width vector tile (16 output pixels)
/// so the shared conv cost stays small on both paths.
const HW: usize = 4;
const CHANNELS: usize = 128;
const CLASSES: usize = 10000;
const BATCH: usize = 32;
const IMAGES: usize = 64;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn dense_heavy_spec() -> NetSpec {
    NetSpec {
        input_channels: 1,
        phases: vec![PhaseNetSpec::degenerate(CHANNELS, 1)],
        num_classes: CLASSES,
    }
}

fn dense_heavy_net(seed: u64, dense: DenseImpl) -> Network {
    let mut net = Network::new(&dense_heavy_spec(), &mut rng(seed));
    net.set_conv_impl(ConvImpl::Im2colGemm);
    net.set_dense_impl(dense);
    net
}

fn synthetic_dataset(images: usize) -> Dataset {
    let mut data = Dataset::empty(1, HW, HW);
    let mut r = rng(17);
    let mut pixels = vec![0.0f32; HW * HW];
    for i in 0..images {
        let label = i % CLASSES.min(images);
        for p in pixels.iter_mut() {
            *p = r.gen_range(-1.0..1.0) + (label % 2) as f32 * 0.4 - 0.2;
        }
        data.push(&pixels, label);
    }
    data
}

/// One training step on a pre-gathered batch: the PR 3 baseline
/// allocates everything per step; the optimized path reuses `ws`.
fn one_step(
    net: &mut Network,
    opt: &mut Sgd,
    images: &a4nn_nn::Tensor4,
    labels: &[usize],
    ws: &mut Workspace,
) {
    let logits = net.forward_ws(images, true, ws);
    let out = cross_entropy_ws(&logits, labels, ws);
    ws.give2(logits);
    net.backward_ws(&out.dlogits, ws);
    ws.give2(out.dlogits);
    ws.give2(out.probs);
    opt.step(net);
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let data = synthetic_dataset(IMAGES);
    let indices: Vec<usize> = (0..BATCH).collect();
    let (images, labels) = data.gather(&indices);
    gemm::set_thread_budget(1);
    // Baseline: naive Dense, throwaway workspace per step.
    let mut net = dense_heavy_net(5, DenseImpl::Naive);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    group.bench_function(BenchmarkId::new("naive_fresh", "dense_heavy"), |b| {
        b.iter(|| {
            let mut ws = Workspace::new();
            one_step(&mut net, &mut opt, &images, &labels, &mut ws);
        });
    });
    // Optimized: GEMM Dense, persistent workspace.
    let mut net = dense_heavy_net(5, DenseImpl::Gemm);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();
    group.bench_function(BenchmarkId::new("gemm_workspace", "dense_heavy"), |b| {
        b.iter(|| one_step(&mut net, &mut opt, &images, &labels, &mut ws));
    });
    gemm::set_thread_budget(0);
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    let data = synthetic_dataset(IMAGES);
    gemm::set_thread_budget(1);
    let mut net = dense_heavy_net(5, DenseImpl::Naive);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut r = rng(23);
    group.bench_function(BenchmarkId::new("naive_fresh", "dense_heavy"), |b| {
        b.iter(|| black_box(train_epoch(&mut net, &mut opt, &data, BATCH, &mut r)));
    });
    let mut net = dense_heavy_net(5, DenseImpl::Gemm);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut r = rng(23);
    let mut ws = Workspace::new();
    group.bench_function(BenchmarkId::new("gemm_workspace", "dense_heavy"), |b| {
        b.iter(|| {
            black_box(train_epoch_ws(
                &mut net, &mut opt, &data, BATCH, &mut r, &mut ws,
            ))
        });
    });
    gemm::set_thread_budget(0);
    group.finish();
}

/// Drive real XFEL trainers for `epochs` epochs each — the direct
/// orchestration unit a NAS generation is made of.
fn search_run(hyper: TrainingHyperparams, models: usize, epochs: u32) -> f64 {
    let (train, val) = generate_split(&XfelConfig::default(), BeamIntensity::High, 24, 1);
    let factory = RealTrainerFactory::new(
        SearchSpace::paper_defaults(),
        Arc::new(train),
        Arc::new(val),
        hyper,
    );
    let space = SearchSpace::paper_defaults();
    let t0 = Instant::now();
    for model in 0..models {
        let genome = space.random_genome(&mut rng(40 + model as u64));
        let mut trainer = factory.make(&genome, model as u64, 9);
        for e in 1..=epochs {
            black_box(trainer.train_epoch(e));
        }
    }
    t0.elapsed().as_secs_f64()
}

fn baseline_hyper() -> TrainingHyperparams {
    TrainingHyperparams {
        dense_impl: DenseImpl::Naive,
        batch_size: 16,
        ..TrainingHyperparams::default()
    }
}

fn optimized_hyper() -> TrainingHyperparams {
    TrainingHyperparams {
        dense_impl: DenseImpl::Gemm,
        batch_size: 16,
        ..TrainingHyperparams::default()
    }
}

fn bench_search_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_throughput");
    group.sample_size(10);
    gemm::set_thread_budget(1);
    group.bench_function(BenchmarkId::new("naive", "xfel_2models"), |b| {
        b.iter(|| black_box(search_run(baseline_hyper(), 2, 2)));
    });
    group.bench_function(BenchmarkId::new("optimized", "xfel_2models"), |b| {
        b.iter(|| black_box(search_run(optimized_hyper(), 2, 2)));
    });
    gemm::set_thread_budget(0);
    group.finish();
}

/// Seconds per iteration, best of `reps`.
fn time_per_iter(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm caches, pools and lazy optimizer state
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Bitwise equivalence gate: the optimized path must reproduce the
/// baseline's logits and parameter gradients exactly.
fn assert_bitwise_equivalence() {
    let data = synthetic_dataset(IMAGES);
    let indices: Vec<usize> = (0..BATCH).collect();
    let (images, labels) = data.gather(&indices);
    let mut naive = dense_heavy_net(5, DenseImpl::Naive);
    let mut fast = dense_heavy_net(5, DenseImpl::Gemm);
    let mut ws = Workspace::new();

    let logits_naive = naive.forward(&images, true);
    let logits_fast = fast.forward_ws(&images, true, &mut ws);
    for (i, (a, b)) in logits_naive
        .data()
        .iter()
        .zip(logits_fast.data())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "logits[{i}]: {a} vs {b}");
    }
    let out_naive = a4nn_nn::cross_entropy(&logits_naive, &labels);
    let out_fast = cross_entropy_ws(&logits_fast, &labels, &mut ws);
    naive.backward(&out_naive.dlogits);
    fast.backward_ws(&out_fast.dlogits, &mut ws);
    let mut grads: Vec<Vec<f32>> = Vec::new();
    naive.visit_params(&mut |_, g| grads.push(g.to_vec()));
    let mut slot = 0;
    fast.visit_params(&mut |_, g| {
        for (i, (a, b)) in grads[slot].iter().zip(g.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{slot}][{i}]: {a} vs {b}");
        }
        slot += 1;
    });
}

/// The explicit measurement pass: times every tier, writes
/// `BENCH_train.json`, and fails on regression versus the committed
/// baseline speedup.
fn measurement_report(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let reps = if smoke { 2 } else { 8 };

    gemm::set_thread_budget(1);
    assert_bitwise_equivalence();

    let data = synthetic_dataset(IMAGES);
    let indices: Vec<usize> = (0..BATCH).collect();
    let (images, labels) = data.gather(&indices);

    // --- train_step ---
    let mut net = dense_heavy_net(5, DenseImpl::Naive);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let step_naive = time_per_iter(reps, || {
        let mut ws = Workspace::new();
        one_step(&mut net, &mut opt, &images, &labels, &mut ws);
    });
    let mut net = dense_heavy_net(5, DenseImpl::Gemm);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();
    let step_fast = time_per_iter(reps, || {
        one_step(&mut net, &mut opt, &images, &labels, &mut ws);
    });

    // --- train_epoch ---
    let mut net = dense_heavy_net(5, DenseImpl::Naive);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut r = rng(23);
    let epoch_naive = time_per_iter(reps, || {
        black_box(train_epoch(&mut net, &mut opt, &data, BATCH, &mut r));
    });
    let mut net = dense_heavy_net(5, DenseImpl::Gemm);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut r = rng(23);
    let mut ws = Workspace::new();
    let epoch_fast = time_per_iter(reps, || {
        black_box(train_epoch_ws(
            &mut net, &mut opt, &data, BATCH, &mut r, &mut ws,
        ));
    });

    // --- search_throughput ---
    let search_reps = if smoke { 1 } else { 3 };
    let search_naive = time_per_iter(search_reps, || {
        black_box(search_run(baseline_hyper(), 2, 2));
    });
    let search_fast = time_per_iter(search_reps, || {
        black_box(search_run(optimized_hyper(), 2, 2));
    });

    gemm::set_thread_budget(0);

    let step_speedup = step_naive / step_fast;
    let epoch_speedup = epoch_naive / epoch_fast;
    let search_speedup = search_naive / search_fast;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        r#"{{
  "architecture": {{"hw": {HW}, "channels": {CHANNELS}, "classes": {CLASSES}, "kernel": 1, "batch": {BATCH}, "images": {IMAGES}}},
  "smoke_mode": {smoke},
  "host_cores": {cores},
  "bitwise_equivalent": true,
  "train_step_s": {{"naive_fresh": {step_naive:e}, "gemm_workspace": {step_fast:e}}},
  "train_epoch_s": {{"naive_fresh": {epoch_naive:e}, "gemm_workspace": {epoch_fast:e}}},
  "search_throughput_s": {{"naive": {search_naive:e}, "optimized": {search_fast:e}}},
  "speedup": {{
    "train_step": {step_speedup:.3},
    "train_epoch": {epoch_speedup:.3},
    "search_throughput": {search_speedup:.3}
  }}
}}
"#,
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.join("BENCH_train.json");

    // Regression gate: compare the measured speedup RATIO against the
    // committed baseline's ratio — ratios of two timings taken on the
    // same host transfer across machines, absolute seconds do not.
    let no_gate = std::env::var_os("A4NN_BENCH_NO_GATE").is_some();
    if !no_gate && !smoke {
        if let Ok(committed) = std::fs::read_to_string(&out) {
            if let Some(baseline) = parse_speedup(&committed, "train_epoch") {
                assert!(
                    epoch_speedup >= 0.8 * baseline,
                    "train_epoch speedup regressed: measured {epoch_speedup:.3}x vs \
                     committed {baseline:.3}x (floor {:.3}x); set A4NN_BENCH_NO_GATE=1 \
                     to recalibrate",
                    0.8 * baseline
                );
            }
        }
        assert!(
            epoch_speedup >= 2.0,
            "dense-heavy train_epoch speedup {epoch_speedup:.3}x below the 2x acceptance floor"
        );
    }

    std::fs::write(&out, &json).expect("BENCH_train.json written");
    println!("training hot-path report ({}):", out.display());
    print!("{json}");
}

/// Pull `"speedup": {... "<key>": <value> ...}` out of a committed
/// report without assuming anything else about its layout.
fn parse_speedup(json: &str, key: &str) -> Option<f64> {
    let tail = &json[json.find("\"speedup\"")?..];
    let tail = &tail[tail.find(&format!("\"{key}\""))?..];
    let tail = &tail[tail.find(':')? + 1..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

criterion_group!(
    benches,
    bench_train_step,
    bench_train_epoch,
    bench_search_throughput,
    measurement_report
);
criterion_main!(benches);
