//! Criterion microbenches of the training substrate's hot kernels:
//! convolution forward/backward and a full phase-DAG training step.

use a4nn_nn::layers::Conv2d;
use a4nn_nn::{cross_entropy, NetSpec, Network, PhaseNetSpec, Sgd, Tensor4};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(7)
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    for &(cin, cout, hw) in &[(1usize, 8usize, 16usize), (8, 16, 16), (16, 32, 8)] {
        let mut conv = Conv2d::new(cin, cout, 3, &mut rng());
        let x = Tensor4::zeros(16, cin, hw, hw);
        group.bench_with_input(
            BenchmarkId::new("forward", format!("{cin}x{cout}@{hw}")),
            &x,
            |b, x| {
                b.iter(|| black_box(conv.forward(black_box(x))));
            },
        );
        let y = conv.forward(&x);
        group.bench_with_input(
            BenchmarkId::new("forward_backward", format!("{cin}x{cout}@{hw}")),
            &x,
            |b, x| {
                b.iter(|| {
                    let out = conv.forward(black_box(x));
                    black_box(conv.backward(&out));
                });
            },
        );
        drop(y);
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let spec = NetSpec {
        input_channels: 1,
        phases: vec![
            PhaseNetSpec {
                out_channels: 8,
                kernel: 3,
                node_inputs: vec![vec![], vec![0]],
                leaves: vec![1],
                skip: true,
            },
            PhaseNetSpec::degenerate(16, 3),
        ],
        num_classes: 2,
    };
    let mut net = Network::new(&spec, &mut rng());
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let x = Tensor4::zeros(16, 1, 16, 16);
    let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
    let mut group = c.benchmark_group("network");
    group.sample_size(20);
    group.bench_function("train_step_batch16", |b| {
        b.iter(|| {
            let logits = net.forward(black_box(&x), true);
            let out = cross_entropy(&logits, &labels);
            net.backward(&out.dlogits);
            opt.step(&mut net);
        });
    });
    group.bench_function("inference_batch16", |b| {
        b.iter(|| black_box(net.forward(black_box(&x), false)));
    });
    group.finish();
}

criterion_group!(benches, bench_conv, bench_training_step);
criterion_main!(benches);
