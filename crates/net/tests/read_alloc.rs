//! Allocation guard for the blocking frame reader: the payload buffer
//! must track the bytes *actually received*, never the untrusted length
//! header. Before the incremental-read fix, `read_message` allocated
//! `vec![0u8; len]` straight from the header — a hostile peer announcing
//! `MAX_PAYLOAD` forced a 64 MiB allocation per frame without sending a
//! single payload byte. Now that this codec fronts public serve
//! connections, that is a remotely triggerable memory amplifier.
//!
//! A peak-tracking wrapper around the system allocator is installed for
//! this test binary only (one test per binary, matching the
//! alloc-regression idiom in `crates/nn`).

use a4nn_net::{encode, read_message, NetError, HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            on_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// A stream whose header announces the full 64 MiB cap but which carries
/// only a few real bytes before EOF — the hostile-peer shape.
fn hostile_frame(body_bytes: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + body_bytes);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    frame.extend_from_slice(&MAX_PAYLOAD.to_be_bytes());
    frame.extend_from_slice(&vec![0x20; body_bytes]);
    frame
}

#[test]
fn announced_length_does_not_drive_allocation() {
    // Large genuine payloads must still round-trip through the chunked
    // reader (multiple READ_CHUNK refills) — correctness first.
    let big: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
    let bytes = encode(&big).unwrap();
    let got: Vec<u8> = read_message(&mut Cursor::new(bytes)).unwrap().unwrap();
    assert_eq!(got, big);

    // Now the attack: 64 MiB announced, 100 bytes delivered. The reader
    // must fail with a typed truncation, and its peak allocation must be
    // on the order of the delivered bytes + one read chunk — not the
    // announced length.
    let frame = hostile_frame(100);
    let before_peak = PEAK.load(Ordering::Relaxed);
    let live_before = LIVE.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);

    let err = read_message::<_, Vec<u8>>(&mut Cursor::new(frame)).unwrap_err();
    assert!(
        matches!(err, NetError::Truncated { .. }),
        "expected Truncated, got {err:?}"
    );

    let attack_peak = PEAK.load(Ordering::Relaxed) - live_before.min(PEAK.load(Ordering::Relaxed));
    // Generous ceiling: a couple of read chunks plus slack for the error
    // string. The pre-fix behavior allocated 64 MiB and fails this by
    // two orders of magnitude.
    assert!(
        attack_peak < 1024 * 1024,
        "hostile frame drove peak allocation to {attack_peak} bytes"
    );
    // Restore the global high-water mark invariant for any later test.
    PEAK.fetch_max(before_peak, Ordering::Relaxed);
}
