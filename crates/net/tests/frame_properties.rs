//! Property tests for the wire codec, plus the handshake-refusal
//! contract against a live worker.
//!
//! The framing invariants must hold for *any* message content and *any*
//! way the kernel splits or coalesces the byte stream:
//!
//! - encode → decode is the identity, regardless of read chunking;
//! - a stream cut at any interior byte is a typed [`NetError::Truncated`]
//!   at EOF, never a panic or a silent partial message;
//! - a corrupted length field above the cap is [`NetError::FrameTooLarge`]
//!   before any allocation;
//! - outbound frames pushed through the [`WriteQueue`] survive *any*
//!   split of the byte stream into partial writes — including
//!   interleaved `WouldBlock` — bitwise (the write-side mirror of the
//!   arbitrary-cut read tests);
//! - a peer speaking a foreign protocol revision is refused with a typed
//!   error on both sides of the handshake.

use a4nn_core::prelude::*;
use a4nn_net::{
    encode, read_message, write_message, FrameDecoder, Message, NetError, SocketOptions,
    SocketTransport, WorkerServer, WriteQueue, HEADER_LEN, MAX_PAYLOAD, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};

/// A `Write` impl emulating a congested nonblocking socket: each call
/// accepts a bounded number of bytes (cycling through `caps`, all ≥ 1,
/// so progress is guaranteed) and a finite queue of injected
/// `WouldBlock`s interrupts the stream at arbitrary points.
struct ThrottledWriter {
    out: Vec<u8>,
    caps: Vec<usize>,
    call: usize,
    blocks: VecDeque<bool>,
}

impl std::io::Write for ThrottledWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.blocks.pop_front() == Some(true) {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let cap = self.caps[self.call % self.caps.len()];
        self.call += 1;
        let n = buf.len().min(cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch of messages survives the decoder under any chunking of
    /// the byte stream — the framing is independent of how the kernel
    /// delivers bytes.
    #[test]
    fn roundtrip_is_chunking_invariant(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..6,
        ),
        chunk in 1usize..97,
    ) {
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode(m).unwrap());
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        for piece in bytes.chunks(chunk) {
            decoder.push(piece);
            while let Some(m) = decoder.next_frame::<Vec<u8>>().unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
        decoder.finish().unwrap();
    }

    /// Cutting the stream at any interior byte is detected as truncation
    /// at EOF: the decoder never yields a message from a partial frame
    /// and never panics.
    #[test]
    fn any_interior_cut_is_typed_truncation(
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        cut_seed in any::<u64>(),
    ) {
        let frame = encode(&msg).unwrap();
        // Interior cut: at least one byte present, at least one missing.
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame[..cut]);
        prop_assert!(decoder.next_frame::<Vec<u8>>().unwrap().is_none());
        prop_assert!(matches!(decoder.finish(), Err(NetError::Truncated { .. })));
    }

    /// A length field above [`MAX_PAYLOAD`] is rejected from the header
    /// alone — a corrupted stream cannot provoke a giant allocation.
    #[test]
    fn oversized_length_field_is_rejected(extra in 1u32..=1024) {
        let len = MAX_PAYLOAD + extra;
        let mut frame = Vec::with_capacity(HEADER_LEN);
        frame.extend_from_slice(b"A4NN");
        frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        frame.extend_from_slice(&len.to_be_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        prop_assert_eq!(
            decoder.next_frame::<String>(),
            Err(NetError::FrameTooLarge { len })
        );
    }

    /// Frames queued through the [`WriteQueue`] reach the wire bitwise
    /// identical to their back-to-back encodings, no matter how the
    /// writer splits or defers the bytes — and the reassembled stream
    /// decodes back to the original messages. A partial mid-stream
    /// flush exercises compaction under a live cursor.
    #[test]
    fn write_queue_partial_writes_roundtrip_bitwise(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..6,
        ),
        caps in proptest::collection::vec(1usize..97, 1..16),
        blocks in proptest::collection::vec(any::<bool>(), 0..24),
        split in 0usize..6,
    ) {
        let mut q = WriteQueue::default();
        let mut w = ThrottledWriter {
            out: Vec::new(),
            caps,
            call: 0,
            blocks: blocks.into(),
        };
        let mut expected = Vec::new();
        let split = split.min(msgs.len() - 1);
        for (i, m) in msgs.iter().enumerate() {
            let frame = encode(m).unwrap();
            expected.extend_from_slice(&frame);
            // Alternate the raw-frame and typed entry points.
            if i % 2 == 0 {
                q.enqueue(&frame);
            } else {
                q.enqueue_message(m).unwrap();
            }
            if i == split {
                let _ = q.flush_into(&mut w).unwrap();
            }
        }
        while !q.flush_into(&mut w).unwrap() {}
        prop_assert!(q.is_empty());
        prop_assert_eq!(&w.out, &expected);
        let mut decoder = FrameDecoder::new();
        decoder.push(&w.out);
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        while let Some(m) = decoder.next_frame::<Vec<u8>>().unwrap() {
            decoded.push(m);
        }
        prop_assert_eq!(decoded, msgs);
        decoder.finish().unwrap();
    }

    /// Any header version other than ours is a typed mismatch carrying
    /// both revisions.
    #[test]
    fn foreign_frame_versions_are_typed_mismatches(theirs in any::<u16>()) {
        prop_assume!(theirs != PROTOCOL_VERSION);
        let mut frame = encode(&"x".to_string()).unwrap();
        frame[4..6].copy_from_slice(&theirs.to_be_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        prop_assert_eq!(
            decoder.next_frame::<String>(),
            Err(NetError::VersionMismatch { ours: PROTOCOL_VERSION, theirs })
        );
    }
}

/// The payload-size extremes: an empty collection (the smallest JSON
/// payloads) and a string far above 64 KiB both survive the decoder and
/// the blocking reader.
#[test]
fn payload_size_extremes_roundtrip() {
    let empty: Vec<u8> = Vec::new();
    let big = "g".repeat(80 * 1024); // > 64 KiB of payload
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&encode(&empty).unwrap());
    bytes.extend_from_slice(&encode(&big).unwrap());

    let mut decoder = FrameDecoder::new();
    decoder.push(&bytes);
    assert_eq!(decoder.next_frame::<Vec<u8>>().unwrap().unwrap(), empty);
    assert_eq!(decoder.next_frame::<String>().unwrap().unwrap(), big);
    decoder.finish().unwrap();

    let mut cursor = std::io::Cursor::new(bytes);
    assert_eq!(
        read_message::<_, Vec<u8>>(&mut cursor).unwrap().unwrap(),
        empty
    );
    assert_eq!(
        read_message::<_, String>(&mut cursor).unwrap().unwrap(),
        big
    );
    assert!(read_message::<_, String>(&mut cursor).unwrap().is_none());
}

/// A zero-length payload is structurally valid framing but never a
/// decodable message: the decoder reports a typed decode error, not a
/// panic and not an empty success.
#[test]
fn zero_byte_payload_is_a_typed_decode_error() {
    let mut frame = Vec::with_capacity(HEADER_LEN);
    frame.extend_from_slice(b"A4NN");
    frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    frame.extend_from_slice(&0u32.to_be_bytes());
    let mut decoder = FrameDecoder::new();
    decoder.push(&frame);
    assert!(matches!(
        decoder.next_frame::<String>(),
        Err(NetError::Decode(_))
    ));
}

/// A live worker refuses a coordinator announcing a foreign protocol
/// revision with an explicit `Reject` — and keeps serving afterwards.
#[test]
fn worker_refuses_a_foreign_hello() {
    let worker = WorkerServer::spawn("127.0.0.1:0", 1, 1).unwrap();
    let stream = TcpStream::connect(worker.addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();
    write_message(
        &mut &stream,
        &Message::Hello {
            version: PROTOCOL_VERSION + 1,
        },
    )
    .unwrap();
    match read_message::<_, Message>(&mut reader).unwrap() {
        Some(Message::Reject { reason }) => {
            assert!(
                reason.contains("version"),
                "refusal names the version mismatch: {reason}"
            );
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    drop(stream);
    worker.join().unwrap();
}

/// The coordinator surfaces a worker's `Reject` as a `Net`-class error
/// (exit code 9) naming the refusing worker.
#[test]
fn coordinator_surfaces_refusal_as_a_net_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let refusing_worker = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = stream.try_clone().unwrap();
        let hello = read_message::<_, Message>(&mut reader).unwrap();
        assert!(matches!(hello, Some(Message::Hello { .. })));
        write_message(
            &mut &stream,
            &Message::Reject {
                reason: "stale build".into(),
            },
        )
        .unwrap();
    });

    let config = WorkflowConfig::a4nn(BeamIntensity::Medium, 1, 7);
    let ft = FaultTolerance::new(RetryPolicy::with_retries(0), FaultPlan::none());
    let err = SocketTransport::connect(&[addr.to_string()], &config, &ft, SocketOptions::default())
        .err()
        .expect("refused handshake fails construction");
    assert_eq!(err.exit_code(), 9, "refusals are Net-class: {err}");
    assert!(err.to_string().contains("refused"), "{err}");
    refusing_worker.join().unwrap();
}
