//! The coordinator side: [`SocketTransport`], a
//! [`Transport`] that shards each generation's
//! trainer jobs across connected worker processes.
//!
//! Sharding is GPU-weighted: each connection advertises a job capacity
//! in its `Welcome`, and the router always dispatches to the live
//! connection with the lowest relative load (`in_flight / gpus`). Dead
//! workers are detected by the heartbeat deadline — the reader thread's
//! socket read timeout — and their in-flight jobs are *requeued* through
//! the same [`GpuPool::run_batch_retry`] machinery the bus transport
//! uses for trainer panics: a lost connection panics the dispatch
//! attempt, the pool requeues the job, and the router routes it to a
//! surviving worker. Only when every worker is gone (or a job has been
//! dispatched to every worker and lost each time) does the run abort
//! with a `Net`-class [`A4nnError`].
//!
//! Failure taxonomy, unchanged from the in-process transports: a trainer
//! panic *on* a worker is handled by the worker's own retry loop and
//! comes back as data (`Terminated::Failed` at worst); `Net` errors are
//! reserved for the machinery — sockets, frames, worker processes.

use crate::frame::{read_message, write_message, PROTOCOL_VERSION};
use crate::protocol::Message;
use a4nn_core::{
    EvalPipeline, FaultTolerance, ModelCost, TrainingOutcome, Transport, WorkflowConfig,
};
use a4nn_error::A4nnError;
use a4nn_genome::Genome;
use a4nn_sched::{GpuPool, RetryPolicy, ScheduleResult};
use crossbeam::channel;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for a coordinator connection set.
#[derive(Debug, Clone)]
pub struct SocketOptions {
    /// A worker silent for longer than this is declared dead and its
    /// in-flight jobs requeue. Workers are told to heartbeat at a
    /// quarter of this deadline.
    pub heartbeat_deadline: Duration,
    /// TCP connect timeout per worker address.
    pub connect_timeout: Duration,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            heartbeat_deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-connection scheduling state, guarded by the router lock.
#[derive(Debug)]
struct Slot {
    gpus: usize,
    in_flight: usize,
    alive: bool,
}

/// The GPU-weighted dispatcher over all connections.
struct Router {
    slots: Mutex<Vec<Slot>>,
    changed: Condvar,
}

impl Router {
    fn new(slots: Vec<Slot>) -> Self {
        Router {
            slots: Mutex::new(slots),
            changed: Condvar::new(),
        }
    }

    /// Reserve a job slot on the least-loaded live connection, blocking
    /// while all live connections are saturated. `None` when no live
    /// connection remains — the zero-workers abort signal.
    fn acquire(&self) -> Option<usize> {
        let mut slots = self.slots.lock();
        loop {
            if !slots.iter().any(|s| s.alive) {
                return None;
            }
            let best = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.alive && s.in_flight < s.gpus)
                // Lowest relative load; cross-multiplied to stay in
                // integers (a/g_a < b/g_b ⇔ a·g_b < b·g_a).
                .min_by(|(_, a), (_, b)| (a.in_flight * b.gpus).cmp(&(b.in_flight * a.gpus)))
                .map(|(i, _)| i);
            if let Some(i) = best {
                slots[i].in_flight += 1;
                return Some(i);
            }
            self.changed.wait(&mut slots);
        }
    }

    fn release(&self, i: usize) {
        let mut slots = self.slots.lock();
        slots[i].in_flight = slots[i].in_flight.saturating_sub(1);
        drop(slots);
        self.changed.notify_all();
    }

    fn mark_dead(&self, i: usize) {
        self.slots.lock()[i].alive = false;
        self.changed.notify_all();
    }

    fn any_alive(&self) -> bool {
        self.slots.lock().iter().any(|s| s.alive)
    }
}

/// Reply routing for one connection. `alive` lives under the same lock
/// as the pending map so registration and the reader's terminal drain
/// cannot race: either a sender registers before the drain (and is
/// drained), or it observes `alive == false` and bails.
#[derive(Default)]
struct ConnState {
    alive: bool,
    pending: HashMap<u64, channel::Sender<Option<(TrainingOutcome, ModelCost)>>>,
}

struct Connection {
    addr: String,
    gpus: usize,
    writer: Mutex<TcpStream>,
    state: Arc<Mutex<ConnState>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

/// A connected, handshaken coordinator transport.
pub struct SocketTransport {
    connections: Vec<Connection>,
    router: Arc<Router>,
}

impl SocketTransport {
    /// Connect to every worker in `addrs`, handshake, and ship the
    /// [`RunSetup`](Message::RunSetup) derived from `cfg` and `ft`.
    /// Any unreachable, refusing, or version-mismatched worker fails
    /// the whole construction — a coordinator must start with exactly
    /// the fleet it was given.
    pub fn connect(
        addrs: &[String],
        cfg: &WorkflowConfig,
        ft: &FaultTolerance,
        options: SocketOptions,
    ) -> Result<Self, A4nnError> {
        if addrs.is_empty() {
            return Err(A4nnError::Net("no worker addresses to connect to".into()));
        }
        let deadline = options.heartbeat_deadline.max(Duration::from_millis(4));
        let heartbeat_interval_ms = (deadline.as_millis() as u64 / 4).max(1);

        let mut accepted = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let sock_addr = addr
                .to_socket_addrs()
                .map_err(|e| A4nnError::Net(format!("resolving worker address {addr}: {e}")))?
                .next()
                .ok_or_else(|| {
                    A4nnError::Net(format!("worker address {addr} resolved to nothing"))
                })?;
            let stream = TcpStream::connect_timeout(&sock_addr, options.connect_timeout)
                .map_err(|e| A4nnError::Net(format!("connecting to worker {addr}: {e}")))?;
            let _ = stream.set_nodelay(true);
            let mut reader = stream
                .try_clone()
                .map_err(|e| A4nnError::Net(format!("cloning stream to worker {addr}: {e}")))?;
            // The read timeout IS the heartbeat deadline: any frame —
            // heartbeat or result — proves liveness and rearms it.
            reader
                .set_read_timeout(Some(deadline))
                .map_err(|e| A4nnError::Net(format!("arming deadline for worker {addr}: {e}")))?;

            write_message(
                &mut &stream,
                &Message::Hello {
                    version: PROTOCOL_VERSION,
                },
            )
            .map_err(|e| A4nnError::Net(format!("greeting worker {addr}: {e}")))?;
            let gpus = match read_message::<_, Message>(&mut reader) {
                Ok(Some(Message::Welcome { version, gpus })) if version == PROTOCOL_VERSION => {
                    if gpus == 0 {
                        return Err(A4nnError::Net(format!(
                            "worker {addr} advertised zero GPUs"
                        )));
                    }
                    gpus
                }
                Ok(Some(Message::Welcome { version, .. })) => {
                    return Err(A4nnError::Net(format!(
                        "worker {addr} speaks protocol v{version}, we speak v{PROTOCOL_VERSION}"
                    )))
                }
                Ok(Some(Message::Reject { reason })) => {
                    return Err(A4nnError::Net(format!("worker {addr} refused: {reason}")))
                }
                Ok(other) => {
                    return Err(A4nnError::Net(format!(
                        "worker {addr} answered the handshake with {other:?}"
                    )))
                }
                Err(e) => {
                    return Err(A4nnError::Net(format!(
                        "handshake with worker {addr} failed: {e}"
                    )))
                }
            };
            write_message(
                &mut &stream,
                &Message::RunSetup {
                    config: cfg.clone(),
                    retry: ft.retry,
                    plan: ft.plan.clone(),
                    heartbeat_interval_ms,
                },
            )
            .map_err(|e| A4nnError::Net(format!("shipping run setup to worker {addr}: {e}")))?;
            accepted.push((addr.clone(), gpus, stream, reader));
        }

        let router = Arc::new(Router::new(
            accepted
                .iter()
                .map(|(_, gpus, _, _)| Slot {
                    gpus: *gpus,
                    in_flight: 0,
                    alive: true,
                })
                .collect(),
        ));
        let connections = accepted
            .into_iter()
            .enumerate()
            .map(|(i, (addr, gpus, stream, mut reader))| {
                let state = Arc::new(Mutex::new(ConnState {
                    alive: true,
                    pending: HashMap::new(),
                }));
                let reader_state = Arc::clone(&state);
                let reader_router = Arc::clone(&router);
                let handle = std::thread::spawn(move || {
                    loop {
                        match read_message::<_, Message>(&mut reader) {
                            Ok(Some(Message::Heartbeat)) => {}
                            Ok(Some(Message::JobDone {
                                model_id,
                                cost,
                                outcome,
                            })) => {
                                let sender = reader_state.lock().pending.remove(&model_id);
                                if let Some(tx) = sender {
                                    let _ = tx.send(Some((outcome, cost)));
                                }
                            }
                            // Clean close, heartbeat-deadline timeout,
                            // truncated/corrupt frame, protocol breach:
                            // all mean this worker is unusable.
                            _ => break,
                        }
                    }
                    let mut st = reader_state.lock();
                    st.alive = false;
                    for (_, tx) in st.pending.drain() {
                        let _ = tx.send(None);
                    }
                    drop(st);
                    reader_router.mark_dead(i);
                });
                Connection {
                    addr,
                    gpus,
                    writer: Mutex::new(stream),
                    state,
                    reader: Some(handle),
                }
            })
            .collect();
        Ok(SocketTransport {
            connections,
            router,
        })
    }

    /// Connected workers (dead ones included — connections are never
    /// removed, only marked dead).
    pub fn worker_count(&self) -> usize {
        self.connections.len()
    }

    /// Whether at least one worker connection is still live.
    pub fn any_alive(&self) -> bool {
        self.router.any_alive()
    }

    /// Total advertised job slots across all workers.
    pub fn total_gpus(&self) -> usize {
        self.connections.iter().map(|c| c.gpus).sum()
    }

    /// Dispatch one job to connection `conn_idx`; panics (for the retry
    /// pool to requeue) when the connection dies at any point before
    /// the outcome arrives.
    fn dispatch(
        &self,
        conn_idx: usize,
        model_id: u64,
        generation: usize,
        dispatch_attempt: u32,
        genome: &Genome,
    ) -> Option<(TrainingOutcome, ModelCost)> {
        let conn = &self.connections[conn_idx];
        let (tx, rx) = channel::bounded(1);
        {
            let mut st = conn.state.lock();
            if !st.alive {
                return None;
            }
            st.pending.insert(model_id, tx);
        }
        let write_ok = write_message(
            &mut *conn.writer.lock(),
            &Message::Job {
                model_id,
                generation,
                dispatch_attempt,
                genome: genome.clone(),
            },
        )
        .is_ok();
        if !write_ok {
            conn.state.lock().pending.remove(&model_id);
            return None;
        }
        // The reader thread either routes the outcome here or — on
        // death, which the heartbeat deadline bounds — drains the
        // pending map with `None`, so this recv always returns.
        match rx.recv() {
            Ok(Some(pair)) => Some(pair),
            _ => None,
        }
    }
}

impl Transport for SocketTransport {
    fn run_generation(
        &self,
        pipeline: &EvalPipeline<'_>,
        genomes: &[Genome],
        generation: usize,
        base_id: u64,
    ) -> Result<Vec<(TrainingOutcome, ModelCost)>, A4nnError> {
        if pipeline.checkpoints().is_some() {
            return Err(A4nnError::Config(
                "the socket transport cannot stream checkpoints back from workers; \
                 run checkpointed searches on the direct or bus transport"
                    .into(),
            ));
        }
        // A job must survive every worker dying at most once while
        // holding it; with n workers that bounds useful dispatch
        // attempts at n + 1 (past that, acquire() returns None anyway).
        let dispatch_policy = RetryPolicy {
            max_attempts: self.connections.len() as u32 + 1,
            backoff_base_s: 0.0,
            backoff_factor: 1.0,
        };
        let jobs: Vec<_> = genomes
            .iter()
            .enumerate()
            .map(|(k, genome)| {
                let model_id = base_id + k as u64;
                move |_worker: usize,
                      attempt: u32|
                      -> Result<(TrainingOutcome, ModelCost), A4nnError> {
                    let queued = Instant::now();
                    let Some(conn_idx) = self.router.acquire() else {
                        return Err(A4nnError::Net(format!(
                            "no live workers remain to train model {model_id} \
                             (all {} worker connection(s) lost)",
                            self.connections.len()
                        )));
                    };
                    let queue_wait_s = queued.elapsed().as_secs_f64();
                    let dispatched = Instant::now();
                    let result = self.dispatch(conn_idx, model_id, generation, attempt, genome);
                    self.router.release(conn_idx);
                    match result {
                        Some(pair) => {
                            pipeline.record_job(
                                dispatched.elapsed().as_secs_f64(),
                                queue_wait_s,
                                u64::from(attempt.saturating_sub(1)),
                            );
                            Ok(pair)
                        }
                        // Connection lost before the outcome landed:
                        // panic so run_batch_retry requeues the job onto
                        // a surviving worker.
                        None => panic!(
                            "worker {} lost while it held model {model_id}",
                            self.connections[conn_idx].addr
                        ),
                    }
                }
            })
            .collect();
        let batch =
            GpuPool::new(self.total_gpus().max(1)).run_batch_retry(jobs, &dispatch_policy)?;
        let mut outcomes = Vec::with_capacity(genomes.len());
        for (k, output) in batch.outputs.into_iter().enumerate() {
            match output {
                Some(Ok(pair)) => outcomes.push(pair),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(A4nnError::Net(format!(
                        "model {} was dispatched {} time(s) and every worker holding it died",
                        base_id + k as u64,
                        dispatch_policy.max_attempts
                    )))
                }
            }
        }
        Ok(outcomes)
    }

    fn publish_generation(
        &self,
        _pipeline: &EvalPipeline<'_>,
        _genomes: &[Genome],
        _generation: usize,
        _base_id: u64,
        _outcomes: &[(TrainingOutcome, ModelCost)],
        _schedule: &ScheduleResult,
    ) -> Result<(), A4nnError> {
        Ok(())
    }

    fn assembles_records(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "socket"
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for conn in &self.connections {
            if conn.state.lock().alive {
                let _ = write_message(&mut *conn.writer.lock(), &Message::Shutdown);
            }
            // Severing the stream unblocks the reader thread's socket
            // read so the joins below cannot hang.
            let _ = conn.writer.lock().shutdown(Shutdown::Both);
        }
        for conn in &mut self.connections {
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
        }
    }
}
