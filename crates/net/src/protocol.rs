//! The coordinator↔worker message vocabulary.
//!
//! One session, in order:
//!
//! 1. coordinator → [`Hello`](Message::Hello); worker → either
//!    [`Welcome`](Message::Welcome) (advertising its GPU count) or
//!    [`Reject`](Message::Reject) on a protocol-version mismatch;
//! 2. coordinator → [`RunSetup`](Message::RunSetup): the full workflow
//!    configuration plus the fault-tolerance contract, so the worker
//!    reconstructs the *same* deterministic trainer the coordinator
//!    would run in process;
//! 3. jobs: coordinator → [`Job`](Message::Job), worker →
//!    [`JobDone`](Message::JobDone), interleaved with periodic
//!    [`Heartbeat`](Message::Heartbeat)s from the worker;
//! 4. coordinator → [`Shutdown`](Message::Shutdown) (or just closes).
//!
//! Trainer results cross the wire as the full
//! [`TrainingOutcome`] — every simulated duration and fitness value
//! bit-exact (the vendored JSON codec writes `f64`s shortest-roundtrip),
//! which is what lets the socket transport hold byte-identical commons
//! with the in-process transports.

use a4nn_core::{ModelCost, TrainingOutcome, WorkflowConfig};
use a4nn_faults::FaultPlan;
use a4nn_genome::Genome;
use a4nn_sched::RetryPolicy;
use serde::{Deserialize, Serialize};

/// Every message either side of an `a4nn-net` connection can send.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Message {
    /// Coordinator's opener: the protocol revision it speaks.
    Hello {
        /// The coordinator's [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
        version: u16,
    },
    /// Worker's acceptance: its revision and how many trainer jobs it
    /// can run concurrently (the sharding weight).
    Welcome {
        /// The worker's protocol revision (equal to the coordinator's,
        /// or the worker sends [`Reject`](Message::Reject) instead).
        version: u16,
        /// Advertised GPU count; the coordinator keeps at most this
        /// many jobs in flight on the connection.
        gpus: usize,
    },
    /// Worker's refusal (version mismatch); the session ends here.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Everything the worker needs to train deterministically.
    RunSetup {
        /// The run's workflow configuration (search space, engine,
        /// seed); the worker rebuilds its trainer factory from this.
        config: WorkflowConfig,
        /// Trainer retry policy — worker-side attempts, identical to
        /// the in-process retry loop.
        retry: RetryPolicy,
        /// The deterministic fault plan, consulted at the same
        /// `(model, epoch, attempt)` sites as in-process transports.
        plan: FaultPlan,
        /// How often the worker must send
        /// [`Heartbeat`](Message::Heartbeat)s, in milliseconds.
        heartbeat_interval_ms: u64,
    },
    /// One trainer job.
    Job {
        /// Model id (also the reply correlation key).
        model_id: u64,
        /// Generation index, for logging symmetry with the bus events.
        generation: usize,
        /// 1-based dispatch attempt across workers — keys the
        /// `WorkerDrop` fault gate, never the trainer's own retry
        /// counter.
        dispatch_attempt: u32,
        /// The genome to decode and train.
        genome: Genome,
    },
    /// The completed job, outcome intact.
    JobDone {
        /// Which job this answers.
        model_id: u64,
        /// The trained architecture's full static/dynamic cost vector
        /// (MFLOPs, parameter bytes, MACs, peak workspace bytes) —
        /// measured worker-side so every configured objective is
        /// computed where the training ran.
        cost: ModelCost,
        /// The full training outcome, including worker-side retry
        /// accounting.
        outcome: TrainingOutcome,
    },
    /// Periodic liveness signal from the worker.
    Heartbeat,
    /// Coordinator is done with the session.
    Shutdown,
}
