//! The worker process: a TCP server that trains jobs for a remote
//! coordinator.
//!
//! Each accepted connection is one coordinator *session*: handshake,
//! [`RunSetup`](crate::Message::RunSetup), then a stream of jobs. The
//! worker reconstructs the surrogate trainer factory from the shipped
//! configuration, so every job it trains is the *same* deterministic
//! computation [`a4nn_core::train_resilient_direct`] would run in
//! process — remote placement cannot perturb results by construction.
//!
//! A heartbeat thread signs the worker's liveness every
//! `heartbeat_interval_ms`; the deterministic `WorkerStall` fault mutes
//! it (so a coordinator with a shorter deadline declares the worker
//! dead), and `WorkerDrop` severs the connection outright, exercising
//! the coordinator's requeue path.

use crate::frame::{read_message, write_message, NetError, PROTOCOL_VERSION};
use crate::protocol::Message;
use a4nn_core::{train_resilient_direct, FaultTolerance, SurrogateFactory, SurrogateParams};
use a4nn_error::A4nnError;
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A bound worker server, ready to serve coordinator sessions.
pub struct WorkerServer {
    listener: TcpListener,
    gpus: usize,
}

impl WorkerServer {
    /// Bind the listener on `addr` (e.g. `127.0.0.1:7070`; port `0`
    /// picks a free port) advertising `gpus` concurrent job slots.
    pub fn bind(addr: &str, gpus: usize) -> Result<Self, A4nnError> {
        if gpus == 0 {
            return Err(A4nnError::Config(
                "a worker must advertise at least one GPU".into(),
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| A4nnError::Net(format!("binding worker listener on {addr}: {e}")))?;
        Ok(WorkerServer { listener, gpus })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> Result<SocketAddr, A4nnError> {
        self.listener
            .local_addr()
            .map_err(|e| A4nnError::Net(format!("reading worker listener address: {e}")))
    }

    /// Serve coordinator sessions sequentially: `sessions == 0` serves
    /// forever, otherwise exits after that many sessions. A session
    /// that ends abnormally (dropped connection, injected fault) is
    /// logged and counted, never fatal — dying with the coordinator is
    /// exactly what a worker must not do.
    pub fn run(&self, sessions: usize) -> Result<(), A4nnError> {
        let mut served = 0usize;
        for stream in self.listener.incoming() {
            let stream = stream
                .map_err(|e| A4nnError::Net(format!("accepting coordinator connection: {e}")))?;
            if let Err(e) = serve_session(stream, self.gpus) {
                eprintln!("a4nn worker: session ended abnormally: {e}");
            }
            served += 1;
            if sessions != 0 && served >= sessions {
                break;
            }
        }
        Ok(())
    }

    /// Bind and serve on a background thread — the in-process worker
    /// used by tests and single-machine smoke runs.
    pub fn spawn(addr: &str, gpus: usize, sessions: usize) -> Result<WorkerHandle, A4nnError> {
        let server = WorkerServer::bind(addr, gpus)?;
        let local = server.local_addr()?;
        let join = std::thread::spawn(move || server.run(sessions));
        Ok(WorkerHandle { addr: local, join })
    }
}

/// Handle to a [`WorkerServer::spawn`]ed background worker.
pub struct WorkerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), A4nnError>>,
}

impl WorkerHandle {
    /// The worker's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the worker to finish its session budget.
    pub fn join(self) -> Result<(), A4nnError> {
        self.join
            .join()
            .map_err(|_| A4nnError::Internal("worker server thread panicked".into()))?
    }
}

/// Drive one coordinator session over `stream`.
fn serve_session(stream: TcpStream, gpus: usize) -> Result<(), NetError> {
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone()?;
    let writer = Mutex::new(stream);

    // Handshake: refuse foreign protocol revisions explicitly so the
    // coordinator can report *why* instead of seeing a dead socket.
    match read_message::<_, Message>(&mut reader)? {
        Some(Message::Hello { version }) if version == PROTOCOL_VERSION => {}
        Some(Message::Hello { version }) => {
            let reason = format!(
                "protocol version mismatch: worker speaks v{PROTOCOL_VERSION}, coordinator v{version}"
            );
            let _ = write_message(&mut *writer.lock(), &Message::Reject { reason });
            return Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello to open the session, got {other:?}"
            )))
        }
    }
    write_message(
        &mut *writer.lock(),
        &Message::Welcome {
            version: PROTOCOL_VERSION,
            gpus,
        },
    )?;

    let (config, retry, plan, heartbeat_interval_ms) =
        match read_message::<_, Message>(&mut reader)? {
            Some(Message::RunSetup {
                config,
                retry,
                plan,
                heartbeat_interval_ms,
            }) => (config, retry, plan, heartbeat_interval_ms),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected RunSetup after the handshake, got {other:?}"
                )))
            }
        };
    // The factory is purely configuration-derived, which is the whole
    // determinism argument: same (config, genome, model_id, seed) ⇒
    // same trainer ⇒ same outcome, wherever it runs.
    let factory = SurrogateFactory::new(&config, SurrogateParams::for_beam(config.beam));
    let ft = FaultTolerance::new(retry, plan);

    let done = AtomicBool::new(false);
    // `WorkerStall` faults push this forward to silence the heartbeat.
    let mute_until = Mutex::new(Instant::now());
    let interval = Duration::from_millis(heartbeat_interval_ms.max(1));

    let result: Result<(), NetError> = crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            while !done.load(Ordering::SeqCst) {
                if Instant::now() >= *mute_until.lock()
                    && write_message(&mut *writer.lock(), &Message::Heartbeat).is_err()
                {
                    break;
                }
                std::thread::sleep(interval);
            }
        });

        // Per-job thread handles, reaped as jobs finish: a long session
        // streaming thousands of jobs must not accumulate a handle per
        // job it ever trained (the scope would otherwise hold them all
        // until the session ends).
        let mut jobs: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        let loop_result = loop {
            match read_message::<_, Message>(&mut reader) {
                Ok(Some(Message::Job {
                    model_id,
                    generation: _,
                    dispatch_attempt,
                    genome,
                })) => {
                    let mut i = 0;
                    while i < jobs.len() {
                        if jobs[i].is_finished() {
                            let _ = jobs.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    let factory = &factory;
                    let ft = &ft;
                    let config = &config;
                    let writer = &writer;
                    let mute_until = &mute_until;
                    let done = &done;
                    jobs.push(scope.spawn(move |_| {
                        let epochs = config.nas.epochs;
                        let stall_ms: u64 = (1..=epochs)
                            .map(|e| ft.plan.worker_stall_millis(model_id, e))
                            .sum();
                        if stall_ms > 0 {
                            // Go quiet past the coordinator's deadline:
                            // heartbeats muted, job frozen.
                            *mute_until.lock() = Instant::now() + Duration::from_millis(stall_ms);
                            std::thread::sleep(Duration::from_millis(stall_ms));
                        }
                        if (1..=epochs)
                            .any(|e| ft.plan.worker_drop_due(model_id, e, dispatch_attempt))
                        {
                            // Sever the connection instead of answering —
                            // the coordinator must requeue this job (and
                            // every other one in flight here) elsewhere.
                            done.store(true, Ordering::SeqCst);
                            let _ = writer.lock().shutdown(Shutdown::Both);
                            return;
                        }
                        let (outcome, cost) =
                            train_resilient_direct(config, factory, &genome, model_id, None, ft);
                        let _ = write_message(
                            &mut *writer.lock(),
                            &Message::JobDone {
                                model_id,
                                cost,
                                outcome,
                            },
                        );
                    }));
                }
                Ok(Some(Message::Shutdown)) | Ok(None) => break Ok(()),
                Ok(Some(other)) => {
                    break Err(NetError::Protocol(format!(
                        "unexpected mid-session message {other:?}"
                    )))
                }
                Err(e) => break Err(e),
            }
        };
        done.store(true, Ordering::SeqCst);
        loop_result
    })
    .map_err(|_| NetError::Protocol("worker session thread panicked".into()))?;

    // Unblock any peer still reading from us before the session closes.
    let _ = writer.lock().shutdown(Shutdown::Both);
    result
}
